"""E29 — Scenario reduction: k<<N stochastic decisions without regret.

Claim: compressing a Monte-Carlo scenario ensemble to ``k`` weighted
representatives (exact-W1 forward selection, `repro.decision.reduction`)
turns the O(N^2 * |grid|) dominance/utility sweep into an O(k^2) one
while returning the *same decision* — the reduced-ensemble winner
matches the full-ensemble winner at machine precision on every query.

Four phases, all gated:

1. **Kernel equivalence** — the vectorized ``wasserstein_matrix``
   matches the brute-force pairwise W1 oracle exactly; vectorized
   banded DTW matches the analytics ``dtw_distance`` oracle at a
   large speedup; forward selection matches the pure-Python
   Heitsch-Romisch reference step for step.
2. **select_best at N>=1000 -> k<=50** — a deadline/risk utility
   sweep over a 1000-member travel-time ensemble; the reduced path
   (reduction *included* in the timed region, amortized over the
   sweep) must be >= 5x faster with zero value regret and bounded
   W1 distortion.
3. **route_many end-to-end** — a full vs ``reduction=`` router over
   repeated fleet traffic; identical expected utilities, memoized
   one-reduction-per-(OD, window), speedup recorded and floored.
4. **Exports** — fan-chart / rank-plot summaries of the trajectory
   ensemble land in the artifact (monotone bands, valid ranks).

``BENCH_E29_SCALE=small`` shrinks every workload for CI smoke runs
(equivalence and regret gates stay exact; the 5x floor applies at
full scale only).  Results go to ``BENCH_e29.json``.
"""

import json
import os
import pathlib
import time

import numpy as np
import pytest

from conftest import print_table

from repro import RoadNetwork
from repro.analytics.classification.distance import dtw_distance
from repro.benchmarking import summarize_latencies
from repro.datasets import TrafficSimulator
from repro.decision import (
    StochasticRouter,
    dtw_band_matrix,
    fan_chart,
    rank_plot,
    reduce_scenarios,
    select_best,
    wasserstein_matrix,
)
from repro.decision.reduction import (
    _forward_selection,
    _reduce_reference,
    _wasserstein_pairwise,
)
from repro.decision.utility import (
    DeadlineUtility,
    RiskAverseUtility,
    RiskNeutralUtility,
)
from repro.governance.uncertainty import EdgeCentricModel, Histogram
from repro.observability.metrics import use_registry

ARTIFACT_PATH = pathlib.Path(__file__).resolve().parent.parent / \
    "BENCH_e29.json"

SCALE = os.environ.get("BENCH_E29_SCALE", "full").strip().lower()
SMALL = SCALE == "small"

#: Phase-2 ensemble size and survivor count — the ISSUE gate is
#: N >= 1000 -> k <= 50 at >= 5x.  Small scale keeps the same shape
#: (and all the exactness gates) at CI-smoke cost.
N_SCENARIOS = 240 if SMALL else 1000
K_SURVIVORS = 24 if SMALL else 50
N_QUERIES = 60 if SMALL else 240

#: Speedup floors.  The select_best floor is the headline perf claim;
#: at small scale the reduction's one-time O(N^2) cost is amortized
#: over too few queries to clear 5x, so the floor stands down (the
#: equivalence / zero-regret / distortion gates never do).
SELECT_TARGET_SPEEDUP = 1.0 if SMALL else 5.0
DTW_TARGET_SPEEDUP = 5.0
ROUTE_TARGET_SPEEDUP = 1.0 if SMALL else 1.3

#: Fixed W1 distortion ceiling for the phase-2 reduction (minutes).
#: The ensemble spans ~[0, 60] minutes; a sub-minute probability-mass
#: transport error is far below any utility's decision resolution.
DISTORTION_BOUND = 1.0

#: Zero-regret tolerance: expected utilities are sums of ~1e2 float
#: products, so "identical decision value" means agreement at 1e-9.
REGRET_TOL = 1e-9

N_TRAJECTORIES = 60 if SMALL else 160
HORIZON = 48
DTW_BAND = 6

ROUTE_CANDIDATES = 16 if SMALL else 48
ROUTE_REDUCTION = 6 if SMALL else 8


def make_ensemble(n, rng):
    """``n`` travel-time histograms on one shared [0, 60]-minute grid.

    Gamma-family Monte-Carlo draws with per-scenario shape/scale/shift
    — the classic posterior-predictive travel-time ensemble.  A shared
    binning keeps the union atom grid small, which is exactly how a
    production ensemble (one generator, many scenarios) looks.
    """
    ensemble = []
    for _ in range(n):
        shape = rng.uniform(2.0, 9.0)
        scale = rng.uniform(0.8, 2.5)
        samples = rng.gamma(shape, scale, 400) + rng.uniform(0.0, 6.0)
        ensemble.append(Histogram.from_samples(
            samples, n_bins=120, bounds=(0.0, 60.0)))
    return ensemble


def make_trajectories(n, rng):
    """Diurnal-profile speed trajectories with shared shape classes."""
    base = np.sin(np.linspace(0.0, 2.0 * np.pi, HORIZON))
    rows = []
    for _ in range(n):
        phase = rng.uniform(0.0, 2.0 * np.pi)
        amplitude = rng.uniform(0.5, 2.0)
        drift = rng.uniform(-0.02, 0.02)
        noise = rng.normal(0.0, 0.15, HORIZON)
        rows.append(amplitude * np.roll(base, int(phase * 7)) +
                    drift * np.arange(HORIZON) + noise)
    return np.asarray(rows)


def bench_wasserstein_kernel(ensemble, rng):
    """Vectorized W1 matrix vs the brute-force pairwise oracle."""
    sample = [ensemble[i] for i in
              rng.choice(len(ensemble), size=min(80, len(ensemble)),
                         replace=False)]
    start = time.perf_counter()
    reference = _wasserstein_pairwise(sample)
    reference_s = time.perf_counter() - start
    start = time.perf_counter()
    kernel = wasserstein_matrix(sample)
    kernel_s = time.perf_counter() - start
    return {
        "kernel": "wasserstein_matrix",
        "n": len(sample),
        "reference_s": round(reference_s, 6),
        "kernel_s": round(kernel_s, 6),
        "speedup": round(reference_s / max(kernel_s, 1e-12), 2),
        "equivalent": bool(np.allclose(kernel, reference,
                                       rtol=1e-10, atol=1e-12)),
    }


def bench_dtw_kernel(trajectories):
    """Ensemble-vectorized banded DTW vs the pairwise analytics oracle."""
    n = len(trajectories)
    start = time.perf_counter()
    reference = np.zeros((n, n))
    for i in range(n):
        for j in range(i + 1, n):
            reference[i, j] = reference[j, i] = dtw_distance(
                trajectories[i], trajectories[j], band=DTW_BAND)
    reference_s = time.perf_counter() - start
    start = time.perf_counter()
    kernel = dtw_band_matrix(trajectories, band=DTW_BAND)
    kernel_s = time.perf_counter() - start
    return {
        "kernel": "dtw_band_matrix",
        "n": n,
        "reference_s": round(reference_s, 6),
        "kernel_s": round(kernel_s, 6),
        "speedup": round(reference_s / max(kernel_s, 1e-12), 2),
        "equivalent": bool(np.allclose(kernel, reference,
                                       rtol=1e-10, atol=1e-12)),
    }


def bench_selection_oracle(ensemble, rng):
    """Vectorized forward selection vs the pure-Python reference."""
    sample = [ensemble[i] for i in
              rng.choice(len(ensemble), size=min(60, len(ensemble)),
                         replace=False)]
    distance = wasserstein_matrix(sample)
    weights = np.full(len(sample), 1.0 / len(sample))
    indices = _forward_selection(distance, weights, 12)
    ref_indices = _reduce_reference(distance, weights, 12)

    def achieved_distortion(selected):
        return float(weights @ distance[:, list(selected)].min(axis=1))

    # Greedy picks can tie at machine precision (BLAS vs python-sum
    # rounding), so the oracle gate is the *achieved objective*: both
    # selections must transport the dropped mass at the same cost.
    distortion = achieved_distortion(indices)
    ref_distortion = achieved_distortion(ref_indices)
    return {
        "kernel": "forward_selection",
        "n": len(sample),
        "k": 12,
        "picks_identical": bool(list(indices) == list(ref_indices)),
        "equivalent": bool(
            abs(distortion - ref_distortion) <= 1e-9),
    }


def make_utilities():
    """The phase-2 query sweep: deadlines plus risk preferences.

    Deadline sweeps are what an arrival-window product runs per user;
    the risk-averse / risk-neutral tail checks strictly-monotone
    utilities (unique argmax) through the same reduction.
    """
    n_deadline = N_QUERIES - N_QUERIES // 6 - 1
    utilities = [DeadlineUtility(d)
                 for d in np.linspace(8.0, 45.0, n_deadline)]
    utilities += [RiskAverseUtility(aversion=a, scale=10.0)
                  for a in np.linspace(0.05, 0.6, N_QUERIES // 6)]
    utilities.append(RiskNeutralUtility())
    return utilities


def bench_select_best(ensemble):
    """Phase 2: the N>=1000 -> k<=50 utility sweep, full vs reduced."""
    utilities = make_utilities()

    full_latencies = []
    full_answers = []
    start = time.perf_counter()
    for utility in utilities:
        t0 = time.perf_counter()
        full_answers.append(select_best(ensemble, utility))
        full_latencies.append(time.perf_counter() - t0)
    full_s = time.perf_counter() - start

    # Reduced path: the one-time W1 forward selection is *inside* the
    # timed region — the claim is end-to-end, amortized over the sweep.
    reduced_latencies = []
    reduced_answers = []
    start = time.perf_counter()
    reduction = reduce_scenarios(ensemble, K_SURVIVORS)
    for utility in utilities:
        t0 = time.perf_counter()
        reduced_answers.append(
            select_best(ensemble, utility, reduction=reduction))
        reduced_latencies.append(time.perf_counter() - t0)
    reduced_s = time.perf_counter() - start

    regrets = [abs(full_value - reduced_value)
               for (_, full_value, _), (_, reduced_value, _)
               in zip(full_answers, reduced_answers)]
    winners_match = sum(
        full_index == reduced_index
        for (full_index, _, _), (reduced_index, _, _)
        in zip(full_answers, reduced_answers))
    return {
        "phase": "select_best",
        "n_scenarios": len(ensemble),
        "k": reduction.n_reduced,
        "n_queries": len(utilities),
        "full_s": round(full_s, 4),
        "reduced_s": round(reduced_s, 4),
        "speedup": round(full_s / max(reduced_s, 1e-12), 2),
        "max_value_regret": float(max(regrets)),
        "winners_matched": int(winners_match),
        "distortion": float(reduction.distortion),
        "full_latency": summarize_latencies(full_latencies).to_dict(),
        "reduced_latency":
            summarize_latencies(reduced_latencies).to_dict(),
    }


def build_world():
    """The E28 fleet world, with every edge covered by the cost model."""
    network = RoadNetwork.grid(6, 6)
    simulator = TrafficSimulator(network, rng=np.random.default_rng(0))
    od_pairs = [((0, 0), (5, 5)), ((0, 5), (5, 0)), ((3, 0), (3, 5)),
                ((0, 2), (5, 2))]
    rng = np.random.default_rng(2)
    trips = []
    for origin, destination in od_pairs:
        for path in network.k_shortest_paths(origin, destination, 4):
            edges = network.path_edges(path)
            for _ in range(25):
                times = simulator.sample_edge_times(edges, 480,
                                                    rng=rng)
                trips.append((path, times, 480.0))
    model = EdgeCentricModel(n_bins=25).fit(trips)
    return network, model, od_pairs


def bench_route_many(network, model, od_pairs):
    """Phase 3: end-to-end full vs ``reduction=`` router."""
    full_router = StochasticRouter(network, model,
                                   n_candidates=ROUTE_CANDIDATES)
    reduced_router = StochasticRouter(network, model,
                                      n_candidates=ROUTE_CANDIDATES,
                                      reduction=ROUTE_REDUCTION)
    utilities = [DeadlineUtility(d)
                 for d in np.linspace(18.0, 40.0, 4 if SMALL else 12)]
    utilities += [RiskAverseUtility(aversion=a, scale=10.0)
                  for a in (0.1, 0.3, 0.5)]
    queries = [(origin, destination, 480.0 + minute)
               for origin, destination in od_pairs
               for minute in range(3)]

    def drive(router):
        answers = []
        for utility in utilities:
            answers.extend(router.route_many(queries, utility))
        return answers

    drive(full_router)       # warm path + distribution memos
    drive(reduced_router)    # ... and the reduction memo
    start = time.perf_counter()
    full_answers = drive(full_router)
    full_s = time.perf_counter() - start
    start = time.perf_counter()
    reduced_answers = drive(reduced_router)
    reduced_s = time.perf_counter() - start

    regrets = [abs(full_value - reduced_value)
               for (_, _, full_value), (_, _, reduced_value)
               in zip(full_answers, reduced_answers)]
    winners_match = sum(
        full_path == reduced_path
        for (full_path, _, _), (reduced_path, _, _)
        in zip(full_answers, reduced_answers))
    info = reduced_router.cache_info()
    return {
        "phase": "route_many",
        "n_candidates": ROUTE_CANDIDATES,
        "reduction": ROUTE_REDUCTION,
        "n_queries": len(queries) * len(utilities),
        "full_s": round(full_s, 4),
        "reduced_s": round(reduced_s, 4),
        "speedup": round(full_s / max(reduced_s, 1e-12), 2),
        "max_value_regret": float(max(regrets)),
        "winners_matched": int(winners_match),
        "reduction_memo_size": info["reduction_memo_size"],
    }


def bench_exports(trajectories):
    """Phase 4: fan-chart / rank-plot export data for the artifact."""
    chart = fan_chart(trajectories)
    ranks = rank_plot(trajectories)
    medians = chart["bands"]["0.5"]
    return {
        "phase": "exports",
        "fan_chart_quantiles": list(chart["quantiles"]),
        "fan_chart_median_mean": float(np.mean(medians)),
        "bands_monotone": bool(all(
            np.all(np.asarray(chart["bands"][f"{lo:g}"]) <=
                   np.asarray(chart["bands"][f"{hi:g}"]) + 1e-12)
            for lo, hi in zip(chart["quantiles"],
                              chart["quantiles"][1:]))),
        "rank_order_valid": bool(
            sorted(ranks["order"]) == list(range(len(trajectories)))),
    }


def run_experiment():
    rng = np.random.default_rng(7)
    ensemble = make_ensemble(N_SCENARIOS, rng)
    trajectories = make_trajectories(N_TRAJECTORIES, rng)
    network, model, od_pairs = build_world()
    with use_registry() as registry:
        results = {
            "kernels": [
                bench_wasserstein_kernel(ensemble, rng),
                bench_dtw_kernel(trajectories),
                bench_selection_oracle(ensemble, rng),
            ],
            "select_best": bench_select_best(ensemble),
            "route_many": bench_route_many(network, model, od_pairs),
            "exports": bench_exports(trajectories),
        }
        snapshot = registry.snapshot()
    reduced_counter = snapshot.get("decision.reduction_scenarios_total")
    results["metrics_series"] = (
        len(reduced_counter["series"]) if reduced_counter else 0)
    return results


def emit_trajectory(results):
    payload = {
        "experiment": "e29_scenario_reduction",
        "scale": SCALE,
        "select_target_speedup": SELECT_TARGET_SPEEDUP,
        "distortion_bound": DISTORTION_BOUND,
        **results,
    }
    ARTIFACT_PATH.write_text(json.dumps(payload, indent=2,
                                        sort_keys=True) + "\n")
    return payload


@pytest.mark.benchmark(group="e29")
def test_e29_scenario_reduction(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    select = results["select_best"]
    route = results["route_many"]
    print_table(
        "E29: scenario reduction (kernels)",
        [{k: row.get(k) for k in ("kernel", "n", "reference_s",
                                  "kernel_s", "speedup", "equivalent")}
         for row in results["kernels"]],
    )
    print_table(
        "E29: k<<N decisions, full vs reduced",
        [{k: phase.get(k) for k in
          ("phase", "n_queries", "full_s", "reduced_s", "speedup",
           "max_value_regret", "winners_matched")}
         for phase in (select, route)],
    )
    payload = emit_trajectory(results)
    assert ARTIFACT_PATH.exists()

    # Correctness first: every kernel matches its brute-force oracle.
    for row in results["kernels"]:
        assert row["equivalent"], f"{row['kernel']} diverged"

    # Zero decision regret, both phases: the reduced-ensemble winner's
    # expected utility equals the full-ensemble winner's exactly.
    assert select["max_value_regret"] <= REGRET_TOL, select
    assert route["max_value_regret"] <= REGRET_TOL, route

    # Bounded transport distortion for the phase-2 reduction.
    assert select["distortion"] <= DISTORTION_BOUND, select

    # The perf claims.
    assert select["speedup"] >= SELECT_TARGET_SPEEDUP, select
    assert route["speedup"] >= ROUTE_TARGET_SPEEDUP, route
    dtw_row = results["kernels"][1]
    assert dtw_row["speedup"] >= DTW_TARGET_SPEEDUP, dtw_row

    # The reduction memo actually amortizes: one entry per (OD, window),
    # not one per query.
    assert 1 <= route["reduction_memo_size"] <= route["n_queries"], route

    # Reduction metrics flowed through the registry.
    assert results["metrics_series"] >= 1, results

    # Export sanity: quantile bands are ordered, ranks are a permutation.
    exports = results["exports"]
    assert exports["bands_monotone"], exports
    assert exports["rank_order_valid"], exports
