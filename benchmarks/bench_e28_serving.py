"""E28 — Serving layer: sustained qps at a fixed p99 SLO.

Claim: the embedded :class:`DecisionServer` turns the library's batch
APIs into an online service without giving anything up — batched
answers stay *exactly* equal to direct single-call oracles, a
closed-loop fleet sustains its throughput with client-observed p99
inside the SLO, and when offered load exceeds capacity the server
sheds the excess as typed ``Overloaded`` results instead of letting
queues (and tail latency) grow without bound.

Three phases, all gated:

1. **Equivalence** — every op through the server matches the direct
   router / matcher / network call (value-for-value, arrays byte
   compared).
2. **Sustained load** — a closed-loop fleet at moderate concurrency;
   asserts p99 <= SLO and zero sheds, records qps.
3. **Overload** — a larger fleet against a tiny admission queue;
   asserts the server sheds (typed, not errors) and the survivors
   still meet the SLO.

Results go to ``BENCH_e28.json`` next to the other artifacts for CI
trend tracking.
"""

import json
import pathlib

import numpy as np
import pytest

from conftest import print_table

from repro import RoadNetwork
from repro.datasets import TrafficSimulator, TrajectoryGenerator
from repro.decision import StochasticRouter
from repro.decision.utility import DeadlineUtility
from repro.governance.fusion import HmmMapMatcher
from repro.governance.uncertainty import EdgeCentricModel
from repro.observability.metrics import use_registry
from repro.serve import (
    DecisionServer,
    DistanceQuery,
    MatchQuery,
    RouteQuery,
    closed_loop,
)

ARTIFACT_PATH = pathlib.Path(__file__).resolve().parent.parent / \
    "BENCH_e28.json"

#: Client-observed p99 ceiling for the sustained phase (seconds).
#: Generous for CI boxes — the point is the *gate*, not the number;
#: the artifact records the observed p99 for trend tracking.
SLO_P99 = 0.25

#: Closed-loop fleet sizes.
SUSTAINED_CLIENTS = 8
OVERLOAD_CLIENTS = 16

#: Seconds per measured phase.
PHASE_SECONDS = 2.0


def build_world():
    network = RoadNetwork.grid(6, 6)
    simulator = TrafficSimulator(network,
                                 rng=np.random.default_rng(0))
    generator = TrajectoryGenerator(simulator,
                                    rng=np.random.default_rng(1))
    trips_xy = generator.generate(8, noise_sigma=0.1,
                                  sample_interval=0.5, min_hops=4)
    trajectories = [trajectory for _, trajectory in trips_xy]
    od_pairs = [((0, 0), (5, 5)), ((0, 5), (5, 0)), ((3, 0), (3, 5)),
                ((0, 2), (5, 2))]
    # Fit the cost model over the k-shortest candidate paths of the
    # benchmark's own OD pairs (as E19 does) so every route query has
    # covered candidates and a non-degenerate distribution.
    rng = np.random.default_rng(2)
    trips = []
    for origin, destination in od_pairs:
        for path in network.k_shortest_paths(origin, destination, 4):
            edges = network.path_edges(path)
            for _ in range(25):
                times = simulator.sample_edge_times(edges, 480,
                                                    rng=rng)
                trips.append((path, times, 480.0))
    model = EdgeCentricModel(n_bins=25).fit(trips)
    return network, model, od_pairs, trajectories


def make_backends(network, model):
    router = StochasticRouter(network, model, n_candidates=4)
    matcher = HmmMapMatcher(network, sigma=0.12, beta=0.5)
    return router, matcher


def gate_equivalence(server, network, model, od_pairs, trajectories):
    """Phase 1: batched serving == direct single-call oracles."""
    oracle_router, oracle_matcher = make_backends(network, model)
    utility = DeadlineUtility(12.0)
    checked = 0
    for origin, destination in od_pairs:
        served = server.route(origin, destination,
                              departure_minute=480.0)
        assert served.ok, served.error
        direct = oracle_router.route_many(
            [(origin, destination, 480.0)], utility)[0]
        assert (served.value is None) == (direct is None)
        if direct is not None:
            assert served.value[0] == direct[0]
            np.testing.assert_array_equal(served.value[1].support,
                                          direct[1].support)
            np.testing.assert_array_equal(
                served.value[1].probabilities,
                direct[1].probabilities)
            assert served.value[2] == direct[2]
        checked += 1
    for trajectory in trajectories:
        served = server.match(trajectory)
        assert served.ok, served.error
        assert served.value == oracle_matcher.match(trajectory)
        checked += 1
    for origin, _ in od_pairs:
        served = server.distances(origin, cutoff=5.0)
        assert served.ok, served.error
        np.testing.assert_array_equal(
            served.value, network.dijkstra_array(origin, cutoff=5.0))
        checked += 1
    return checked


def make_query_mix(od_pairs, trajectories):
    def make_query(client, iteration):
        tick = client + iteration
        kind = tick % 3
        pair = od_pairs[tick % len(od_pairs)]
        if kind == 0:
            return RouteQuery(pair[0], pair[1], 480.0)
        if kind == 1:
            return MatchQuery(trajectories[tick % len(trajectories)])
        return DistanceQuery(pair[0], cutoff=5.0)
    return make_query


def warm(server, make_query):
    """Serve each query kind once so the measured phases see warm
    caches and a steady-state service-time EWMA, not cold-start
    compute (which would both fatten the p99 tail and poison the
    doomed-shedding estimate)."""
    for tick in range(24):
        result = server.submit(make_query(0, tick)).result()
        assert result.ok, result.error


def run_experiment():
    network, model, od_pairs, trajectories = build_world()
    make_query = make_query_mix(od_pairs, trajectories)
    utility = DeadlineUtility(12.0)

    with use_registry() as registry:
        router, matcher = make_backends(network, model)
        with DecisionServer(router=router, matcher=matcher,
                            network=network, utility=utility,
                            max_queue=256,
                            batch_window=0.002) as server:
            equivalence_checks = gate_equivalence(
                server, network, model, od_pairs, trajectories)
            warm(server, make_query)
            sustained = closed_loop(server, make_query,
                                    n_clients=SUSTAINED_CLIENTS,
                                    duration=PHASE_SECONDS)
            stats = server.stats()
        histogram = registry.get("serve.latency_seconds")
        server_p99 = max(
            (histogram.quantile(0.99, op=op) or 0.0)
            for op in ("route", "match", "distances"))
        batch_hist = registry.get("serve.batch_size")
        batch_count = batch_hist.total_count()
        batch_sum = sum(batch_hist.sum(op=op)
                        for op in ("route", "match", "distances"))
        mean_batch = batch_sum / batch_count if batch_count else 0.0

    # Overload phase: its own server with a tiny admission queue so
    # the 16-client fleet reliably exceeds capacity and gets shed.
    router, matcher = make_backends(network, model)
    with DecisionServer(router=router, matcher=matcher,
                        network=network, utility=utility,
                        max_queue=2, batch_window=0.0) as server:
        warm(server, make_query)
        overload = closed_loop(server, make_query,
                               n_clients=OVERLOAD_CLIENTS,
                               duration=PHASE_SECONDS,
                               deadline=SLO_P99)

    return {
        "equivalence_checks": equivalence_checks,
        "sustained": sustained,
        "overload": overload,
        "server_stats": stats,
        "server_p99_estimate": server_p99,
        "mean_batch": mean_batch,
    }


def emit_trajectory(results):
    payload = {
        "experiment": "e28_serving",
        "slo_p99_seconds": SLO_P99,
        "equivalence_checks": results["equivalence_checks"],
        "sustained": results["sustained"].to_dict(),
        "overload": results["overload"].to_dict(),
        "server_p99_estimate": results["server_p99_estimate"],
        "mean_batch": results["mean_batch"],
        "batches": results["server_stats"]["batches"],
    }
    ARTIFACT_PATH.write_text(json.dumps(payload, indent=2,
                                        sort_keys=True) + "\n")
    return payload


@pytest.mark.benchmark(group="e28")
def test_e28_serving(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1,
                                 iterations=1)
    payload = emit_trajectory(results)
    sustained, overload = results["sustained"], results["overload"]
    print_table(
        f"E28: closed-loop serving (SLO p99 <= {SLO_P99}s)",
        [{
            "phase": name,
            "clients": report.n_clients,
            "qps": report.qps,
            "p50_ms": report.latency_p50 * 1e3,
            "p99_ms": report.latency_p99 * 1e3,
            "shed_rate": report.shed_rate,
        } for name, report in (("sustained", sustained),
                               ("overload", overload))],
    )
    assert ARTIFACT_PATH.exists()

    # Phase 1 gate: every op checked, value-for-value.
    assert results["equivalence_checks"] >= 16

    # Phase 2 gate: the fleet sustains throughput inside the SLO
    # without shedding, and requests actually coalesced into batches.
    assert sustained.qps > 0
    assert sustained.latency_p99 <= SLO_P99, (
        f"sustained p99 {sustained.latency_p99 * 1e3:.1f}ms over "
        f"{SLO_P99 * 1e3:.0f}ms SLO")
    assert sustained.outcomes.get("overloaded", 0) == 0
    assert payload["mean_batch"] >= 1.0

    # The server's bucketed p99 estimate should be the same order of
    # magnitude as the exact client-side percentile (loose: bucket
    # estimation plus queue-time asymmetry).
    assert results["server_p99_estimate"] <= max(
        10 * sustained.latency_p99, 0.5)

    # Phase 3 gate: overload is shed as *typed* results — no errors,
    # a nonzero shed rate, and the admitted survivors stay healthy.
    assert overload.shed_rate > 0.0, overload.outcomes
    assert overload.outcomes.get("error", 0) == 0
    assert overload.outcomes.get("ok", 0) > 0
