"""E11 — Robust anomaly detection on contaminated training data
(§II-C Robustness, [34], [35]).

Claim: "traditional unsupervised anomaly detection algorithms assume
implicitly that training occurs on fully-clean data, which is rarely
available in practice"; trimmed-loss training keeps detection quality
as the training archive gets dirtier.
"""

import numpy as np
import pytest

from conftest import print_table
from repro.analytics.anomaly import (
    AutoencoderDetector,
    RobustAutoencoderDetector,
)
from repro.analytics.metrics import point_adjusted_scores, roc_auc
from repro.datasets import inject_anomalies, seasonal_series

DETECTOR = dict(window=24, n_hidden=48, n_latent=12, n_epochs=60,
                learning_rate=0.01)
SEEDS = (9, 30, 50, 70, 90)


def auc_for(detector, train, test, labels):
    detector.fit(train)
    scores = point_adjusted_scores(labels, detector.score(test))
    return roc_auc(labels, scores)


def run_experiment():
    rows = []
    for contamination in (0.0, 0.1, 0.2):
        vanilla_scores, robust_scores = [], []
        for seed in SEEDS:
            clean = seasonal_series(1000,
                                    rng=np.random.default_rng(seed))
            if contamination > 0:
                train, _ = inject_anomalies(
                    clean, contamination,
                    rng=np.random.default_rng(seed + 1))
            else:
                train = clean
            test_clean = seasonal_series(
                500, rng=np.random.default_rng(seed + 2))
            test, labels = inject_anomalies(
                test_clean, 0.05, rng=np.random.default_rng(seed + 3))
            vanilla_scores.append(auc_for(
                AutoencoderDetector(rng=np.random.default_rng(seed + 4),
                                    **DETECTOR),
                train, test, labels))
            robust_scores.append(auc_for(
                RobustAutoencoderDetector(
                    trim_fraction=0.3,
                    rng=np.random.default_rng(seed + 4), **DETECTOR),
                train, test, labels))
        rows.append({
            "contamination": contamination,
            "vanilla_auc": float(np.median(vanilla_scores)),
            "robust_auc": float(np.median(robust_scores)),
        })
    return rows


@pytest.mark.benchmark(group="e11")
def test_e11_robust_anomaly(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_table("E11: detection AUC vs training contamination "
                "(median over 5 seeds)", rows)
    # On clean data the two are equivalent (trimming no-ops) ...
    assert abs(rows[0]["robust_auc"] - rows[0]["vanilla_auc"]) < 0.02
    # ... and under contamination the robust detector holds up at least
    # as well as the vanilla one.
    for row in rows[1:]:
        assert row["robust_auc"] >= row["vanilla_auc"] - 0.015
