"""E13 — Replay-based continual learning on streaming data
(§II-C Robustness, [37], [38]).

Claim: when the data distribution shifts across regimes (new roads,
changed demand), replay buffers fight catastrophic forgetting — naive
fine-tuning forgets old regimes, full retraining is the (expensive)
upper bound, replay gets most of the benefit at bounded memory.
"""

import numpy as np
import pytest

from conftest import print_table
from repro import TimeSeries
from repro.analytics.forecasting import ARForecaster
from repro.analytics.robustness import (
    ReplayContinualForecaster,
    evaluate_forgetting,
)
from repro.datasets import seasonal_series


def make_regime(level, seed, length=400):
    base = seasonal_series(length, amplitude=2.0,
                           rng=np.random.default_rng(seed))
    return TimeSeries(base.values + level)


def build_regimes():
    levels = [0.0, 6.0, -4.0, 10.0]
    return [(make_regime(level, 10 + i), make_regime(level, 20 + i))
            for i, level in enumerate(levels)]


def run_experiment():
    regimes = build_regimes()
    rows = []
    for strategy in ("finetune", "replay", "retrain"):
        scores = evaluate_forgetting(
            lambda: ReplayContinualForecaster(
                lambda: ARForecaster(n_lags=12, seasonal_period=96),
                strategy=strategy, rng=np.random.default_rng(0)),
            regimes)
        forgetting = float(np.nanmean(
            scores[-1, :-1] - np.diag(scores)[:-1]))
        rows.append({
            "strategy": strategy,
            "final_avg_mae": float(np.nanmean(scores[-1])),
            "forgetting": forgetting,
            "memory": {"finetune": "1 regime", "replay": "8 segments",
                       "retrain": "everything"}[strategy],
        })
    return rows


@pytest.mark.benchmark(group="e13")
def test_e13_continual(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_table("E13: continual learning over 4 regimes", rows)
    by_name = {row["strategy"]: row for row in rows}
    # Replay forgets far less than fine-tuning ...
    assert by_name["replay"]["forgetting"] < \
        0.5 * by_name["finetune"]["forgetting"]
    # ... and approaches the full-retraining upper bound.
    assert by_name["replay"]["final_avg_mae"] <= \
        by_name["retrain"]["final_avg_mae"] * 1.5
