"""E17 — Dataset condensation preserves training utility
(§II-C Resource efficiency, TimeDC [49]).

Claim: "compress large time series into a smaller counterpart while
maintaining key properties" — a classifier trained on the condensed set
approaches full-data accuracy at 10-30x compression, and the two-fold
(time + frequency) matching beats time-only matching and random
sampling.
"""

import numpy as np
import pytest

from conftest import print_table
from repro.analytics.classification import RocketClassifier
from repro.analytics.efficiency import TimeSeriesCondenser
from repro.datasets.classification import waveform_classification_dataset


def accuracy_of(Xtr, ytr, Xte, yte, seed=3):
    model = RocketClassifier(150, rng=np.random.default_rng(seed))
    model.fit(Xtr, ytr)
    return model.score(Xte, yte)


def run_experiment():
    X, y = waveform_classification_dataset(
        80, 96, 4, rng=np.random.default_rng(0))
    Xte, yte = waveform_classification_dataset(
        30, 96, 4, rng=np.random.default_rng(1))
    full_accuracy = accuracy_of(X, y, Xte, yte)
    rng = np.random.default_rng(2)

    rows = []
    for per_class in (3, 5, 10):
        n_condensed = 4 * per_class
        # Two-fold condensation.
        condenser = TimeSeriesCondenser(
            per_class, frequency_weight=1.0,
            rng=np.random.default_rng(4))
        Xc, yc = condenser.fit_labeled(X, y)
        # Time-only ablation.
        time_only = TimeSeriesCondenser(
            per_class, frequency_weight=0.0,
            rng=np.random.default_rng(4))
        Xt, yt = time_only.fit_labeled(X, y)
        # Random-sample baseline (mean of 3 draws).
        random_scores = []
        for _ in range(3):
            chosen = rng.choice(len(X), size=n_condensed, replace=False)
            random_scores.append(accuracy_of(X[chosen], y[chosen],
                                             Xte, yte))
        rows.append({
            "condensed_size": n_condensed,
            "compression": f"{len(X) // n_condensed}x",
            "two_fold": accuracy_of(Xc, yc, Xte, yte),
            "time_only": accuracy_of(Xt, yt, Xte, yte),
            "random_sample": float(np.mean(random_scores)),
            "full_data": full_accuracy,
        })
    return rows


@pytest.mark.benchmark(group="e17")
def test_e17_condensation(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_table("E17: classifier accuracy trained on condensed data",
                rows)
    for row in rows:
        # The condensed set preserves most of the full-data utility.
        assert row["two_fold"] >= row["full_data"] - 0.15
        # Two-fold matching is at least as good as time-only.
        assert row["two_fold"] >= row["time_only"] - 0.02
    # At the largest compression the synthetic set beats random picks.
    assert rows[0]["two_fold"] > rows[0]["random_sample"] - 0.02
