"""Ablation A2 — ensemble weighting schemes.

The "adaptive selection" claim behind the paper's ensemble strategies:
an ensemble whose weights come from held-out validation should beat a
uniform combination whenever the members differ in quality — and never
lose much when they don't.
"""

import numpy as np
import pytest

from conftest import print_table
from repro.analytics.forecasting import (
    ARForecaster,
    DriftForecaster,
    EnsembleForecaster,
    NaiveForecaster,
    SeasonalNaiveForecaster,
)
from repro.analytics.metrics import mae
from repro.datasets import seasonal_series


def members():
    return [
        NaiveForecaster(),                    # weak on seasonal data
        DriftForecaster(),                    # weak on seasonal data
        SeasonalNaiveForecaster(96),          # strong
        ARForecaster(12, seasonal_period=96),  # strong
    ]


def run_experiment():
    series = seasonal_series(900, rng=np.random.default_rng(0))
    train, test = series.split(0.9)
    horizon = len(test)
    rows = []
    for weighting in ("uniform", "inverse_error", "softmax"):
        ensemble = EnsembleForecaster(members(), weighting=weighting)
        prediction = ensemble.forecast(train, horizon)
        weights = [float(w) for w in np.round(ensemble.weights_, 3)]
        rows.append({
            "weighting": weighting,
            "mae": mae(test.values, prediction),
            "weights": weights,
        })
    # Reference: the single best member.
    best_member = ARForecaster(12, seasonal_period=96)
    rows.append({
        "weighting": "best_single_member",
        "mae": mae(test.values, best_member.forecast(train, horizon)),
        "weights": "-",
    })
    return rows


@pytest.mark.benchmark(group="a02")
def test_a02_ensemble_weighting(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_table("A2: ensemble weighting schemes on seasonal data", rows)
    by_name = {row["weighting"]: row["mae"] for row in rows}
    # Adaptive weighting beats uniform when members differ in quality.
    assert by_name["inverse_error"] < by_name["uniform"]
    assert by_name["softmax"] < by_name["uniform"]
    # And stays close to (or beats) the single best member.
    assert by_name["inverse_error"] <= \
        by_name["best_single_member"] * 1.3
