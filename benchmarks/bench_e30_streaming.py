"""E30 — Streaming/incremental execution: ticks vs from-scratch reruns.

Claim: for a rolling-feed decision pipeline whose expensive analytics
depend on *static* inputs, ``IncrementalSession.tick`` processes the
stream >= 5x faster (events/sec) than naively re-running the whole
DAG per arrival batch — while every tick's final state stays
**byte-identical** to the from-scratch ``run()`` oracle on the same
accumulated input, on all three executor backends.

The workload is the archetypal monitoring loop: a cheap dirty cone
(ingest -> impute -> score -> act) rides on two heavy static
analytics stages (spectral embedding + ridge calibration of a fixed
history matrix) plus an append-only volume aggregate maintained by an
``incremental=`` fold.  Each tick mutates only the feed keys, so the
session replays the heavy stages from their committed deltas and
folds the aggregate instead of re-reducing the whole log.

Three phases, all gated:

1. **Equivalence** — per-tick fingerprint identity against the
   oracle for serial, thread and process backends (tombstones and
   the fold included);
2. **Throughput** — events/sec incremental vs naive on the serial
   backend, >= 5x at full scale;
3. **Accounting** — ``engine.ticks_total`` / ``tick_stages_total``
   reconcile with the reports (replays actually happened, folds
   actually folded).

``BENCH_E30_SCALE=small`` shrinks the workload for CI smoke runs
(equivalence and accounting gates stay exact; the 5x floor applies
at full scale only).  Results go to ``BENCH_e30.json``.
"""

import json
import os
import pathlib
import time

import numpy as np
import pytest

from conftest import print_table

from repro import DecisionPipeline
from repro.benchmarking import summarize_latencies
from repro.core import ProcessExecutor
from repro.core.cache import fingerprint
from repro.observability import MetricsRegistry

ARTIFACT_PATH = pathlib.Path(__file__).resolve().parent.parent / \
    "BENCH_e30.json"

SCALE = os.environ.get("BENCH_E30_SCALE", "full").strip().lower()
SMALL = SCALE == "small"

MATRIX_N = 96 if SMALL else 288          # static history matrix
WINDOW = 128 if SMALL else 512           # feed events per tick
N_TICKS = 8 if SMALL else 30
EQUIVALENCE_TICKS = 4 if SMALL else 6    # oracle-checked ticks/backend
TARGET_SPEEDUP = 1.0 if SMALL else 5.0


# -- stage functions (module-level: picklable for the process pool) ----------


def st_history(view):
    """Deterministic history matrix from the static base seed."""
    base = int(view["base"])
    n = int(view["matrix_n"])
    grid = np.arange(n, dtype=np.float64)
    matrix = np.cos(np.outer(grid + base, grid + 1.0) / n)
    view["matrix"] = matrix + np.eye(n) * n
    return "history"


def st_embed(view):
    """Heavy static analytics #1: spectral embedding of the history."""
    matrix = view["matrix"]
    values, vectors = np.linalg.eigh(matrix @ matrix.T)
    view["embedding"] = vectors[:, -8:] * values[-8:]
    return "embedded"


def st_calibrate(view):
    """Heavy static analytics #2: ridge calibration against history."""
    matrix = view["matrix"]
    gram = matrix.T @ matrix + np.eye(matrix.shape[1])
    view["model"] = np.linalg.solve(gram, matrix.T.sum(axis=1))
    return "calibrated"


def st_ingest(view):
    view["window"] = np.asarray(view["feed"], dtype=np.float64)
    return "ingested", {"events": int(len(view["feed"]))}


def st_impute(view):
    """Cheap per-tick governance: LOCF over the tick's window."""
    window = view["window"].copy()
    carry = 0.0
    for index in range(len(window)):
        if np.isnan(window[index]):
            window[index] = carry
        else:
            carry = window[index]
    view["clean"] = window
    return "imputed"


def st_aggregate_full(view):
    """From-scratch form of the fold: totals over the whole log."""
    log = view["feed_log"]
    view["rows_seen"] = len(log)
    view["total_volume"] = float(sum(log))
    return "aggregated"


def st_aggregate_fold(view, tick):
    """Fold form: add only the suffix that arrived since last tick.

    Accumulates element-wise so the float additions associate exactly
    as the from-scratch ``sum`` does — byte-identity demands fold
    discipline down to rounding order.
    """
    log = view["feed_log"]
    total = view["total_volume"]
    for value in log[view["rows_seen"]:]:
        total += value
    view["total_volume"] = float(total)
    view["rows_seen"] = len(log)
    return "folded"


def st_score(view):
    clean = view["clean"]
    weights = np.resize(view["model"], clean.shape)
    basis = np.resize(view["embedding"][:, -1], clean.shape)
    view["scores"] = clean * weights + basis
    return "scored"


def st_act(view):
    scores = view["scores"]
    view["action"] = ("shed" if float(scores.mean()) >
                      float(np.median(scores)) else "hold")
    view["peak"] = int(np.argmax(scores))
    return "acted"


def build_pipeline():
    pipeline = DecisionPipeline("e30 streaming")
    pipeline.add_data("history", st_history,
                      reads=("base", "matrix_n"), writes=("matrix",))
    pipeline.add_data("ingest", st_ingest,
                      reads=("feed",), writes=("window",))
    pipeline.add_governance("impute", st_impute,
                            reads=("window",), writes=("clean",))
    pipeline.add_analytics("embed", st_embed,
                           reads=("matrix",), writes=("embedding",))
    pipeline.add_analytics("calibrate", st_calibrate,
                           reads=("matrix",), writes=("model",))
    pipeline.add_analytics("aggregate", st_aggregate_full,
                           reads=("feed_log",),
                           writes=("total_volume", "rows_seen"),
                           incremental=st_aggregate_fold)
    pipeline.add_analytics("score", st_score,
                           reads=("clean", "embedding", "model"),
                           writes=("scores",))
    pipeline.add_decision("act", st_act,
                          reads=("scores",),
                          writes=("action", "peak"))
    return pipeline


def make_feed(rng, n):
    """One tick's arrivals: a noisy diurnal ramp with sensor gaps."""
    feed = np.abs(rng.normal(10.0, 3.0, n))
    feed[rng.random(n) < 0.08] = np.nan
    return feed


def tick_mutation(rng, log):
    feed = make_feed(rng, WINDOW)
    log.extend(float(x) for x in np.nan_to_num(feed))
    return {"feed": feed, "feed_log": list(log)}


def initial_state(log):
    return {"base": 3, "matrix_n": MATRIX_N,
            "feed": np.zeros(WINDOW), "feed_log": list(log)}


def bench_equivalence(backend_name, executor):
    """Phase 1: per-tick byte-identity against the oracle."""
    rng = np.random.default_rng(42)
    pipeline = build_pipeline()
    log = []
    session = pipeline.stream(initial_state(log), executor=executor)
    identical = 0
    replays = 0
    for _ in range(EQUIVALENCE_TICKS):
        state, report = session.tick(changed=tick_mutation(rng, log))
        oracle, _ = pipeline.run(session.input_state,
                                 executor=executor)
        identical += fingerprint(state) == fingerprint(oracle)
        replays += report.cache_hits
    return {
        "backend": backend_name,
        "ticks": EQUIVALENCE_TICKS,
        "identical": identical,
        "replayed_stages": replays,
    }


def bench_throughput():
    """Phase 2: events/sec, incremental ticks vs naive reruns."""
    rng = np.random.default_rng(7)
    pipeline = build_pipeline()
    registry = MetricsRegistry()
    log = []
    session = pipeline.stream(initial_state(log), executor="serial",
                              metrics=registry)
    session.tick()  # warm-up: populate every delta
    mutations = [tick_mutation(rng, log) for _ in range(N_TICKS)]

    tick_latencies = []
    start = time.perf_counter()
    for changed in mutations:
        t0 = time.perf_counter()
        session.tick(changed=changed)
        tick_latencies.append(time.perf_counter() - t0)
    incremental_s = time.perf_counter() - start

    # The naive baseline replays the same mutation stream through
    # from-scratch runs on the identical accumulated inputs.
    naive_latencies = []
    state = initial_state([])
    start = time.perf_counter()
    for changed in mutations:
        state.update(changed)
        t0 = time.perf_counter()
        naive_state, _ = pipeline.run(state, executor="serial")
        naive_latencies.append(time.perf_counter() - t0)
    naive_s = time.perf_counter() - start

    assert fingerprint(session.state) == fingerprint(naive_state)
    events = N_TICKS * WINDOW
    ticks = registry.counter("engine.ticks_total")
    stages = registry.counter("engine.tick_stages_total")
    return {
        "n_ticks": N_TICKS,
        "events_per_tick": WINDOW,
        "incremental_s": round(incremental_s, 4),
        "naive_s": round(naive_s, 4),
        "incremental_events_per_s": round(events / incremental_s, 1),
        "naive_events_per_s": round(events / naive_s, 1),
        "speedup": round(naive_s / max(incremental_s, 1e-12), 2),
        "ticks_ok": ticks.value(status="ok"),
        "stages_replayed": stages.value(disposition="replayed"),
        "stages_incremental": stages.value(disposition="incremental"),
        "stages_executed": stages.value(disposition="executed"),
        "tick_latency": summarize_latencies(tick_latencies).to_dict(),
        "naive_latency": summarize_latencies(naive_latencies).to_dict(),
    }


def run_experiment():
    process_pool = ProcessExecutor(max_workers=2)
    try:
        equivalence = [
            bench_equivalence("serial", "serial"),
            bench_equivalence("thread", "thread"),
            bench_equivalence("process", process_pool),
        ]
    finally:
        process_pool.close()
    return {
        "equivalence": equivalence,
        "throughput": bench_throughput(),
    }


def emit_trajectory(results):
    payload = {
        "experiment": "e30_streaming",
        "scale": SCALE,
        "target_speedup": TARGET_SPEEDUP,
        **results,
    }
    ARTIFACT_PATH.write_text(json.dumps(payload, indent=2,
                                        sort_keys=True) + "\n")
    return payload


@pytest.mark.benchmark(group="e30")
def test_e30_streaming(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1,
                                 iterations=1)
    throughput = results["throughput"]
    print_table("E30: per-tick oracle equivalence",
                results["equivalence"])
    print_table(
        "E30: incremental ticks vs naive reruns",
        [{key: throughput.get(key) for key in
          ("n_ticks", "incremental_s", "naive_s",
           "incremental_events_per_s", "naive_events_per_s",
           "speedup")}],
    )
    emit_trajectory(results)
    assert ARTIFACT_PATH.exists()

    # Correctness first: every tick on every backend is byte-identical
    # to the from-scratch oracle, and replays actually happened.
    for row in results["equivalence"]:
        assert row["identical"] == row["ticks"], row
        assert row["replayed_stages"] > 0, row

    # The perf claim: the incremental path clears the events/sec floor.
    assert throughput["speedup"] >= TARGET_SPEEDUP, throughput

    # Metrics reconcile with the run: every tick ok (plus warm-up),
    # heavy stages replayed, the aggregate folded every tick.
    assert throughput["ticks_ok"] == N_TICKS + 1, throughput
    assert throughput["stages_replayed"] >= 3 * N_TICKS, throughput
    assert throughput["stages_incremental"] == N_TICKS, throughput
