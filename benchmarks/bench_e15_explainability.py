"""E15 — Quantifying and improving explainability (§II-C, [35], [43]).

Claims: (a) explainability is measurable — the post-hoc metric of [35]
scores how well a detector's per-feature errors localize the truly
anomalous cells; (b) pairing learned features with an interpretable surrogate
[43] yields faithful, sparse explanations of a black-box forecaster.
"""

import numpy as np
import pytest

from conftest import print_table
from repro.analytics.anomaly import AutoencoderDetector
from repro.analytics.explainability import (
    SparseSurrogate,
    explanation_accuracy,
    inject_channel_anomalies,
    permutation_importance,
)
from repro.datasets import seasonal_series


def run_detection_explainability():
    """Compare *explanations*, not detections: a detector exposing
    per-(timestep, channel) errors localizes the corrupted cells; one
    that only emits a scalar score per timestep cannot say which
    channel misbehaved, even when its detections are accurate — the
    distinction [35]'s metric quantifies."""
    import numpy as np

    train = seasonal_series(900, n_channels=3,
                            rng=np.random.default_rng(0))
    live, cells = inject_channel_anomalies(
        seasonal_series(400, n_channels=3,
                        rng=np.random.default_rng(1)),
        0.05, rng=np.random.default_rng(2))
    detector = AutoencoderDetector(
        window=16, n_hidden=32, n_latent=6, n_epochs=40,
        rng=np.random.default_rng(4))
    detector.fit(train)
    feature_errors = detector.feature_errors(live)
    scalar_scores = detector.score(live)
    smeared = np.tile(scalar_scores[:, None], (1, live.n_channels))

    def channel_identification(explanation):
        """At each anomalous timestep: does the explanation's top
        channel match the corrupted one?  (Ties -> random pick.)"""
        rng = np.random.default_rng(5)
        hits = []
        for step in np.flatnonzero(cells.any(axis=1)):
            row = explanation[step]
            top = np.flatnonzero(row == row.max())
            choice = int(rng.choice(top))
            hits.append(bool(cells[step, choice]))
        return float(np.mean(hits))

    return [
        {"explanation": "per_cell_errors",
         "explanation_auc": explanation_accuracy(feature_errors, cells),
         "channel_id_acc": channel_identification(feature_errors)},
        {"explanation": "scalar_score_only",
         "explanation_auc": explanation_accuracy(smeared, cells),
         "channel_id_acc": channel_identification(smeared)},
    ]


def run_surrogate_fidelity():
    rng = np.random.default_rng(5)
    X = rng.normal(size=(500, 10))
    black_box = 3.0 * X[:, 2] - 2.0 * X[:, 7] + 0.3 * X[:, 4]

    surrogate = SparseSurrogate(n_features=3).fit(X, black_box)
    importances = permutation_importance(
        surrogate.predict, X, black_box, rng=np.random.default_rng(6))
    top = list(np.argsort(-importances)[:3])
    return {
        "surrogate_support": sorted(int(i) for i in surrogate.support_),
        "true_support": [2, 4, 7],
        "fidelity_r2": surrogate.fidelity(X, black_box),
        "importance_top3": sorted(int(i) for i in top),
    }


def run_experiment():
    return run_detection_explainability(), run_surrogate_fidelity()


@pytest.mark.benchmark(group="e15")
def test_e15_explainability(benchmark):
    detection_rows, surrogate = benchmark.pedantic(
        run_experiment, rounds=1, iterations=1)
    print_table("E15a: post-hoc explanation accuracy of AE detectors",
                detection_rows)
    print_table("E15b: sparse surrogate of a black-box model",
                [surrogate])
    by_name = {row["explanation"]: row["explanation_auc"]
               for row in detection_rows}
    # The metric separates detectors that can localize the offending
    # channel from those that only emit a per-timestep scalar: the
    # latter identifies the corrupted channel at chance level (1/3).
    assert by_name["per_cell_errors"] > 0.95
    channel_accuracy = {row["explanation"]: row["channel_id_acc"]
                        for row in detection_rows}
    assert channel_accuracy["per_cell_errors"] > 0.9
    assert channel_accuracy["scalar_score_only"] < 0.6
    # The surrogate is faithful and finds the true drivers.
    assert surrogate["fidelity_r2"] > 0.95
    assert surrogate["surrogate_support"] == surrogate["true_support"]
