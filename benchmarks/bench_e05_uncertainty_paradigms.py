"""E5 — Edge-centric vs. path-centric uncertainty (§II-B, [4], [15]).

Claim: "the edge-centric paradigm assigns distributions to edges,
treating them as independent, while the path-centric paradigm captures
the distribution correlations along paths, balancing efficiency and
precision."  Concretely: edge-centric underestimates path-travel-time
spread when congestion is correlated; path-centric recovers it at a
higher (but modest) query cost.
"""

import time

import numpy as np
import pytest

from conftest import print_table
from repro import RoadNetwork
from repro.datasets import TrafficSimulator
from repro.governance.uncertainty import (
    EdgeCentricModel,
    Histogram,
    PathCentricModel,
    wasserstein_distance,
)


def build_workload():
    network = RoadNetwork.grid(5, 5)
    simulator = TrafficSimulator(
        network, sigma_correlated=0.35, sigma_independent=0.1,
        rng=np.random.default_rng(1))
    paths = [
        network.shortest_path((0, 0), (4, 4)),
        network.shortest_path((0, 4), (4, 0)),
    ]
    rng = np.random.default_rng(11)
    trips = []
    for _ in range(250):
        for path in paths:
            edges = network.path_edges(path)
            times = simulator.sample_edge_times(edges, 480, rng=rng)
            trips.append((path, times, 480.0))
    truth = Histogram.from_samples(simulator.sample_path_times(
        paths[0], 3000, departure_minute=480,
        rng=np.random.default_rng(5)))
    return paths, trips, truth


def run_experiment():
    paths, trips, truth = build_workload()
    rows = []
    for name, model in [
        ("edge_centric", EdgeCentricModel()),
        ("path_centric", PathCentricModel(min_support=10,
                                          max_subpath_edges=8)),
    ]:
        fit_start = time.perf_counter()
        model.fit(trips)
        fit_seconds = time.perf_counter() - fit_start
        query_start = time.perf_counter()
        for _ in range(20):
            estimate = model.path_distribution(paths[0], 480)
        query_ms = (time.perf_counter() - query_start) * 1000 / 20
        rows.append({
            "model": name,
            "mean": estimate.mean(),
            "std": estimate.std(),
            "true_std": truth.std(),
            "wasserstein": wasserstein_distance(estimate, truth),
            "fit_s": fit_seconds,
            "query_ms": query_ms,
        })
    return rows


@pytest.mark.benchmark(group="e05")
def test_e05_uncertainty_paradigms(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_table("E5: path travel-time distribution estimation", rows)
    edge, path = rows
    # Edge-centric underestimates the spread badly; path-centric
    # recovers it and is closer in Wasserstein distance.
    assert edge["std"] < 0.7 * edge["true_std"]
    assert abs(path["std"] - path["true_std"]) < 0.3 * path["true_std"]
    assert path["wasserstein"] < edge["wasserstein"]
    # Efficiency side of the trade-off: edge-centric fits faster.
    assert edge["fit_s"] < path["fit_s"]
