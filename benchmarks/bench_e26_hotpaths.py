"""E26 — Hot-path kernels: spatial index, batched Viterbi, dominance.

Claim: the governance→decision query path (GPS point → candidate edges
→ Viterbi match → path distribution → dominance prune → route choice)
is served by index-backed, vectorized kernels that return *identical*
results to the brute-force implementations they replaced, at a large
speedup:

* ``candidate_edges`` / ``nearest_node`` via the uniform-grid spatial
  index versus the O(E)/O(V) linear scans;
* batched vectorized Viterbi with bounded, LRU-cached Dijkstra versus
  the per-pair pure-Python loop with exhaustive searches;
* the matrix ``dominance_prune`` kernel versus k² independent pairwise
  dominance calls.

Every timed comparison *asserts* kernel-vs-reference equivalence, so a
fast-but-wrong kernel fails the benchmark, and the speedups are written
to ``BENCH_e26.json`` for CI trend tracking next to ``BENCH_e01.json``.
"""

import json
import pathlib
import time

import numpy as np
import pytest

from conftest import print_table

from repro import RoadNetwork
from repro.datasets import TrafficSimulator, TrajectoryGenerator
from repro.decision.stochastic import (
    _dominance_prune_pairwise,
    dominance_prune,
)
from repro.governance.fusion import HmmMapMatcher
from repro.governance.uncertainty import Histogram

ARTIFACT_PATH = pathlib.Path(__file__).resolve().parent.parent / \
    "BENCH_e26.json"

#: Acceptance floor: at least two of the three kernels this fast.
TARGET_SPEEDUP = 5.0


def _timed(function):
    begin = time.perf_counter()
    result = function()
    return result, time.perf_counter() - begin


def bench_candidate_lookup(n_queries=120):
    """Grid-index candidate lookup vs. linear scan on a 2k+ edge net."""
    network = RoadNetwork.grid(24, 24)  # 2208 directed edges
    assert network.n_edges >= 2000
    rng = np.random.default_rng(0)
    queries = [
        (tuple(rng.uniform(-0.5, 23.5, 2)), float(rng.uniform(0.3, 1.2)))
        for _ in range(n_queries)
    ]
    network.candidate_edges(*queries[0])  # build the index up front

    indexed, indexed_s = _timed(lambda: [
        network.candidate_edges(point, radius)
        for point, radius in queries
    ])
    scanned, scan_s = _timed(lambda: [
        network._candidate_edges_scan(point, radius)
        for point, radius in queries
    ])
    equivalent = all(
        {c[:2] for c in fast} == {c[:2] for c in slow}
        and np.allclose(sorted(c[2] for c in fast),
                        sorted(c[2] for c in slow), atol=1e-9)
        for fast, slow in zip(indexed, scanned)
    )
    nearest_equivalent = all(
        network.nearest_node(point) == network._nearest_node_scan(point)
        for point, _ in queries
    )
    return {
        "kernel": "candidate_lookup",
        "n_edges": network.n_edges,
        "n_queries": n_queries,
        "reference_s": scan_s,
        "kernel_s": indexed_s,
        "speedup": scan_s / indexed_s,
        "equivalent": bool(equivalent and nearest_equivalent),
    }


def bench_viterbi_batch(n_trajectories=12):
    """match_many (vectorized, bounded+cached Dijkstra) vs. the
    per-pair pure-Python Viterbi with exhaustive searches.

    The network is sized so the bounded search radius actually bounds:
    on a city-scale graph the reference's exhaustive single-source
    searches touch every node while the kernel's stay local.
    """
    network = RoadNetwork.grid(26, 26)
    simulator = TrafficSimulator(network, rng=np.random.default_rng(0))
    generator = TrajectoryGenerator(simulator,
                                    rng=np.random.default_rng(1))
    trips = generator.generate(n_trajectories, noise_sigma=0.12,
                               sample_interval=0.4, min_hops=8)
    trajectories = [trajectory for _, trajectory in trips]

    # beta_cutoff=15 is the serving configuration: transitions whose
    # detour exceeds 15 betas (log-probability < -15) are treated as
    # unreachable, so each search stays local.  Equivalence with the
    # unbounded reference is asserted below, in the same run.
    matcher = HmmMapMatcher(network, sigma=0.15, beta=0.5,
                            candidate_radius=1.0, beta_cutoff=15.0)
    reference = HmmMapMatcher(network, sigma=0.15, beta=0.5,
                              candidate_radius=1.0, beta_cutoff=None)

    batched, batch_s = _timed(lambda: matcher.match_many(trajectories))

    def run_reference():
        results = []
        for trajectory in trajectories:
            reference.clear_cache()  # per-query serving: cold cache
            results.append(reference._match_reference(trajectory))
        return results

    looped, loop_s = _timed(run_reference)
    return {
        "kernel": "viterbi_batch",
        "n_trajectories": n_trajectories,
        "n_points": sum(len(t) for t in trajectories),
        "reference_s": loop_s,
        "kernel_s": batch_s,
        "speedup": loop_s / batch_s,
        "equivalent": batched == looped,
        "cache": matcher.cache_info(),
    }


def bench_dominance_kernel(k=64, order=1):
    """Matrix dominance_prune vs. k² pairwise dominance calls.

    The workload is the realistic hard case: candidate routes between
    one OD pair have heavily *overlapping* cost distributions (similar
    means, varied spreads), so few candidates are dominated and the
    pairwise reference cannot early-exit — it pays close to the full k²
    dominance calls, exactly when pruning cost matters most.
    """
    rng = np.random.default_rng(5)
    candidates = []
    for _ in range(k):
        mean = rng.uniform(9.0, 11.0)
        std = rng.uniform(0.3, 2.5)
        candidates.append(Histogram.from_samples(
            rng.normal(mean, std, 250), n_bins=25))

    matrix, matrix_s = _timed(
        lambda: dominance_prune(candidates, order=order))
    pairwise, pairwise_s = _timed(
        lambda: _dominance_prune_pairwise(candidates, order=order))
    return {
        "kernel": f"dominance_prune_order{order}",
        "k": k,
        "n_survivors": len(matrix),
        "reference_s": pairwise_s,
        "kernel_s": matrix_s,
        "speedup": pairwise_s / matrix_s,
        "equivalent": matrix == pairwise,
    }


def run_experiment():
    return [
        bench_candidate_lookup(),
        bench_viterbi_batch(),
        bench_dominance_kernel(order=1),
        bench_dominance_kernel(order=2),
    ]


def emit_trajectory(rows):
    """Write the kernel speedups as a CI-uploadable JSON artifact."""
    payload = {
        "experiment": "e26_hotpath_kernels",
        "target_speedup": TARGET_SPEEDUP,
        "kernels": rows,
        "all_equivalent": all(row["equivalent"] for row in rows),
        "n_kernels_at_target": sum(
            row["speedup"] >= TARGET_SPEEDUP for row in rows),
    }
    ARTIFACT_PATH.write_text(json.dumps(payload, indent=2,
                                        sort_keys=True) + "\n")
    return payload


@pytest.mark.benchmark(group="e26")
def test_e26_hotpath_kernels(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_table(
        "E26: hot-path kernels vs. brute-force references",
        [{
            "kernel": row["kernel"],
            "workload": row.get("n_edges") or row.get("n_points")
            or row.get("k"),
            "reference_s": row["reference_s"],
            "kernel_s": row["kernel_s"],
            "speedup": row["speedup"],
            "equivalent": row["equivalent"],
        } for row in rows],
    )
    payload = emit_trajectory(rows)
    assert ARTIFACT_PATH.exists()
    # Correctness first: every kernel must agree with its reference.
    for row in rows:
        assert row["equivalent"], f"{row['kernel']} diverged"
    # The perf claim: at least two of the three kernel families beat
    # the 5x floor (the two dominance orders count once).
    family_speedups = {
        "candidate_lookup": rows[0]["speedup"],
        "viterbi_batch": rows[1]["speedup"],
        "dominance_prune": max(rows[2]["speedup"], rows[3]["speedup"]),
    }
    at_target = [name for name, speedup in family_speedups.items()
                 if speedup >= TARGET_SPEEDUP]
    assert len(at_target) >= 2, family_speedups
    # The batched matcher's shared cache must actually be hit.
    assert rows[1]["cache"]["hits"] > 0
