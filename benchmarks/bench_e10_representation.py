"""E10 — Pretrained representations generalize from few labels
(§II-C Generality, [30]-[32]).

Claim: encoders pre-trained on abundant *unlabeled* data can be
"fine-tuned with minimal labeled data" — a linear probe on the frozen
embedding beats training on raw inputs at matched (small) label counts.
"""

import numpy as np
import pytest

from conftest import print_table
from repro.analytics.representation import (
    ContrastiveEncoder,
    LinearProbe,
    MaskedAutoencoderPretrainer,
)
from repro.datasets.classification import waveform_classification_dataset

DATASET = dict(phase_jitter=0.2)


def run_experiment():
    unlabeled, _ = waveform_classification_dataset(
        120, 96, 4, rng=np.random.default_rng(0), **DATASET)
    test_x, test_y = waveform_classification_dataset(
        40, 96, 4, rng=np.random.default_rng(1), **DATASET)

    masked = MaskedAutoencoderPretrainer(
        n_components=16, n_hidden=48, n_epochs=150,
        rng=np.random.default_rng(2)).fit(unlabeled)
    contrastive = ContrastiveEncoder(
        n_components=16, n_epochs=60,
        rng=np.random.default_rng(3)).fit(unlabeled)

    rows = []
    for per_class in (5, 15, 40):
        train_x, train_y = waveform_classification_dataset(
            per_class, 96, 4, rng=np.random.default_rng(10 + per_class),
            **DATASET)
        row = {"labels": 4 * per_class}
        row["masked_ae"] = LinearProbe().fit(
            masked.transform(train_x), train_y).score(
                masked.transform(test_x), test_y)
        row["contrastive"] = LinearProbe().fit(
            contrastive.transform(train_x), train_y).score(
                contrastive.transform(test_x), test_y)
        row["raw_windows"] = LinearProbe().fit(
            train_x, train_y).score(test_x, test_y)
        rows.append(row)
    return rows


@pytest.mark.benchmark(group="e10")
def test_e10_representation(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_table("E10: probe accuracy vs labeled-set size", rows)
    # With a moderate label budget the pretrained embedding beats raw
    # supervised features ...
    assert rows[1]["masked_ae"] > rows[1]["raw_windows"]
    assert rows[2]["masked_ae"] > rows[2]["raw_windows"]
    # ... and both pretrained encoders are far above chance (0.25).
    for row in rows:
        assert row["masked_ae"] > 0.4
        assert row["contrastive"] > 0.35
