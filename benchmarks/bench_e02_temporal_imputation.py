"""E2 — Temporal imputation accuracy vs. missing rate (§II-B).

Claim: model-based temporal completion (seasonal profile, state-space
smoothing) recovers missing values far better than carry-forward, and
the gap widens with the missing rate and with block gaps.
"""

import numpy as np
import pytest

from conftest import print_table
from repro.datasets import seasonal_series
from repro.governance.imputation import (
    KalmanImputer,
    impute_linear,
    impute_locf,
    impute_seasonal,
)

METHODS = [
    ("locf", impute_locf),
    ("linear", impute_linear),
    ("seasonal", lambda s: impute_seasonal(s, 96)),
    ("kalman", lambda s: KalmanImputer(8).impute(s)),
]


def run_experiment():
    clean = seasonal_series(1200, rng=np.random.default_rng(0))
    rows = []
    for missing_rate in (0.1, 0.3, 0.5):
        gappy = clean.corrupt(missing_rate, np.random.default_rng(1),
                              block_length=24)
        holes = ~gappy.mask
        row = {"missing": missing_rate}
        for name, method in METHODS:
            filled = method(gappy)
            row[name] = float(np.abs(
                filled.values[holes] - clean.values[holes]).mean())
        rows.append(row)
    return rows


@pytest.mark.benchmark(group="e02")
def test_e02_temporal_imputation(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_table("E2: imputation MAE vs missing rate (block gaps)", rows)
    for row in rows:
        # The seasonal model beats carry-forward at every rate.
        assert row["seasonal"] < row["locf"]
    # Long gaps are where structure pays: at the highest missing rate
    # the seasonal model also beats linear interpolation.
    assert rows[-1]["seasonal"] < rows[-1]["linear"]
    # Errors grow with the missing rate for the naive carrier.
    assert rows[-1]["locf"] >= rows[0]["locf"] * 0.9
