"""E3 — Graph-based edge-weight completion (§II-B, [11], [12]).

Claim: spatially missing values can be completed by exploiting the road
graph — semi-supervised label propagation and GCN autoencoders both
beat the structure-blind global-mean baseline, across observation
coverage levels.
"""

import numpy as np
import pytest

from conftest import print_table
from repro import RoadNetwork
from repro.governance.imputation import GcnCompleter, LabelPropagationCompleter


def build_truth(network, rng):
    truth = {}
    for u, v in network.edges():
        (x1, y1), (x2, y2) = network.edge_endpoints(u, v)
        truth[(u, v)] = (10.0 + 3.0 * np.sin(0.5 * (x1 + x2))
                         + 2.0 * np.cos(0.5 * (y1 + y2))
                         + rng.normal(0, 0.1))
    return truth


def run_experiment():
    network = RoadNetwork.grid(7, 7)
    rng = np.random.default_rng(0)
    truth = build_truth(network, rng)
    edges = list(truth)
    rows = []
    for coverage in (0.2, 0.4, 0.7):
        chosen = rng.choice(len(edges),
                            size=max(1, int(coverage * len(edges))),
                            replace=False)
        observed = {edges[i]: truth[edges[i]] for i in chosen}
        hidden = [e for e in edges if e not in observed]
        mean = float(np.mean(list(observed.values())))

        def error(estimates):
            return float(np.mean([
                abs(estimates[e] - truth[e]) for e in hidden
            ]))

        propagation = LabelPropagationCompleter().complete(network,
                                                           observed)
        gcn = GcnCompleter(rng=np.random.default_rng(1)).complete(
            network, observed)
        rows.append({
            "coverage": coverage,
            "global_mean": float(np.mean([abs(mean - truth[e])
                                          for e in hidden])),
            "label_prop": error(propagation),
            "gcn_ae": error(gcn),
        })
    return rows


@pytest.mark.benchmark(group="e03")
def test_e03_spatial_completion(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_table("E3: edge-weight completion MAE vs coverage", rows)
    for row in rows:
        assert row["label_prop"] < row["global_mean"]
        assert row["gcn_ae"] < row["global_mean"]
    # More coverage -> better completion for the graph methods.
    assert rows[-1]["label_prop"] < rows[0]["label_prop"]
