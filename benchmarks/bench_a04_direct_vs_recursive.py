"""Ablation A4 — recursive vs. direct multi-horizon strategies.

Every forecaster in the library defaults to the *recursive* strategy
(feed predictions back as inputs); :class:`DirectForecaster` fits one
model per lead instead.  The classical trade-off: recursion compounds
one-step errors over long horizons, direct models dodge the feedback
but lose cross-lead coherence.  The ablation measures both on short and
long horizons.
"""

import numpy as np
import pytest

from conftest import print_table
from repro.analytics.forecasting import ARForecaster, DirectForecaster
from repro.analytics.metrics import mae
from repro.datasets import seasonal_series


def run_experiment():
    series = seasonal_series(1200, noise_scale=0.5,
                             rng=np.random.default_rng(0))
    rows = []
    for anchored in (False, True):
        period = 96 if anchored else None
        for horizon in (6, 48, 96):
            cut = len(series) - horizon
            train = series.slice(0, cut)
            actual = series.slice(cut, len(series)).values
            recursive = ARForecaster(
                n_lags=12, seasonal_period=period).fit(train)
            direct = DirectForecaster(
                n_lags=12, horizon=horizon,
                seasonal_period=period).fit(train)
            rows.append({
                "seasonal_anchor": anchored,
                "horizon": horizon,
                "recursive_mae": mae(actual,
                                     recursive.predict(horizon)),
                "direct_mae": mae(actual, direct.predict(horizon)),
            })
    return rows


@pytest.mark.benchmark(group="a04")
def test_a04_direct_vs_recursive(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_table("A4: recursive vs direct strategy "
                "(with/without seasonal anchor)", rows)
    plain = {row["horizon"]: row for row in rows
             if not row["seasonal_anchor"]}
    anchored = {row["horizon"]: row for row in rows
                if row["seasonal_anchor"]}
    # Without an anchor, the classical picture: recursion compounds
    # errors and the direct strategy wins, increasingly with horizon.
    assert plain[96]["direct_mae"] < plain[96]["recursive_mae"]
    assert (plain[96]["recursive_mae"] - plain[96]["direct_mae"]) > \
        (plain[6]["recursive_mae"] - plain[6]["direct_mae"])
    # With a seasonal anchor the feedback is defused and recursion is
    # at least competitive everywhere - strategy choice depends on the
    # features, which is exactly why it belongs in the search space.
    for horizon in (6, 48, 96):
        assert anchored[horizon]["recursive_mae"] <= \
            anchored[horizon]["direct_mae"] * 1.1
