"""E24 — Unified, fair benchmarking of analytics methods
(§II-C Benchmarking, [6], [50]).

Claim: comparing methods requires one shared protocol across a model
zoo and a dataset suite (the FoundTS recipe); no single model wins
everywhere, which is exactly why the leaderboard (and the automation
of E8) is needed.
"""

import numpy as np
import pytest

from repro.analytics.forecasting import (
    ARForecaster,
    DriftForecaster,
    EnsembleForecaster,
    HoltWintersForecaster,
    NaiveForecaster,
    SeasonalNaiveForecaster,
)
from repro.benchmarking import ForecastingLeaderboard
from repro.datasets import inject_anomalies, seasonal_series
from repro.datatypes import TimeSeries


def build_board():
    board = ForecastingLeaderboard(horizon=24, n_origins=3)
    board.add_model("naive", lambda: NaiveForecaster())
    board.add_model("drift", lambda: DriftForecaster())
    board.add_model("snaive", lambda: SeasonalNaiveForecaster(96))
    board.add_model("holt_winters",
                    lambda: HoltWintersForecaster(96))
    board.add_model("ar_seasonal",
                    lambda: ARForecaster(12, seasonal_period=96))
    board.add_model("ensemble", lambda: EnsembleForecaster([
        SeasonalNaiveForecaster(96),
        ARForecaster(12, seasonal_period=96),
        HoltWintersForecaster(96),
    ]))

    rng = np.random.default_rng
    board.add_dataset("seasonal",
                      seasonal_series(700, rng=rng(0)))
    board.add_dataset("noisy",
                      seasonal_series(700, noise_scale=1.0, rng=rng(1)))
    trend_values = (seasonal_series(700, rng=rng(2)).values[:, 0]
                    + np.arange(700) * 0.01)
    board.add_dataset("trending", TimeSeries(trend_values))
    board.add_dataset("random_walk", TimeSeries(
        np.cumsum(rng(3).normal(size=700))))
    return board


def build_detection_board():
    from repro.analytics.anomaly import (
        AutoencoderDetector,
        RandomizedEnsembleDetector,
        SpectralResidualDetector,
    )
    from repro.benchmarking import DetectionLeaderboard

    board = DetectionLeaderboard()
    board.add_detector("spectral", lambda: SpectralResidualDetector())
    board.add_detector("autoencoder", lambda: AutoencoderDetector(
        window=24, n_epochs=30, rng=np.random.default_rng(10)))
    board.add_detector("ae_ensemble", lambda: RandomizedEnsembleDetector(
        n_members=5, window=24, n_epochs=20,
        rng=np.random.default_rng(11)))
    for name, noise, seed in (("clean", 0.3, 20), ("noisy", 0.8, 30)):
        train = seasonal_series(900, noise_scale=noise,
                                rng=np.random.default_rng(seed))
        test_clean = seasonal_series(
            450, noise_scale=noise, rng=np.random.default_rng(seed + 1))
        test, labels = inject_anomalies(
            test_clean, 0.05, rng=np.random.default_rng(seed + 2))
        board.add_dataset(name, train, test, labels)
    return board


def run_experiment():
    board = build_board()
    board.run()
    detection = build_detection_board()
    detection.run()
    return board, detection


@pytest.mark.benchmark(group="e24")
def test_e24_leaderboard(benchmark):
    board, detection = benchmark.pedantic(run_experiment, rounds=1,
                                          iterations=1)
    print()
    print(board.render("mae"))
    print()
    print(detection.render("roc_auc"))
    detection_table = detection.table("roc_auc")
    # Every detector is far above chance on every dataset: the shared
    # protocol is measuring real capability.
    assert np.nanmin(detection_table["scores"]) > 0.6
    table = board.table("mae")
    ranks = dict(zip(table["models"], table["mean_rank"]))
    # Seasonal structure gets exploited where it exists ...
    scores = table["scores"]
    datasets = table["datasets"]
    models = table["models"]
    seasonal_column = datasets.index("seasonal")
    walk_column = datasets.index("random_walk")
    snaive_row = models.index("snaive")
    naive_row = models.index("naive")
    assert scores[snaive_row, seasonal_column] < \
        scores[naive_row, seasonal_column]
    # ... but on a random walk the naive model wins (no free lunch).
    assert scores[naive_row, walk_column] <= \
        scores[snaive_row, walk_column]
    # Per-dataset winners differ: benchmarking is necessary.
    winners = {int(np.argmin(scores[:, c])) for c in range(len(datasets))}
    assert len(winners) >= 2
    # The ensemble is never the worst model anywhere.
    ensemble_row = models.index("ensemble")
    for column in range(len(datasets)):
        assert scores[ensemble_row, column] < scores[:, column].max()
