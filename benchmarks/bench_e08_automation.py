"""E8 — Automated model search (AutoCTS [24], [25]; §II-C Automation).

Claims: (a) automated search over a joint architecture/hyperparameter
space matches or beats hand-picked models across diverse datasets;
(b) search respects additional constraints such as model size,
discovering the best *small* model when asked.
"""

import numpy as np
import pytest

from conftest import print_table
from repro.analytics.automation import (
    EvolutionarySearch,
    RandomSearch,
    SuccessiveHalving,
    build_forecaster,
)
from repro.analytics.forecasting import (
    HoltWintersForecaster,
    SeasonalNaiveForecaster,
    rolling_origin_evaluation,
)
from repro.datasets import cloud_demand_dataset, seasonal_series


def build_datasets():
    return [
        ("seasonal", seasonal_series(700, rng=np.random.default_rng(0)),
         96),
        ("noisy", seasonal_series(700, noise_scale=0.8,
                                  rng=np.random.default_rng(1)), 96),
        ("cloud", cloud_demand_dataset(
            n_days=5, rng=np.random.default_rng(2))[0], 144),
    ]


def hand_crafted_score(series, period):
    """The expert-picked reference model (Holt-Winters, falling back to
    seasonal-naive when the series is too short)."""
    try:
        return rolling_origin_evaluation(
            lambda: HoltWintersForecaster(period), series,
            horizon=12, n_origins=3)["score"]
    except ValueError:
        return rolling_origin_evaluation(
            lambda: SeasonalNaiveForecaster(period), series,
            horizon=12, n_origins=3)["score"]


def run_experiment():
    rows = []
    for name, series, period in build_datasets():
        expert = hand_crafted_score(series, period)
        row = {"dataset": name, "hand_crafted": expert}
        for label, searcher in [
            ("random", RandomSearch(rng=np.random.default_rng(3))),
            ("halving", SuccessiveHalving(rng=np.random.default_rng(4))),
            ("evolution",
             EvolutionarySearch(rng=np.random.default_rng(5))),
        ]:
            result = searcher.search(series, period, budget=15)
            row[label] = result.best_score
        rows.append(row)
    return rows


def run_constrained():
    series = seasonal_series(700, rng=np.random.default_rng(0))
    rows = []
    for budget_label, max_parameters in [("unconstrained", None),
                                         ("<=30_params", 30)]:
        searcher = RandomSearch(max_parameters=max_parameters,
                                rng=np.random.default_rng(6))
        result = searcher.search(series, 96, budget=15)
        model = build_forecaster(result.best_config, 96)
        model.fit(series)
        rows.append({
            "constraint": budget_label,
            "best_family": result.best_config["family"],
            "score": result.best_score,
            "n_parameters": getattr(model, "n_parameters", 0),
        })
    return rows


@pytest.mark.benchmark(group="e08")
def test_e08_automation(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_table("E8: search vs hand-crafted model (MAE)", rows)
    for row in rows:
        best_search = min(row["random"], row["halving"],
                          row["evolution"])
        assert best_search <= row["hand_crafted"] * 1.05

    constrained = run_constrained()
    print_table("E8b: size-constrained search", constrained)
    assert constrained[1]["n_parameters"] <= 30
