"""Ablation A1 — the path-centric paradigm's sub-path length knob.

``max_subpath_edges`` is PACE's [4] central design choice: length 1
degenerates to the edge-centric paradigm (cheap, independence-blind);
the full path length captures all correlation (precise, most expensive
to fit).  The ablation sweeps the knob and shows the smooth
precision/efficiency trade-off the paper describes as "balancing
efficiency and precision".
"""

import time

import numpy as np
import pytest

from conftest import print_table
from repro import RoadNetwork
from repro.datasets import TrafficSimulator
from repro.governance.uncertainty import (
    Histogram,
    PathCentricModel,
    wasserstein_distance,
)


def build_workload():
    network = RoadNetwork.grid(5, 5)
    simulator = TrafficSimulator(
        network, sigma_correlated=0.35, sigma_independent=0.1,
        rng=np.random.default_rng(1))
    path = network.shortest_path((0, 0), (4, 4))
    rng = np.random.default_rng(11)
    trips = []
    for _ in range(300):
        edges = network.path_edges(path)
        times = simulator.sample_edge_times(edges, 480, rng=rng)
        trips.append((path, times, 480.0))
    truth = Histogram.from_samples(simulator.sample_path_times(
        path, 3000, departure_minute=480,
        rng=np.random.default_rng(5)))
    return path, trips, truth


def run_experiment():
    path, trips, truth = build_workload()
    rows = []
    for max_edges in (1, 2, 4, 8):
        started = time.perf_counter()
        model = PathCentricModel(
            min_support=10, max_subpath_edges=max_edges).fit(trips)
        fit_seconds = time.perf_counter() - started
        estimate = model.path_distribution(path, 480)
        rows.append({
            "max_subpath_edges": max_edges,
            "n_subpaths": model.n_subpaths,
            "std_ratio": estimate.std() / truth.std(),
            "wasserstein": wasserstein_distance(estimate, truth),
            "fit_s": fit_seconds,
        })
    return rows


@pytest.mark.benchmark(group="a01")
def test_a01_pathcentric_ablation(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_table("A1: precision/efficiency vs sub-path length "
                "(std_ratio -> 1 is perfect)", rows)
    # Accuracy improves monotonically with sub-path length ...
    errors = [abs(1.0 - row["std_ratio"]) for row in rows]
    assert errors[-1] < errors[0]
    assert rows[-1]["wasserstein"] < rows[0]["wasserstein"]
    # ... while fit cost and model size grow.
    assert rows[-1]["n_subpaths"] > rows[0]["n_subpaths"]
    # Length 1 is the edge-centric degenerate: it badly underestimates
    # the spread.
    assert rows[0]["std_ratio"] < 0.75
