"""E19 — Distribution-aware routing beats mean-cost routing (§I, [3]-[5]).

Claim (the paper's flagship example): selecting "the route with the
highest probability of an on-time arrival" requires the travel-time
*distribution*; a router that only sees expected costs picks the wrong
route whenever a slightly-slower-but-reliable alternative exists.  The
winner flips with the deadline (the arrival-window effect of [53]).
"""

import numpy as np
import pytest

from conftest import print_table
from repro import RoadNetwork
from repro.datasets import TrafficSimulator
from repro.governance.uncertainty import PathCentricModel
from repro.decision import StochasticRouter


def build_world():
    network = RoadNetwork.grid(6, 6)
    simulator = TrafficSimulator(
        network, sigma_correlated=0.25, sigma_independent=0.1,
        rng=np.random.default_rng(1))
    # The bottom/right boundary is a highway: fast on average but
    # accident-prone (high volatility).  Interior streets are slower
    # but reliable.  The classic fast-vs-reliable routing dilemma.
    for u, v in network.edges():
        (x1, y1), (x2, y2) = network.edge_endpoints(u, v)
        on_highway = (y1 == 0 and y2 == 0) or (x1 == 5 and x2 == 5)
        if on_highway:
            simulator.set_edge_profile(u, v, speed=1.8, volatility=2.6)
        else:
            simulator.set_edge_profile(u, v, speed=1.0, volatility=0.5)
    # Candidate generation must see expected travel times, not just
    # geometry, or the fast highway never enters the pool.
    for u, v in network.edges():
        network.set_edge_attribute(u, v, "mean_time",
                                   simulator.mean_travel_time(u, v, 480))
    origin, destination = (0, 0), (5, 5)
    candidates = network.k_shortest_paths(origin, destination, 8,
                                          weight="mean_time")
    rng = np.random.default_rng(2)
    trips = []
    for _ in range(150):
        for path in candidates:
            edges = network.path_edges(path)
            times = simulator.sample_edge_times(edges, 480, rng=rng)
            trips.append((path, times, 480.0))
    model = PathCentricModel(min_support=10, max_subpath_edges=10,
                             n_bins=60).fit(trips)
    return network, simulator, model, origin, destination


def run_experiment():
    network, simulator, model, origin, destination = build_world()
    router = StochasticRouter(network, model, n_candidates=8,
                              weight="mean_time")
    mean_path, mean_dist = router.mean_cost_route(origin, destination,
                                                  departure_minute=480)
    evaluation_rng = np.random.default_rng(9)

    def empirical_on_time(path, deadline, n=600):
        samples = simulator.sample_path_times(
            path, n, departure_minute=480, rng=evaluation_rng)
        return float((samples <= deadline).mean())

    rows = []
    for quantile in (0.3, 0.5, 0.7, 0.9):
        deadline = mean_dist.quantile(quantile)
        best_path, model_probability = router.on_time_route(
            origin, destination, deadline, departure_minute=480)
        rows.append({
            "deadline_q": quantile,
            "deadline_min": deadline,
            "dist_aware_p": empirical_on_time(best_path, deadline),
            "mean_route_p": empirical_on_time(mean_path, deadline),
            "model_estimate": model_probability,
            "same_route": best_path == mean_path,
        })
    return rows


@pytest.mark.benchmark(group="e19")
def test_e19_stochastic_routing(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_table("E19: empirical on-time probability by deadline", rows)
    for row in rows:
        # The distribution-aware choice never loses materially ...
        assert row["dist_aware_p"] >= row["mean_route_p"] - 0.06
        # ... and the model's probability estimate is calibrated.
        assert abs(row["model_estimate"] - row["dist_aware_p"]) < 0.15
    total_gain = sum(row["dist_aware_p"] - row["mean_route_p"]
                     for row in rows)
    assert total_gain >= -0.05
