"""Ablation A3 — generative scenario sampling (paper §II-E).

The research-directions claim: generative models' "precision in data
generation" can serve decision making.  The ablation checks the two
design choices of the block bootstrap — block length and the seasonal
phase constraint — against the fidelity metrics that matter for
scenario-based decisions: marginal moments, autocorrelation, and the
seasonal profile.
"""

import numpy as np
import pytest

from conftest import print_table
from repro.analytics.generative import BlockBootstrapGenerator
from repro.datasets import seasonal_series


def autocorrelation(values, lag):
    a, b = values[:-lag], values[lag:]
    if a.std() == 0 or b.std() == 0:
        return 0.0
    return float(np.corrcoef(a, b)[0, 1])


def profile_correlation(paths, original, period=96):
    phases = np.arange(paths.shape[1]) % period
    generated = np.array([paths[:, phases == p].mean()
                          for p in range(period)])
    reference = np.array([
        original[np.arange(len(original)) % period == p].mean()
        for p in range(period)])
    return float(np.corrcoef(generated, reference)[0, 1])


def run_experiment():
    history = seasonal_series(1000, rng=np.random.default_rng(0))
    original = history.values[:, 0]
    rows = []
    for block, seasonal in [(4, False), (4, True), (24, False),
                            (24, True), (96, True)]:
        generator = BlockBootstrapGenerator(
            block_length=block, period=96 if seasonal else None,
            rng=np.random.default_rng(1))
        generator.fit(history)
        paths = generator.sample_paths(480, 25)
        rows.append({
            "block": block,
            "seasonal": seasonal,
            "std_ratio": paths.std() / original.std(),
            "acf1_gap": abs(
                np.mean([autocorrelation(p, 1) for p in paths])
                - autocorrelation(original, 1)),
            "profile_corr": profile_correlation(paths, original),
        })
    return rows


@pytest.mark.benchmark(group="a03")
def test_a03_scenario_generation(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_table("A3: scenario fidelity vs block length and phase "
                "constraint", rows)
    by_key = {(row["block"], row["seasonal"]): row for row in rows}
    # The phase constraint is what preserves the seasonal profile.
    assert by_key[(24, True)]["profile_corr"] > \
        by_key[(24, False)]["profile_corr"] + 0.2
    # Longer blocks preserve short-range dynamics (ACF at lag 1).
    assert by_key[(24, True)]["acf1_gap"] <= \
        by_key[(4, True)]["acf1_gap"] + 0.02
    # Seasonal variants keep the marginal spread tight; the unphased
    # tiny-block variant visibly shrinks it (part of the ablation's
    # point: both knobs matter).
    for row in rows:
        if row["seasonal"]:
            assert 0.8 < row["std_ratio"] < 1.2
        else:
            assert row["std_ratio"] > 0.5