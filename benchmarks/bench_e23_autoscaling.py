"""E23 — Uncertainty-aware predictive autoscaling (§I, MagicScaler [6]).

Claim: forecasting the demand *distribution* and provisioning its tail
quantile "maintains service quality while minimizing energy
consumption" — with a realistic capacity lead time, the predictive
scaler reaches violation levels the reactive scaler cannot, at lower
mean capacity.
"""

import numpy as np
import pytest

from conftest import print_table
from repro.datasets import cloud_demand_dataset
from repro.decision import (
    FixedScaler,
    PredictiveScaler,
    ReactiveScaler,
    simulate_scaling,
)

LEAD = 6
WARMUP = 3 * 144


def run_experiment():
    demand, _ = cloud_demand_dataset(
        n_days=12, daily_amplitude=80.0, burst_rate_per_day=0.5,
        daily_spike_height=250.0, rng=np.random.default_rng(6))
    peak = float(demand.values.max())
    policies = [
        ("fixed_95pct_peak", FixedScaler(peak * 0.95)),
        ("reactive_1.3", ReactiveScaler(headroom=1.3)),
        ("reactive_1.6", ReactiveScaler(headroom=1.6)),
        ("reactive_2.0", ReactiveScaler(headroom=2.0)),
        ("predictive_slo_5pct",
         PredictiveScaler(slo_target=0.05, seasonal_period=144,
                          horizon=LEAD)),
        ("predictive_slo_2pct",
         PredictiveScaler(slo_target=0.02, seasonal_period=144,
                          horizon=LEAD)),
    ]
    rows = []
    for name, scaler in policies:
        result = simulate_scaling(demand, scaler, warmup=WARMUP,
                                  lead_time=LEAD)
        rows.append({
            "policy": name,
            "violations": result["violations"],
            "mean_capacity": result["mean_capacity"],
            "overprovision": result["mean_overprovision"],
            "actions": result["scaling_actions"],
        })
    return rows


@pytest.mark.benchmark(group="e23")
def test_e23_autoscaling(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_table("E23: autoscaling with a 1-hour capacity lead time",
                rows)
    by_name = {row["policy"]: row for row in rows}
    predictive = by_name["predictive_slo_2pct"]
    reactive = by_name["reactive_1.6"]
    # Pareto dominance at the tight operating point: fewer violations
    # AND less capacity than the comparable reactive policy.
    assert predictive["violations"] <= reactive["violations"] + 0.005
    assert predictive["mean_capacity"] < reactive["mean_capacity"]
    # The fixed policy burns capacity for its reliability.
    assert by_name["fixed_95pct_peak"]["mean_capacity"] > \
        1.4 * predictive["mean_capacity"]
