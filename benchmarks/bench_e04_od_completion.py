"""E4 — OD-matrix completion via dual-stage modeling (§II-B, [14]).

Claim: combining a spatial stage (similar origins/destinations share
flows) with a temporal stage (flows evolve smoothly) completes missing
OD entries better than either stage alone or a global mean.
"""

import numpy as np
import pytest

from conftest import print_table
from repro.governance.imputation import ODMatrixCompleter


def build_frames(n_frames=36, n_regions=12, seed=0):
    rng = np.random.default_rng(seed)
    attraction = rng.uniform(0.5, 2.0, n_regions)
    production = rng.uniform(0.5, 2.0, n_regions)
    base = np.outer(production, attraction) * 10.0
    time_factor = 1.0 + 0.5 * np.sin(2 * np.pi * np.arange(n_frames) / 24)
    frames = base[None] * time_factor[:, None, None]
    frames += rng.normal(0, 0.4, frames.shape)
    return np.clip(frames, 0, None)


def run_experiment():
    frames = build_frames()
    rng = np.random.default_rng(1)
    rows = []
    n_regions = frames.shape[1]
    for missing in (0.2, 0.4):
        # Random per-entry missing plus "cold" OD pairs that were never
        # observed at all (a sensor pair outside the probe fleet's
        # coverage) - the case where only the spatial stage can help.
        mask = rng.random(frames.shape) > missing
        cold = rng.random((n_regions, n_regions)) < 0.25
        mask[:, cold] = False
        gappy = np.where(mask, frames, np.nan)
        hidden = ~mask
        mean = frames[mask].mean()

        def mae_of(completed, where):
            return float(np.abs(completed[where]
                                - frames[where]).mean())

        cold_mask = np.zeros_like(mask)
        cold_mask[:, cold] = True
        dual = ODMatrixCompleter(spatial_blend=0.5).complete(gappy)
        temporal_only = ODMatrixCompleter(spatial_blend=0.0).complete(
            gappy)
        rows.append({
            "missing": missing,
            "global_mean": float(np.abs(mean - frames[hidden]).mean()),
            "temporal_all": mae_of(temporal_only, hidden),
            "dual_all": mae_of(dual, hidden),
            "temporal_cold": mae_of(temporal_only, cold_mask),
            "dual_cold": mae_of(dual, cold_mask),
        })
    return rows


@pytest.mark.benchmark(group="e04")
def test_e04_od_completion(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_table("E4: OD-matrix completion MAE "
                "(random missing + cold OD pairs)", rows)
    for row in rows:
        assert row["dual_all"] < row["global_mean"]
        # The spatial stage rescues the never-observed OD pairs that the
        # temporal stage alone cannot complete - the [14] rationale for
        # combining the two stages.
        assert row["dual_cold"] < row["temporal_cold"]
        assert row["dual_all"] <= row["temporal_all"] * 1.3
