"""E18 — Stochastic-dominance pruning (§II-D, [51], [52], [53]).

Claim: pruning candidates by stochastic dominance "enables rapid
identification of optimal choices across utility functions that encode
different risk profiles" — the expected-utility optimum provably
survives, and only the (small) non-dominated set needs expensive
utility evaluation.
"""

import numpy as np
import pytest

from conftest import print_table
from repro.governance.uncertainty import Histogram
from repro.decision import (
    DeadlineUtility,
    RiskAverseUtility,
    RiskNeutralUtility,
    RiskSeekingUtility,
    select_best,
)


def make_candidates(n, seed=0):
    """Random travel-cost distributions; most are dominated."""
    rng = np.random.default_rng(seed)
    candidates = []
    for _ in range(n):
        mean = rng.uniform(8.0, 20.0)
        std = rng.uniform(0.3, 4.0)
        candidates.append(Histogram.from_samples(
            rng.normal(mean, std, 400), n_bins=30))
    return candidates


def run_experiment():
    utilities = [
        ("risk_neutral", RiskNeutralUtility()),
        ("risk_averse", RiskAverseUtility(aversion=2.0, scale=15.0)),
        ("risk_seeking", RiskSeekingUtility(seeking=2.0, scale=15.0)),
        ("deadline", DeadlineUtility(12.0)),
    ]
    rows = []
    for n in (20, 60, 150):
        candidates = make_candidates(n)
        agree = True
        pruned_sizes = []
        for _, utility in utilities:
            best_pruned, _, n_pruned = select_best(candidates, utility,
                                                   prune=True)
            pruned_sizes.append(n_pruned)
        for name, utility in utilities:
            _, value_full, _ = select_best(candidates, utility,
                                           prune=False)
            _, value_pruned, _ = select_best(candidates, utility,
                                             prune=True)
            # Same achieved utility (indices may differ on exact ties).
            agree &= abs(value_full - value_pruned) <= \
                1e-9 * max(1.0, abs(value_full))
        rows.append({
            "candidates": n,
            "survivors": int(np.mean(pruned_sizes)),
            "optimum_preserved": agree,
            "evals_saved": f"{1 - np.mean(pruned_sizes) / n:.0%}",
        })
    return rows


@pytest.mark.benchmark(group="e18")
def test_e18_dominance(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_table("E18: FSD pruning across four risk profiles", rows)
    for row in rows:
        # Correctness: the same winner with and without pruning, for
        # every risk profile.
        assert row["optimum_preserved"]
        # Effectiveness: most candidates are pruned away.
        assert row["survivors"] < 0.5 * row["candidates"]
    # Pruning keeps getting more effective as the pool grows.
    assert rows[-1]["survivors"] / rows[-1]["candidates"] <= \
        rows[0]["survivors"] / rows[0]["candidates"]
