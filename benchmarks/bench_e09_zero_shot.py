"""E9 — Zero-shot configuration transfer (AutoCTS++ [27], [28]).

Claim: a configuration recommended from dataset fingerprints — with at
most a tiny shortlist validation — approaches the quality of a full
search at a fraction of its cost ("fully automated ... in minutes").
"""

import numpy as np
import pytest

from conftest import print_table
from repro.analytics.automation import (
    RandomSearch,
    ZeroShotSelector,
    evaluate_config,
)
from repro.datasets import seasonal_series


def build_library():
    """A pool of related datasets (leave-one-out protocol)."""
    settings = [(1.0, 0.2), (2.0, 0.3), (3.0, 0.2), (1.5, 0.5),
                (2.5, 0.4)]
    return [
        seasonal_series(700, amplitude=a, noise_scale=n,
                        rng=np.random.default_rng(20 + i))
        for i, (a, n) in enumerate(settings)
    ]


def run_experiment():
    datasets = build_library()
    rows = []
    for target_index in range(len(datasets)):
        selector = ZeroShotSelector(
            searcher=RandomSearch(rng=np.random.default_rng(30)),
            search_budget=12)
        for index, series in enumerate(datasets):
            if index != target_index:
                selector.add_dataset(series, 96)
        target = datasets[target_index]

        shortlist = selector.recommend_top(target, 96, k=3)
        transfer_score = min(
            evaluate_config(config, target, 96) for config in shortlist)

        search = RandomSearch(rng=np.random.default_rng(31)).search(
            target, 96, budget=12)

        rows.append({
            "target": target_index,
            "zero_shot_mae": transfer_score,
            "search_mae": search.best_score,
            "zero_shot_evals": len(shortlist),
            "search_evals": search.n_evaluations,
        })
    return rows


@pytest.mark.benchmark(group="e09")
def test_e09_zero_shot(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_table("E9: zero-shot transfer vs full search "
                "(leave-one-dataset-out)", rows)
    transfer = np.mean([row["zero_shot_mae"] for row in rows])
    search = np.mean([row["search_mae"] for row in rows])
    # Competitive quality ...
    assert transfer <= search * 1.35
    # ... at a fraction of the evaluation cost (3 shortlist
    # evaluations instead of a full search budget).
    for row in rows:
        assert row["zero_shot_evals"] <= row["search_evals"] / 3
