"""E27 — Executor backends: process-parallel stage execution.

Claim: for a *wide* DAG of CPU-bound pure-Python stages, the
``ProcessExecutor`` backend scales with cores while the default
``ThreadExecutor`` flatlines on the GIL — and both produce
byte-identical final context (by content fingerprint) and identical
RunReport statuses to the deterministic ``SerialExecutor``.

The workload is one fan-out: a source stage publishes a 512 KB
ndarray (so the process backend's shared-memory handoff is on the
measured path), ``WIDTH`` independent worker stages each burn a
pure-Python arithmetic loop over their slice (pure Python so the GIL
is actually contended — numpy would release it and hide the effect),
and a join stage folds the partials.

Equivalence is always asserted.  The speedup floor is asserted only
when the machine has cores to scale onto (the acceptance target is
>= 2.5x on 4 cores); on 1-core CI the benchmark still runs and still
gates equivalence, and the artifact records the observed ratio.
Results go to ``BENCH_e27.json`` next to ``BENCH_e01.json`` /
``BENCH_e26.json`` for CI trend tracking.
"""

import json
import os
import pathlib
import time

import numpy as np
import pytest

from conftest import print_table

from repro import DecisionPipeline, ProcessExecutor
from repro.core.cache import fingerprint
from repro.observability.metrics import use_registry

ARTIFACT_PATH = pathlib.Path(__file__).resolve().parent.parent / \
    "BENCH_e27.json"

#: Fan-out width of the CPU-bound middle layer.
WIDTH = 8

#: Pure-Python loop iterations per worker stage (tuned so the eight
#: stages dominate pool/dispatch overhead while the whole benchmark
#: stays well under a second per backend on CI).
SPIN = 150_000

#: Acceptance floor on a 4-core box (ISSUE acceptance criterion).
TARGET_SPEEDUP = 2.5


def src_stage(state):
    state["base"] = np.arange(65_536, dtype=np.float64)  # 512 KB
    return "published"


def _make_worker(index):
    offset = index * 7

    def worker(state):
        base = state["base"]
        seed = float(base[(offset * 97) % base.size])
        total = 0
        for i in range(SPIN):  # pure Python: holds the GIL
            total = (total * 31 + i + offset) % 1_000_000_007
        state[f"part_{index}"] = float(total) + seed
        return f"spun {SPIN}"

    worker.__name__ = worker.__qualname__ = f"worker_{index}"
    return worker


# Module-level bindings so the functions pickle by reference and the
# stages pass ProcessExecutor's pre-flight.
for _i in range(WIDTH):
    globals()[f"worker_{_i}"] = _make_worker(_i)
del _i


def join_stage(state):
    total = sum(state[f"part_{i}"] for i in range(WIDTH))
    state["total"] = float(total)
    return "joined"


def build_pipeline():
    p = DecisionPipeline("e27 wide CPU-bound DAG")
    p.add_data("source", src_stage, reads=(), writes=("base",))
    for i in range(WIDTH):
        p.add_analytics(f"work_{i}", globals()[f"worker_{i}"],
                        reads=("base",), writes=(f"part_{i}",))
    p.add_decision("join", join_stage,
                   reads=tuple(f"part_{i}" for i in range(WIDTH)),
                   writes=("total",))
    return p


def run_backend(executor, workers):
    with use_registry() as registry:
        begin = time.perf_counter()
        state, report = build_pipeline().run(
            executor=executor, max_workers=workers, run_id="e27")
        elapsed = time.perf_counter() - begin
    snap = registry.snapshot()
    shm = snap.get("engine.executor_shm_bytes_total",
                   {"series": []})["series"]
    return {
        "seconds": elapsed,
        "fingerprint": fingerprint(state),
        "statuses": report.status_map(),
        "shm_bytes": shm[0]["value"] if shm else 0,
    }


def run_experiment():
    cores = os.cpu_count() or 1
    workers = min(WIDTH, cores)
    process = ProcessExecutor(max_workers=workers)
    try:
        # Warm the lazy worker pool so process timing measures the
        # steady state, not fork cost (the pool persists across runs).
        warm = DecisionPipeline("warmup")
        warm.add_data("source", src_stage, reads=(), writes=("base",))
        warm.run(executor=process)

        results = {
            "serial": run_backend("serial", None),
            "thread": run_backend("thread", WIDTH),
            "process": run_backend(process, WIDTH),
        }
    finally:
        process.close()
    return cores, results


def emit_trajectory(cores, results):
    speedup = (results["thread"]["seconds"]
               / results["process"]["seconds"])
    payload = {
        "experiment": "e27_executor_backends",
        "cores": cores,
        "width": WIDTH,
        "spin": SPIN,
        "target_speedup": TARGET_SPEEDUP,
        "speedup_process_vs_thread": speedup,
        "identical_context": len({
            r["fingerprint"] for r in results.values()}) == 1,
        "shm_bytes_process": results["process"]["shm_bytes"],
        "backends": {
            name: {"seconds": r["seconds"],
                   "fingerprint": r["fingerprint"]}
            for name, r in results.items()
        },
    }
    ARTIFACT_PATH.write_text(json.dumps(payload, indent=2,
                                        sort_keys=True) + "\n")
    return payload


@pytest.mark.benchmark(group="e27")
def test_e27_executor_backends(benchmark):
    cores, results = benchmark.pedantic(
        run_experiment, rounds=1, iterations=1)
    payload = emit_trajectory(cores, results)
    print_table(
        f"E27: executor backends, {WIDTH}-wide CPU-bound DAG "
        f"({cores} cores)",
        [{
            "backend": name,
            "seconds": r["seconds"],
            "vs_serial": results["serial"]["seconds"] / r["seconds"],
        } for name, r in results.items()],
    )
    assert ARTIFACT_PATH.exists()

    # Correctness first, on every machine: all three backends commit
    # byte-identical final context and identical per-stage statuses.
    prints = {name: r["fingerprint"] for name, r in results.items()}
    assert len(set(prints.values())) == 1, prints
    expected = {"source": "ok", "join": "ok",
                **{f"work_{i}": "ok" for i in range(WIDTH)}}
    for name, r in results.items():
        assert r["statuses"] == expected, name

    # The 512 KB source array crossed to workers via shared memory.
    assert results["process"]["shm_bytes"] >= 65_536 * 8

    # The perf claim needs cores to scale onto; the acceptance floor
    # is calibrated for 4. Below that, equivalence still gates above.
    speedup = payload["speedup_process_vs_thread"]
    if cores >= 4:
        assert speedup >= TARGET_SPEEDUP, (
            f"process vs thread speedup {speedup:.2f}x "
            f"< {TARGET_SPEEDUP}x on {cores} cores")
    elif cores >= 2:
        assert speedup >= 1.2, (
            f"process backend should still beat threads on "
            f"{cores} cores; got {speedup:.2f}x")
