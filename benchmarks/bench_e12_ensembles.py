"""E12 — Autoencoder ensembles beat single detectors (§II-C, [41], [42]).

Claims: (a) randomized ensembles of weak autoencoders outperform a
single autoencoder; (b) diversity-driven member *selection* [42] gets
the same quality from fewer retained members than blind randomization.
"""

import numpy as np
import pytest

from conftest import print_table
from repro.analytics.anomaly import (
    AutoencoderDetector,
    DiversityDrivenEnsembleDetector,
    RandomizedEnsembleDetector,
)
from repro.analytics.metrics import best_f1, point_adjusted_scores, roc_auc
from repro.datasets import inject_anomalies, seasonal_series


def build_workload():
    train_clean = seasonal_series(1200, rng=np.random.default_rng(0))
    train, _ = inject_anomalies(train_clean, 0.08,
                                rng=np.random.default_rng(1))
    test_clean = seasonal_series(600, rng=np.random.default_rng(2))
    test, labels = inject_anomalies(test_clean, 0.05,
                                    rng=np.random.default_rng(3))
    return train, test, labels


def run_experiment():
    train, test, labels = build_workload()
    detectors = [
        ("single_ae", AutoencoderDetector(
            window=24, n_hidden=24, n_latent=3, n_epochs=25,
            rng=np.random.default_rng(4))),
        ("random_ensemble_5", RandomizedEnsembleDetector(
            n_members=5, window=24, n_epochs=25,
            rng=np.random.default_rng(5))),
        ("random_ensemble_9", RandomizedEnsembleDetector(
            n_members=9, window=24, n_epochs=25,
            rng=np.random.default_rng(6))),
        ("diversity_4_of_10", DiversityDrivenEnsembleDetector(
            n_members=4, pool_size=10, window=24, n_epochs=25,
            rng=np.random.default_rng(7))),
    ]
    rows = []
    for name, detector in detectors:
        detector.fit(train)
        scores = point_adjusted_scores(labels, detector.score(test))
        f1, _ = best_f1(labels, scores)
        rows.append({
            "detector": name,
            "best_f1": f1,
            "roc_auc": roc_auc(labels, scores),
        })
    return rows


@pytest.mark.benchmark(group="e12")
def test_e12_ensembles(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_table("E12: single detector vs ensembles", rows)
    by_name = {row["detector"]: row for row in rows}
    # Any ensemble beats the single weak detector on AUC.
    single = by_name["single_ae"]["roc_auc"]
    assert by_name["random_ensemble_5"]["roc_auc"] >= single - 0.01
    assert by_name["random_ensemble_9"]["roc_auc"] >= single - 0.01
    # The diversity-selected 4 members are competitive with 9 random.
    assert by_name["diversity_4_of_10"]["roc_auc"] >= \
        by_name["random_ensemble_9"]["roc_auc"] - 0.05
