"""E16 — Quantization, distillation and continual calibration
(§II-C Resource efficiency, LightTS [47], QCore [48]).

Claims: (a) accuracy degrades gracefully down to a few bits, so models
can be matched to edge memory budgets (LightTS's adaptive quantization);
(b) after a distribution shift, recalibrating only the quantized
model's scale factors (QCore) recovers most of the lost accuracy at a
vanishing parameter cost.
"""

import numpy as np
import pytest

from conftest import print_table
from repro.analytics.classification import LightTsDistiller
from repro.analytics.efficiency import QuantizedLinear
from repro.datasets.classification import waveform_classification_dataset


def run_bits_sweep():
    Xtr, ytr = waveform_classification_dataset(
        40, 96, 4, rng=np.random.default_rng(0))
    Xte, yte = waveform_classification_dataset(
        20, 96, 4, rng=np.random.default_rng(1))
    distiller = LightTsDistiller(
        teacher_sizes=(120, 180), student_kernels=25,
        rng=np.random.default_rng(2)).fit(Xtr, ytr)
    teacher_accuracy = distiller.teacher_score(Xte, yte)
    weights, intercept = distiller._student_float
    rows = []
    for bits in (16, 8, 4, 3, 2):
        distiller.bits = bits
        distiller.student_ = QuantizedLinear(weights, intercept, bits)
        rows.append({
            "bits": bits,
            "student_bytes": distiller.student_size_bytes,
            "student_acc": distiller.score(Xte, yte),
            "teacher_acc": teacher_accuracy,
        })
    return rows


def run_qcore():
    rng = np.random.default_rng(3)
    weights = rng.normal(size=(16, 4))
    inputs = rng.normal(size=(500, 16))
    drifted = inputs @ (1.35 * weights) + 0.4
    rows = []
    for bits in (8, 4):
        layer = QuantizedLinear(weights, np.zeros(4), bits)
        before = float(np.abs(layer.predict(inputs) - drifted).mean())
        layer.calibrate(inputs, drifted)
        after = float(np.abs(layer.predict(inputs) - drifted).mean())
        rows.append({
            "bits": bits,
            "error_before_calib": before,
            "error_after_calib": after,
            "floats_updated": len(layer.scales) + len(layer.intercept),
        })
    return rows


def run_experiment():
    return run_bits_sweep(), run_qcore()


@pytest.mark.benchmark(group="e16")
def test_e16_efficiency(benchmark):
    bits_rows, qcore_rows = benchmark.pedantic(run_experiment, rounds=1,
                                               iterations=1)
    print_table("E16a: student accuracy vs bit-width (LightTS)",
                bits_rows)
    print_table("E16b: QCore continual calibration under drift",
                qcore_rows)
    # Graceful degradation: 8-bit matches 16-bit; even 3-bit stays
    # within 10 points of the teacher.
    by_bits = {row["bits"]: row for row in bits_rows}
    assert by_bits[8]["student_acc"] >= by_bits[16]["student_acc"] - 0.02
    assert by_bits[3]["student_acc"] >= by_bits[16]["teacher_acc"] - 0.1
    # Storage shrinks monotonically with bits.
    sizes = [row["student_bytes"] for row in bits_rows]
    assert sizes == sorted(sizes, reverse=True)
    # QCore: scale-only calibration recovers most of the drift error;
    # at 4 bits the quantization noise itself floors the recovery.
    by_qbits = {row["bits"]: row for row in qcore_rows}
    assert by_qbits[8]["error_after_calib"] < \
        0.2 * by_qbits[8]["error_before_calib"]
    assert by_qbits[4]["error_after_calib"] < \
        0.5 * by_qbits[4]["error_before_calib"]
