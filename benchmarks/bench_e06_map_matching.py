"""E6 — HMM map matching through noise and sparseness (§II-B, [17]).

Claim: the HMM formulation stays accurate as GPS noise grows and as
sampling becomes sparse, while per-point nearest-edge snapping
degrades — route continuity is the information snapping throws away.
"""

import numpy as np
import pytest

from conftest import print_table
from repro import RoadNetwork
from repro.datasets import TrafficSimulator, TrajectoryGenerator
from repro.governance.fusion import HmmMapMatcher


def snap_score(network, true_path, trajectory, radius=1.0):
    true_edges = set(network.path_edges(true_path))
    snapped = set()
    for point in trajectory:
        candidates = network.candidate_edges((point.x, point.y), radius)
        if candidates:
            u, v, _, _ = candidates[0]
            snapped.add((u, v))
    union = snapped | true_edges
    return 1.0 - len(snapped & true_edges) / len(union)


def run_experiment():
    network = RoadNetwork.grid(6, 6)
    simulator = TrafficSimulator(network, rng=np.random.default_rng(0))
    generator = TrajectoryGenerator(simulator,
                                    rng=np.random.default_rng(1))
    rows = []
    for noise in (0.05, 0.15, 0.3):
        trips = generator.generate(8, noise_sigma=noise,
                                   sample_interval=0.5, min_hops=5)
        matcher = HmmMapMatcher(network, sigma=max(noise, 0.05),
                                beta=0.5, candidate_radius=1.2)
        hmm_errors, snap_errors = [], []
        for true_path, trajectory in trips:
            matched = matcher.matched_path(trajectory)
            hmm_errors.append(
                network.route_distance(true_path, matched))
            snap_errors.append(snap_score(network, true_path,
                                          trajectory))
        rows.append({
            "gps_noise": noise,
            "hmm_route_err": float(np.mean(hmm_errors)),
            "snap_route_err": float(np.mean(snap_errors)),
        })
    return rows


@pytest.mark.benchmark(group="e06")
def test_e06_map_matching(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_table("E6: route recovery error vs GPS noise "
                "(lower is better)", rows)
    for row in rows:
        assert row["hmm_route_err"] <= row["snap_route_err"] + 0.02
    # At high noise the HMM's advantage is material.
    assert rows[-1]["hmm_route_err"] < rows[-1]["snap_route_err"]
    # And matching stays useful even at the highest noise level.
    assert rows[-1]["hmm_route_err"] < 0.5
