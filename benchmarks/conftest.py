"""Shared helpers for the experiment benchmarks.

Every ``bench_eXX_*.py`` module reproduces one experiment from
DESIGN.md's index: it builds the workload, runs the method(s) under
``pytest-benchmark`` timing, prints the paper-style table, and asserts
the *direction* of the paper's claim (who wins, roughly by what
factor).  Absolute numbers live in EXPERIMENTS.md.

Run with::

    pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations


def print_table(title, rows, *, floatfmt="{:.4f}"):
    """Render a list of dict rows as an aligned text table."""
    print(f"\n=== {title} ===")
    if not rows:
        print("(no rows)")
        return
    columns = list(rows[0].keys())
    rendered = []
    for row in rows:
        rendered.append({
            key: (floatfmt.format(value) if isinstance(value, float)
                  else str(value))
            for key, value in row.items()
        })
    widths = {
        key: max(len(key), *(len(row[key]) for row in rendered))
        for key in columns
    }
    header = "  ".join(key.ljust(widths[key]) for key in columns)
    print(header)
    print("-" * len(header))
    for row in rendered:
        print("  ".join(row[key].ljust(widths[key]) for key in columns))
