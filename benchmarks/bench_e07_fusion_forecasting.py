"""E7 — Multi-modal feature fusion improves forecasting (§II-B,
[18], [19]).

Claim: fusing exogenous modalities (weather, calendar) with historical
traffic improves forecasting over traffic-only models — the
feature-based fusion stream of the paper's taxonomy.

Workload: traffic speeds whose level is depressed by rain; the rain
covariate is observable (weather service) and known for the forecast
window (weather forecast), exactly the setting of [18, 19].
"""

import numpy as np
import pytest

from conftest import print_table
from repro import TimeSeries
from repro.analytics.forecasting import ARForecaster, ExogenousForecaster
from repro.analytics.metrics import mae
from repro.governance.fusion import add_time_features, fuse_series, weather_series


def build_workload(seed=0):
    rng = np.random.default_rng(seed)
    n_steps = 1400
    weather = weather_series(n_steps, rng=rng)
    rain = weather.values[:, 1]
    minutes = np.arange(n_steps) * 15.0
    hour = (minutes % (24 * 60)) / 60.0
    diurnal = 1.0 - 0.4 * np.exp(-0.5 * ((hour - 8.0) / 1.5) ** 2)
    speed = 60.0 * diurnal * (1.0 - 0.35 * rain)
    speed += rng.normal(0, 1.5, n_steps)
    traffic = TimeSeries(speed, timestamps=minutes, name="traffic")
    return traffic, weather


def run_experiment():
    traffic, weather = build_workload()
    fused, _ = fuse_series({"traffic": traffic, "weather": weather})
    fused = add_time_features(fused, period=24 * 60.0)

    horizon = 96
    cut = len(traffic) - horizon
    rows = []

    # Traffic-only model.
    train_traffic = traffic.slice(0, cut)
    test_traffic = traffic.slice(cut, len(traffic))
    solo = ARForecaster(n_lags=12, seasonal_period=96).fit(train_traffic)
    rows.append({
        "model": "traffic_only_AR",
        "mae": mae(test_traffic.values, solo.predict(horizon)),
    })

    # Fused model with known future covariates (weather forecast).
    train_fused = fused.slice(0, cut)
    test_fused = fused.slice(cut, len(fused))
    fused_model = ExogenousForecaster([0], n_lags=12).fit(train_fused)
    prediction = fused_model.predict(
        horizon, future_covariates=test_fused.values)
    rows.append({
        "model": "fused_traffic+weather+time",
        "mae": mae(test_fused.values[:, :1], prediction),
    })

    # Ablation: fused features but covariates frozen (no forecast feed).
    frozen = ExogenousForecaster([0], n_lags=12).fit(train_fused)
    rows.append({
        "model": "fused_frozen_covariates",
        "mae": mae(test_fused.values[:, :1], frozen.predict(horizon)),
    })
    return rows


@pytest.mark.benchmark(group="e07")
def test_e07_fusion_forecasting(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_table("E7: forecasting MAE with and without fusion", rows)
    by_model = {row["model"]: row["mae"] for row in rows}
    assert by_model["fused_traffic+weather+time"] < \
        by_model["traffic_only_AR"]
