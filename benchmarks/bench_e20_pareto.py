"""E20 — Route skylines expose trade-offs scalarization hides
(§II-D Multi-objective, [15], [54]).

Claims: (a) the skyline contains every route any preference could
favour, and its size stays manageable; (b) a single scalarization
returns exactly one skyline member — committing to weights *before*
seeing the trade-offs hides the alternatives.
"""

import numpy as np
import pytest

from conftest import print_table
from repro import RoadNetwork
from repro.decision import SkylineRouter, pareto_front, scalarize


def build_network(seed=4):
    network = RoadNetwork.grid(6, 6)
    rng = np.random.default_rng(seed)
    for u, v in network.edges():
        length = network.edge_length(u, v)
        network.set_edge_attribute(u, v, "time",
                                   length * rng.uniform(0.4, 2.5))
        network.set_edge_attribute(u, v, "energy",
                                   length * rng.uniform(0.4, 2.5))
        network.set_edge_attribute(u, v, "emissions",
                                   length * rng.uniform(0.4, 2.5))
    return network


def run_experiment():
    network = build_network()
    rows = []
    for objectives in (["time", "energy"],
                       ["time", "energy", "emissions"]):
        router = SkylineRouter(network, objectives, max_labels=48)
        skyline = router.skyline((0, 0), (4, 4))
        costs = np.array([cost for _, cost in skyline])
        # How many *distinct* skyline routes do the extreme preferences
        # pick?  Each weight vector selects exactly one.
        chosen = set()
        for index in range(len(objectives)):
            weights = np.full(len(objectives), 0.05)
            weights[index] = 1.0 - 0.05 * (len(objectives) - 1)
            chosen.add(scalarize(costs, weights))
        rows.append({
            "objectives": len(objectives),
            "skyline_size": len(skyline),
            "mutually_nondominated":
                len(pareto_front(costs)) == len(skyline),
            "extreme_prefs_pick_distinct": len(chosen),
        })
    return rows


@pytest.mark.benchmark(group="e20")
def test_e20_pareto(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_table("E20: route skylines on a 6x6 network", rows)
    for row in rows:
        assert row["mutually_nondominated"]
        assert row["skyline_size"] >= 2
    # More objectives -> richer trade-off surface.
    assert rows[1]["skyline_size"] >= rows[0]["skyline_size"]
    # Different preferences genuinely pick different skyline routes.
    assert rows[1]["extreme_prefs_pick_distinct"] >= 2
