"""E1 — The paradigm end to end (paper Figure 1, §I).

Claim: value is created by the *composition* data → governance →
analytics → decision; each governance stage contributes measurable
data quality that the downstream layers consume.

The bench runs the full traffic pipeline and an ablation table: the
reconstruction error of the training data (what analytics sees) and
the resulting forecast error, with the imputation stage on and off.

Since the engine refactor the stages declare contracts, so the
ablation also exercises the content-keyed stage cache: a rerun
against the same :class:`StageCache` replays every stage outside the
removed stage's downstream cone instead of re-executing it.
"""

import json
import pathlib

import numpy as np
import pytest

from conftest import print_table

ARTIFACT_PATH = pathlib.Path(__file__).resolve().parent.parent / \
    "BENCH_e01.json"
from repro import DecisionPipeline, StageCache
from repro.observability.metrics import use_registry
from repro.analytics.forecasting import GraphFilterForecaster
from repro.analytics.metrics import mae
from repro.datasets import traffic_speed_dataset
from repro.datatypes import CorrelatedTimeSeries
from repro.governance.imputation import impute_seasonal


def build_workload():
    rng = np.random.default_rng(7)
    full = traffic_speed_dataset(n_sensors=16, n_days=7, rng=rng)
    train, test = full.split(0.9)
    observed = train.corrupt(0.3, np.random.default_rng(8),
                             block_length=8)
    return train, test, observed


def _finish_impute(s, values):
    s["clean"] = CorrelatedTimeSeries(
        values, adjacency=s["observed"].adjacency,
        timestamps=s["observed"].timestamps)
    holes = ~s["observed"].mask
    s["repair_mae"] = float(np.abs(
        values[holes] - s["truth"].values[holes]).mean())
    return "imputed"


def impute_governed(s):
    completed = impute_seasonal(s["observed"].as_timeseries(), 96)
    return _finish_impute(s, completed.values)


def impute_naive(s):
    values = np.nan_to_num(s["observed"].values,
                           nan=np.nanmean(s["observed"].values))
    return _finish_impute(s, values)


def forecast(s):
    model = GraphFilterForecaster(n_lags=6, n_hops=2).fit(s["clean"])
    s["forecast_mae"] = mae(s["test"].values,
                            model.predict(len(s["test"])))
    return "forecasted"


def dispatch(s):
    s["dispatch"] = np.argsort(s["clean"].values[-4:].mean(axis=0))[:3]
    return "dispatched"


def build_pipeline(*, use_governance):
    pipeline = DecisionPipeline("E1")
    pipeline.add_governance(
        "impute", impute_governed if use_governance else impute_naive,
        reads=("observed", "truth"), writes=("clean", "repair_mae"))
    pipeline.add_analytics(
        "forecast", forecast,
        reads=("clean", "test"), writes=("forecast_mae",))
    pipeline.add_decision(
        "dispatch", dispatch,
        reads=("clean",), writes=("dispatch",))
    return pipeline


def run_pipeline(train, test, observed, *, use_governance,
                 cache=None):
    state = {"observed": observed, "truth": train, "test": test}
    pipeline = build_pipeline(use_governance=use_governance)
    return pipeline.run(state, cache=cache)


def run_experiment():
    train, test, observed = build_workload()
    rows = []
    for use_governance in (True, False):
        state, report = run_pipeline(train, test, observed,
                                     use_governance=use_governance)
        rows.append({
            "governance": "seasonal imputation" if use_governance
            else "naive mean-fill",
            "repair_mae": state["repair_mae"],
            "forecast_mae": state["forecast_mae"],
            "stages": len(report.records),
        })
    return rows


def run_cache_ablation():
    """E1's without_stage rerun against a shared stage cache.

    Runs inside a scoped :class:`MetricsRegistry` so the returned
    snapshot carries the engine's own accounting of the same story —
    cache hit/miss counters and per-stage duration histograms.
    """
    train, test, observed = build_workload()
    state = {"observed": observed, "truth": train, "test": test}
    cache = StageCache()
    pipeline = build_pipeline(use_governance=True)

    with use_registry() as registry:
        _, cold = pipeline.run(state, cache=cache)
        _, warm = pipeline.run(state, cache=cache)
        _, ablated = pipeline.without_stage("dispatch").run(
            state, cache=cache)
    rows = [
        {"run": "cold", "cache_hits": cold.cache_hits,
         "stages": len(cold.records),
         "wall_s": cold.wall_seconds},
        {"run": "warm rerun", "cache_hits": warm.cache_hits,
         "stages": len(warm.records),
         "wall_s": warm.wall_seconds},
        {"run": "without dispatch", "cache_hits": ablated.cache_hits,
         "stages": len(ablated.records),
         "wall_s": ablated.wall_seconds},
    ]
    return rows, registry.snapshot()


@pytest.mark.benchmark(group="e01")
def test_e01_pipeline(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_table("E1: end-to-end pipeline, governance on/off", rows)
    governed, naive = rows
    # Governance improves the data the rest of the pipeline consumes by
    # a large factor.
    assert governed["repair_mae"] < 0.5 * naive["repair_mae"]
    # And the end-to-end run completes with all stages reporting.
    assert governed["stages"] == 3


def emit_trajectory(rows, snapshot):
    """Write the run trajectory as a CI-uploadable JSON artifact."""
    cold, warm, ablated = rows
    payload = {
        "experiment": "e01_pipeline_cache_ablation",
        "runs": rows,
        "cold_wall_s": cold["wall_s"],
        "warm_wall_s": warm["wall_s"],
        "cache_hits_total": sum(r["cache_hits"] for r in rows),
        "warm_speedup": (cold["wall_s"] / warm["wall_s"]
                         if warm["wall_s"] > 0 else None),
        "metrics": {
            name: snapshot[name]
            for name in ("engine.stage_cache_lookups_total",
                         "engine.stage_cache_replays_total",
                         "engine.stage_duration_seconds",
                         "engine.runs_total")
            if name in snapshot
        },
    }
    ARTIFACT_PATH.write_text(json.dumps(payload, indent=2,
                                        sort_keys=True) + "\n")
    return payload


def _series_value(snapshot, name, **labels):
    for series in snapshot[name]["series"]:
        if series["labels"] == labels:
            return series.get("value", series.get("count"))
    return 0


@pytest.mark.benchmark(group="e01")
def test_e01_cache_ablation(benchmark):
    rows, snapshot = benchmark.pedantic(run_cache_ablation, rounds=1,
                                        iterations=1)
    print_table("E1: stage-cache reuse across reruns", rows)
    cold, warm, ablated = rows
    assert cold["cache_hits"] == 0
    # A rerun of the identical pipeline replays every stage.
    assert warm["cache_hits"] == warm["stages"] == 3
    # Removing a stage leaves everything outside its downstream cone
    # cached: impute and forecast replay, only dispatch is gone.
    assert ablated["stages"] == 2
    assert ablated["cache_hits"] == 2
    assert warm["wall_s"] < cold["wall_s"]
    # The engine's own metrics tell the same story: 3 cold misses,
    # 3 + 2 replayed hits, and a duration sample for every stage
    # that actually executed.
    assert _series_value(snapshot, "engine.stage_cache_lookups_total",
                         outcome="hit") == 5
    assert _series_value(snapshot, "engine.stage_cache_lookups_total",
                         outcome="miss") == 3
    for stage in ("impute", "forecast", "dispatch"):
        assert _series_value(snapshot, "engine.stage_duration_seconds",
                             stage=stage) >= 1
    assert _series_value(snapshot, "engine.runs_total",
                         status="ok") == 3
    payload = emit_trajectory(rows, snapshot)
    assert ARTIFACT_PATH.exists()
    assert payload["warm_speedup"] > 1.0
