"""E1 — The paradigm end to end (paper Figure 1, §I).

Claim: value is created by the *composition* data → governance →
analytics → decision; each governance stage contributes measurable
data quality that the downstream layers consume.

The bench runs the full traffic pipeline and an ablation table: the
reconstruction error of the training data (what analytics sees) and
the resulting forecast error, with the imputation stage on and off.
"""

import numpy as np
import pytest

from conftest import print_table
from repro import DecisionPipeline
from repro.analytics.forecasting import GraphFilterForecaster
from repro.analytics.metrics import mae
from repro.datasets import traffic_speed_dataset
from repro.datatypes import CorrelatedTimeSeries
from repro.governance.imputation import impute_seasonal


def build_workload():
    rng = np.random.default_rng(7)
    full = traffic_speed_dataset(n_sensors=16, n_days=7, rng=rng)
    train, test = full.split(0.9)
    observed = train.corrupt(0.3, np.random.default_rng(8),
                             block_length=8)
    return train, test, observed


def run_pipeline(train, test, observed, *, use_governance):
    pipeline = DecisionPipeline("E1")
    state = {"observed": observed, "truth": train, "test": test}

    def impute(s):
        if use_governance:
            completed = impute_seasonal(s["observed"].as_timeseries(), 96)
            values = completed.values
        else:
            values = np.nan_to_num(s["observed"].values,
                                   nan=np.nanmean(s["observed"].values))
        s["clean"] = CorrelatedTimeSeries(
            values, adjacency=s["observed"].adjacency,
            timestamps=s["observed"].timestamps)
        holes = ~s["observed"].mask
        s["repair_mae"] = float(np.abs(
            values[holes] - s["truth"].values[holes]).mean())
        return "imputed"

    def forecast(s):
        model = GraphFilterForecaster(n_lags=6, n_hops=2).fit(s["clean"])
        s["forecast_mae"] = mae(s["test"].values,
                                model.predict(len(s["test"])))
        return "forecasted"

    def decide(s):
        s["dispatch"] = np.argsort(s["clean"].values[-4:].mean(axis=0))[:3]
        return "dispatched"

    pipeline.add_governance("impute", impute)
    pipeline.add_analytics("forecast", forecast)
    pipeline.add_decision("dispatch", decide)
    final_state, report = pipeline.run(state)
    return final_state, report


def run_experiment():
    train, test, observed = build_workload()
    rows = []
    for use_governance in (True, False):
        state, report = run_pipeline(train, test, observed,
                                     use_governance=use_governance)
        rows.append({
            "governance": "seasonal imputation" if use_governance
            else "naive mean-fill",
            "repair_mae": state["repair_mae"],
            "forecast_mae": state["forecast_mae"],
            "stages": len(report.records),
        })
    return rows


@pytest.mark.benchmark(group="e01")
def test_e01_pipeline(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_table("E1: end-to-end pipeline, governance on/off", rows)
    governed, naive = rows
    # Governance improves the data the rest of the pipeline consumes by
    # a large factor.
    assert governed["repair_mae"] < 0.5 * naive["repair_mae"]
    # And the end-to-end run completes with all four layers reporting.
    assert governed["stages"] == 3
