"""E21 — Contextual preference learning personalizes decisions
(§II-D Personalized, [54], [55]).

Claim: "the challenge lies in selecting the most suitable preference
for a given context" — learning per-context objective weights from
observed choices recovers the true trade-offs and predicts held-out
choices far better than a context-blind model.
"""

import numpy as np
import pytest

from conftest import print_table
from repro.decision import ContextualPreferenceModel

TRUE_WEIGHTS = {
    "weekday_peak": np.array([0.70, 0.20, 0.10]),   # time dominates
    "weekday_off": np.array([0.30, 0.30, 0.40]),
    "weekend": np.array([0.10, 0.25, 0.65]),        # comfort dominates
}


def simulate_choices(rng, weights, n, n_options=5):
    decisions = []
    for _ in range(n):
        options = rng.uniform(0, 1, size=(n_options, 3))
        decisions.append((int(np.argmin(options @ weights)), options))
    return decisions


def run_experiment():
    rng = np.random.default_rng(0)
    contextual = ContextualPreferenceModel(3)
    blind = ContextualPreferenceModel(3)
    heldout = {}
    for context, weights in TRUE_WEIGHTS.items():
        for chosen, options in simulate_choices(rng, weights, 40):
            alternatives = [options[i] for i in range(len(options))
                            if i != chosen]
            contextual.observe(context, options[chosen], alternatives)
            blind.observe("all", options[chosen], alternatives)
        heldout[context] = simulate_choices(rng, weights, 60)
    contextual.fit()
    blind.fit()

    rows = []
    for context, weights in TRUE_WEIGHTS.items():
        learned = contextual.weights(context)
        rows.append({
            "context": context,
            "true_w": np.round(weights, 2).tolist(),
            "learned_w": np.round(learned, 2).tolist(),
            "ctx_agreement": contextual.agreement(context,
                                                  heldout[context]),
            "blind_agreement": blind.agreement("all", heldout[context]),
        })
    return rows


@pytest.mark.benchmark(group="e21")
def test_e21_preference(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_table("E21: per-context preference recovery and held-out "
                "choice agreement", rows)
    for row in rows:
        assert row["ctx_agreement"] > 0.8
    # Personalization beats one-size-fits-all on the extreme contexts.
    extremes = [row for row in rows
                if row["context"] in ("weekday_peak", "weekend")]
    for row in extremes:
        assert row["ctx_agreement"] > row["blind_agreement"]
