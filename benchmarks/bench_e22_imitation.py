"""E22 — Learning to route from sparse expert trajectories
(§II-D Learning-based, [56]).

Claim: expert drivers' routes encode knowledge (here: systematic
avoidance of the congested center) that shortest-path routing lacks;
learning from their trajectories lets a router mimic them — and the
smoothing over the road graph makes it work even from *sparse*
trajectory sets.
"""

import numpy as np
import networkx as nx
import pytest

from conftest import print_table
from repro import RoadNetwork
from repro.decision import ImitationRouter


def build_experts(n_paths=80, seed=8):
    network = RoadNetwork.grid(7, 7)
    rng = np.random.default_rng(seed)

    def expert_cost(u, v):
        (x1, y1), (x2, y2) = network.edge_endpoints(u, v)
        mid_x, mid_y = (x1 + x2) / 2, (y1 + y2) / 2
        central = np.exp(-((mid_x - 3) ** 2 + (mid_y - 3) ** 2) / 4.0)
        return network.edge_length(u, v) * (1 + 2.0 * central)

    paths = []
    nodes = network.nodes()
    while len(paths) < n_paths:
        a, b = rng.choice(len(nodes), 2, replace=False)
        a, b = nodes[int(a)], nodes[int(b)]
        noise = float(rng.uniform(0.95, 1.05))
        path = nx.dijkstra_path(
            network.graph, a, b,
            weight=lambda u, v, data: expert_cost(u, v) * noise)
        if len(path) >= 6:
            paths.append(path)
    return network, paths


def expert_cost_of(network, path):
    total = 0.0
    for u, v in network.path_edges(path):
        (x1, y1), (x2, y2) = network.edge_endpoints(u, v)
        mid_x, mid_y = (x1 + x2) / 2, (y1 + y2) / 2
        central = np.exp(-((mid_x - 3) ** 2 + (mid_y - 3) ** 2) / 4.0)
        total += network.edge_length(u, v) * (1 + 2.0 * central)
    return total


def run_experiment():
    network, paths = build_experts()
    test = paths[60:]

    def cost_ratio(route_fn):
        """Recommended route's expert-perceived cost relative to the
        expert's own choice (1.0 = routes exactly as well as the
        expert; higher = worse by the expert's objective)."""
        ratios = [
            expert_cost_of(network, route_fn(p[0], p[-1]))
            / expert_cost_of(network, p)
            for p in test
        ]
        return float(np.mean(ratios))

    shortest_ratio = cost_ratio(network.shortest_path)
    rows = []
    for n_train in (10, 30, 60):
        train = paths[:n_train]
        router = ImitationRouter(network,
                                 avoidance_penalty=2.0).fit(train)
        rows.append({
            "expert_trajectories": n_train,
            "imitation_cost_ratio": cost_ratio(router.route),
            "shortest_cost_ratio": shortest_ratio,
            "route_similarity": router.imitation_score(test),
            "coverage": router.popularity_coverage(),
        })
    return rows


@pytest.mark.benchmark(group="e22")
def test_e22_imitation(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_table("E22: expert-perceived cost of recommended routes "
                "(1.0 = expert's own choice)", rows)
    for row in rows:
        # Imitation routes cost the expert objective materially less
        # than shortest paths - the learned avoidance is real.
        assert row["imitation_cost_ratio"] < \
            row["shortest_cost_ratio"] - 0.05
    # Even 10 sparse trajectories suffice thanks to graph smoothing,
    # which keeps popularity coverage near-total.
    assert rows[0]["coverage"] > 0.9
