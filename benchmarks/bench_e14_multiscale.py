"""E14 — Multi-scale pathways adapt to mixed periodicities
(§II-C Robustness, Pathformer [40]).

Claim: signals mixing several temporal resolutions defeat any
single-resolution model; decomposing into scale pathways and letting
validation choose per pathway outperforms single-scale baselines.
"""

import numpy as np
import pytest

from conftest import print_table
from repro import TimeSeries
from repro.analytics.forecasting import ARForecaster
from repro.analytics.metrics import mae
from repro.analytics.robustness import MultiScalePathwaysForecaster


def build_signal(seed=7, n=1600):
    rng = np.random.default_rng(seed)
    t = np.arange(n)
    values = (np.sin(2 * np.pi * t / 168) * 2.0     # weekly-ish cycle
              + np.sin(2 * np.pi * t / 24) * 1.0    # daily cycle
              + t * 0.003                            # slow trend
              + rng.normal(0, 0.25, n))              # noise floor
    return TimeSeries(values)


def run_experiment():
    series = build_signal()
    train, test = series.split(0.9)
    horizon = len(test)
    models = [
        ("AR_short(8)", ARForecaster(n_lags=8)),
        ("AR_long(48)", ARForecaster(n_lags=48)),
        ("pathways(6,36,168)",
         MultiScalePathwaysForecaster(scales=(6, 36, 168))),
        ("pathways_nonadaptive",
         MultiScalePathwaysForecaster(scales=(6, 36, 168),
                                      adaptive=False)),
    ]
    rows = []
    for name, model in models:
        model.fit(train)
        rows.append({
            "model": name,
            "mae": mae(test.values, model.predict(horizon)),
        })
    return rows


@pytest.mark.benchmark(group="e14")
def test_e14_multiscale(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_table("E14: mixed-periodicity forecasting "
                f"(horizon = 10% of series)", rows)
    by_name = {row["model"]: row["mae"] for row in rows}
    assert by_name["pathways(6,36,168)"] < by_name["AR_short(8)"]
    assert by_name["pathways(6,36,168)"] < by_name["AR_long(48)"]
    # The win is large, not marginal (the paper's motivation).
    assert by_name["pathways(6,36,168)"] < 0.5 * by_name["AR_long(48)"]
