"""The Data-Governance-Analytics-Decision pipeline (paper Figure 1).

The paper's contribution is the *paradigm*: raw multi-modal data flows
through data governance (quality repair, uncertainty quantification,
fusion), then analytics (forecasting, detection, classification), and
finally a decision strategy picks an action.  :class:`DecisionPipeline`
makes that flow a first-class, inspectable object:

* stages are named functions attached to one of the four layers;
* a run threads a shared *state* dict through the stages in layer
  order (data → governance → analytics → decision);
* every stage's summary and wall time land in a :class:`RunReport`,
  so a run documents itself.

The examples build concrete pipelines (traffic routing, autoscaling)
out of the library's components; experiment E1 measures how much each
governance stage contributes to final decision quality by toggling
stages off.
"""

from __future__ import annotations

import time

from .report import RunReport

__all__ = ["DecisionPipeline"]


class DecisionPipeline:
    """Composable realization of the paper's Figure 1.

    Stage functions receive the mutable ``state`` dict and return
    either a summary string or a ``(summary, details_dict)`` pair.
    They communicate by reading and writing ``state`` entries.
    """

    _LAYERS = ("data", "governance", "analytics", "decision")

    def __init__(self, title="data-governance-analytics-decision"):
        self.title = str(title)
        self._stages = {layer: [] for layer in self._LAYERS}

    # -- construction -------------------------------------------------------

    def add_stage(self, layer, name, function):
        """Attach a stage to a layer; returns ``self`` for chaining."""
        if layer not in self._LAYERS:
            raise ValueError(
                f"layer must be one of {self._LAYERS}, got {layer!r}"
            )
        if not callable(function):
            raise TypeError("function must be callable")
        self._stages[layer].append((str(name), function))
        return self

    def add_data(self, name, function):
        return self.add_stage("data", name, function)

    def add_governance(self, name, function):
        return self.add_stage("governance", name, function)

    def add_analytics(self, name, function):
        return self.add_stage("analytics", name, function)

    def add_decision(self, name, function):
        return self.add_stage("decision", name, function)

    def without_stage(self, name):
        """A copy of the pipeline with the named stage removed.

        The ablation device of experiment E1: rerun the pipeline with a
        governance stage switched off and compare decision quality.
        """
        copy = DecisionPipeline(title=f"{self.title} (without {name})")
        found = False
        for layer in self._LAYERS:
            for stage_name, function in self._stages[layer]:
                if stage_name == name:
                    found = True
                    continue
                copy._stages[layer].append((stage_name, function))
        if not found:
            raise KeyError(f"no stage named {name!r}")
        return copy

    @property
    def stage_names(self):
        return [
            name
            for layer in self._LAYERS
            for name, _ in self._stages[layer]
        ]

    # -- execution -----------------------------------------------------------

    def run(self, initial_state=None):
        """Execute all stages in layer order.

        Returns
        -------
        (dict, RunReport)
            The final state and the run's audit report.
        """
        if not any(self._stages.values()):
            raise RuntimeError("pipeline has no stages")
        state = dict(initial_state or {})
        report = RunReport(title=self.title)
        for layer in self._LAYERS:
            for name, function in self._stages[layer]:
                started = time.perf_counter()
                outcome = function(state)
                elapsed = time.perf_counter() - started
                if isinstance(outcome, tuple):
                    summary, details = outcome
                else:
                    summary, details = outcome, {}
                report.add(layer, name, summary, elapsed, **details)
        return state, report
