"""The Data-Governance-Analytics-Decision pipeline (paper Figure 1).

The paper's contribution is the *paradigm*: raw multi-modal data flows
through data governance (quality repair, uncertainty quantification,
fusion), then analytics (forecasting, detection, classification), and
finally a decision strategy picks an action.  :class:`DecisionPipeline`
makes that flow a first-class, inspectable object — and, since the
engine refactor, an *executable DAG*:

* stages are named functions attached to one of the four layers,
  optionally carrying a contract of the state keys they ``reads`` /
  ``writes`` (see :mod:`repro.core.stage`);
* the dependency resolver (:mod:`repro.core.dag`) turns overlapping
  contracts into edges, and the scheduler
  (:mod:`repro.core.scheduler`) runs contract-independent stages
  concurrently while contracts preserve layer-ordering semantics;
* stage execution is *transactional*: an attempt's writes commit to
  shared state atomically only on success, so a failed, retried,
  skipped, timed-out or cancelled attempt never leaves torn state;
* per-stage failure policies (``fail`` / ``skip`` / ``fallback``)
  with bounded retries and jittered exponential backoff keep one bad
  stage from killing a run, while per-stage ``timeout=`` and a
  run-level ``deadline=`` keep any stage — or the whole run — from
  hanging forever (cooperative cancellation at every state access);
* an optional content-keyed :class:`~repro.core.cache.StageCache`
  replays unchanged stages across runs, so the E1 ablation
  (``without_stage``) only re-executes the removed stage's
  downstream cone;
* every stage's summary, wall time, status and cache provenance land
  in a :class:`RunReport`, and an opt-in tracer streams structured
  events, so a run documents itself.

Stages that declare no contract behave exactly as before the
refactor: they conflict with everything, resolve to a chain, and run
sequentially in layer order.
"""

from __future__ import annotations

import uuid

from . import dag as _dag
from .events import emit
from .executors import resolve_executor
from .report import RunReport
from .scheduler import DagScheduler
from .stage import Stage

__all__ = ["DecisionPipeline"]


def _execute_run(title, stages, deps, state, *, cache=None,
                 cache_keys=None, tracer=None, max_workers=None,
                 deadline=None, copy_on_read=False, metrics=None,
                 profile=False, executor=None, run_id=None,
                 run_data=None):
    """One scheduled run over prepared stages: the shared engine core.

    Both :meth:`DecisionPipeline.run` and every
    :class:`~repro.core.streaming.IncrementalSession` tick funnel
    through here, so events, metrics, profiles and reports are
    identical whether a DAG executes from scratch or as one tick of a
    stream.  ``state`` is mutated in place; ``run_data`` adds extra
    fields (e.g. the tick number) onto the ``run_start`` event.
    Returns the finished :class:`RunReport`.
    """
    from ..observability.metrics import get_registry
    from ..observability.profiling import RunProfiler
    from .stage import RunDeadlineExceeded, StageFailure

    executor = resolve_executor(executor)
    run_id = uuid.uuid4().hex[:12] if run_id is None else str(run_id)
    report = RunReport(title=title)
    report.run_id = run_id
    report.set_dag([
        (stage.name, tuple(stages[i].name for i in sorted(deps[j])))
        for j, stage in enumerate(stages)
    ])
    report.set_deadline(deadline)
    metrics = metrics if metrics is not None else get_registry()
    profiler = RunProfiler().start() if profile else None
    emit(tracer, "run_start", stages=len(stages), run_id=run_id,
         executor=executor.kind, **dict(run_data or {}))
    scheduler = DagScheduler(max_workers=max_workers)
    run_status = "ok"
    try:
        scheduler.execute(stages, deps, state, report,
                          cache=cache, tracer=tracer,
                          deadline=deadline,
                          copy_on_read=copy_on_read,
                          metrics=metrics, profiler=profiler,
                          executor=executor, run_id=run_id,
                          cache_keys=cache_keys)
    except RunDeadlineExceeded:
        run_status = "deadline_exceeded"
        raise
    except StageFailure:
        run_status = "failed"
        raise
    except BaseException:
        run_status = "error"
        raise
    finally:
        if profiler is not None:
            profiler.stop()
            report.set_profiles(profiler.profiles())
        report.finish()
        metrics.counter(
            "engine.runs_total",
            "Pipeline runs by terminal status").inc(
                status=run_status)
        metrics.histogram(
            "engine.run_duration_seconds",
            "Wall-clock duration of whole pipeline runs").observe(
                report.wall_seconds)
        emit(tracer, "run_end",
             wall_seconds=report.wall_seconds,
             cache_hits=report.cache_hits)
    return report


class DecisionPipeline:
    """Composable realization of the paper's Figure 1.

    Stage functions receive the (contract-checked) mutable state
    mapping and return either a summary string or a
    ``(summary, details_dict)`` pair.  They communicate by reading
    and writing state entries.
    """

    _LAYERS = ("data", "governance", "analytics", "decision")

    def __init__(self, title="data-governance-analytics-decision"):
        self.title = str(title)
        self._stages = {layer: [] for layer in self._LAYERS}

    # -- construction -------------------------------------------------------

    def add_stage(self, layer, name, function, *, reads=None,
                  writes=None, on_error="fail", fallback=None,
                  retries=0, timeout=None, backoff=0.02,
                  incremental=None):
        """Attach a stage to a layer; returns ``self`` for chaining.

        ``reads`` / ``writes`` declare the stage's contract (iterables
        of state keys); omitting them keeps the legacy "touches
        everything" wildcard, which degrades that stage — and
        everything ordered around it — to sequential execution.
        ``on_error`` ∈ {"fail", "skip", "fallback"} and ``retries``
        set the failure policy; ``fallback`` is the substitute
        callable for ``on_error="fallback"``.  ``timeout`` bounds one
        attempt's wall clock in seconds (cooperatively enforced at
        every state access), and ``backoff`` is the base of the
        jittered exponential pause between retry attempts.
        ``incremental`` is an optional fold callable for streaming
        sessions — see :meth:`stream` and ``docs/STREAMING.md``.
        """
        if layer not in self._LAYERS:
            raise ValueError(
                f"layer must be one of {self._LAYERS}, got {layer!r}"
            )
        stage = Stage(layer, name, function, reads=reads, writes=writes,
                      on_error=on_error, fallback=fallback,
                      retries=retries, timeout=timeout, backoff=backoff,
                      incremental=incremental)
        if stage.name in self.stage_names:
            raise ValueError(
                f"duplicate stage name {stage.name!r}; stage names "
                "must be unique so without_stage() and reports are "
                "unambiguous"
            )
        self._stages[layer].append(stage)
        return self

    def add_data(self, name, function, **kwargs):
        return self.add_stage("data", name, function, **kwargs)

    def add_governance(self, name, function, **kwargs):
        return self.add_stage("governance", name, function, **kwargs)

    def add_analytics(self, name, function, **kwargs):
        return self.add_stage("analytics", name, function, **kwargs)

    def add_decision(self, name, function, **kwargs):
        return self.add_stage("decision", name, function, **kwargs)

    def without_stage(self, name):
        """A copy of the pipeline with the named stage removed.

        The ablation device of experiment E1: rerun the pipeline with
        a governance stage switched off and compare decision quality.
        Run both pipelines against the same
        :class:`~repro.core.cache.StageCache` and only the removed
        stage's downstream cone re-executes.
        """
        copy = DecisionPipeline(title=f"{self.title} (without {name})")
        found = False
        for layer in self._LAYERS:
            for stage in self._stages[layer]:
                if stage.name == name:
                    found = True
                    continue
                copy._stages[layer].append(stage)
        if not found:
            raise KeyError(f"no stage named {name!r}")
        return copy

    @property
    def stage_names(self):
        return [stage.name for stage in self._ordered_stages()]

    def _ordered_stages(self):
        """All stages in layer-major order (the DAG's topological base)."""
        return [stage
                for layer in self._LAYERS
                for stage in self._stages[layer]]

    def resolved_dag(self):
        """The dependency DAG as ``{stage: (dep, ...)}`` over names."""
        stages = self._ordered_stages()
        deps = _dag.resolve_dependencies(stages)
        return {
            stage.name: tuple(stages[i].name for i in sorted(deps[j]))
            for j, stage in enumerate(stages)
        }

    def describe_contracts(self):
        """Every stage's contract as plain data, in execution order.

        One :meth:`~repro.core.stage.Stage.describe_contract` dict per
        stage — the introspection surface the static analyzer
        (:mod:`repro.analysis`) mirrors at lint time.
        """
        return [stage.describe_contract()
                for stage in self._ordered_stages()]

    # -- execution -----------------------------------------------------------

    def run(self, initial_state=None, *, cache=None, tracer=None,
            max_workers=None, deadline=None, copy_on_read=False,
            metrics=None, profile=False, executor=None, run_id=None):
        """Execute the stage DAG.

        Parameters
        ----------
        initial_state:
            Seed state entries (copied; the caller's dict is never
            mutated).
        executor:
            Where stage attempts run: an
            :class:`~repro.core.executors.Executor` instance or a
            name — ``"thread"`` (default; right for I/O-bound and
            GIL-releasing numpy stages), ``"process"`` (CPU-bound
            pure-Python stages scale with cores; see
            ``docs/EXECUTORS.md`` for pickling and shared-memory
            semantics) or ``"serial"`` (deterministic inline
            debugging).  ``None`` consults the ``REPRO_EXECUTOR``
            environment variable.  Results are backend-independent
            for contract-correct pipelines.
        run_id:
            Identity of this run, recorded on the report and the
            ``run_start`` event, and the seed of every deterministic
            per-attempt jitter (retry backoff, jittered fault
            delays).  Default: a fresh 12-hex-digit id; pass a fixed
            value to make retry timing reproducible across reruns.
        cache:
            Optional :class:`~repro.core.cache.StageCache`; stages
            with declared contracts replay from it when their whole
            upstream cone is unchanged.
        tracer:
            Optional observer with an ``on_event(event)`` method; see
            :mod:`repro.core.events`.  A tracer that also exposes
            ``inject(stage_name, attempt)`` (e.g.
            :class:`~repro.core.faults.FaultInjector`) is called at
            the top of every attempt and may raise or sleep.
        max_workers:
            Thread-pool width for concurrent stages (default: one
            slot per stage, capped at 32).
        deadline:
            Run-level wall-clock budget in seconds.  When it expires
            the run is cancelled: in-flight stages abort at their
            next state access (committing nothing), unstarted stages
            are recorded as ``cancelled``, and
            :class:`RunDeadlineExceeded` is raised.
        copy_on_read:
            Hand stages defensive copies of numpy arrays read through
            keys their contract declares read-only (declared
            ``writes`` not containing the key), closing the in-place
            mutation escape hatch at the cost of one copy per such
            key per attempt.  Off by default.
        metrics:
            :class:`~repro.observability.MetricsRegistry` the run
            publishes engine metrics into (attempts, retries,
            outcomes, durations, queue waits, cache replays, run
            totals).  Default: the process-global registry
            (:func:`repro.observability.get_registry`).
        profile:
            When true, attach a
            :class:`~repro.observability.RunProfiler`: per-stage
            wall/CPU seconds, scheduler queue wait and ``tracemalloc``
            allocation deltas land on ``report.profiles`` (see
            ``docs/OBSERVABILITY.md``).  Off by default — it starts
            ``tracemalloc``, which costs real overhead.

        Returns
        -------
        (dict, RunReport)
            The final state and the run's audit report.

        Raises
        ------
        StageFailure
            When a ``fail``-policy stage exhausts its retries; the
            exception carries the partial ``report`` and ``state``
            plus any concurrent ``secondary`` failures.
        RunDeadlineExceeded
            When ``deadline`` expires first; also carries the
            partial ``report`` and ``state``.
        """
        if deadline is not None and float(deadline) <= 0:
            raise ValueError("deadline must be positive or None")
        stages = self._ordered_stages()
        if not stages:
            raise RuntimeError("pipeline has no stages")
        state = dict(initial_state or {})
        deps = _dag.resolve_dependencies(stages)
        report = _execute_run(self.title, stages, deps, state,
                              cache=cache, tracer=tracer,
                              max_workers=max_workers,
                              deadline=deadline,
                              copy_on_read=copy_on_read,
                              metrics=metrics, profile=profile,
                              executor=executor, run_id=run_id)
        return state, report

    def stream(self, initial_state=None, *, tracer=None,
               max_workers=None, copy_on_read=False, metrics=None,
               executor=None):
        """Open an :class:`~repro.core.streaming.IncrementalSession`.

        The session carries state and per-stage committed deltas
        across *ticks*: each ``session.tick(changed=..., deleted=...)``
        applies the mutations, computes the dirty downstream cone
        from the stages' declared contracts, replays every clean
        stage from its carried delta (deep-copy, tombstones included)
        and re-executes only the dirty ones.  Keyword arguments have
        :meth:`run` semantics and apply to every tick; per-tick
        ``deadline=`` / ``run_id=`` are passed to ``tick`` itself.
        See ``docs/STREAMING.md``.
        """
        from .streaming import IncrementalSession

        stages = self._ordered_stages()
        if not stages:
            raise RuntimeError("pipeline has no stages")
        return IncrementalSession(
            self, initial_state, tracer=tracer,
            max_workers=max_workers, copy_on_read=copy_on_read,
            metrics=metrics, executor=executor)
