"""Observability: structured run events and the tracer protocol.

The engine narrates a run as a stream of :class:`StageEvent` objects
— ``run_start``, ``stage_start``, ``stage_end``, ``stage_error``,
``stage_retry``, ``stage_skip``, ``stage_fallback``,
``stage_timeout``, ``stage_cancelled``, ``fault_injected``,
``cache_hit``, ``run_end`` — delivered to an opt-in *tracer*: any
object with an ``on_event(event)`` method (duck-typed; subclassing
is optional).  Tracer exceptions are swallowed so a broken observer
cannot take the pipeline down with it.

Two tracers ship with the library: :class:`CollectingTracer` buffers
events for inspection (tests, dashboards) and :class:`PrintTracer`
streams one line per event (live debugging).  A tracer that
additionally exposes an ``inject(stage_name, attempt)`` method is a
*tracer-hook*: the scheduler calls it at the top of every attempt,
and it may sleep or raise to perturb execution — see
:class:`repro.core.faults.FaultInjector`.
"""

from __future__ import annotations

import contextlib
import threading
import time

__all__ = [
    "EVENT_KINDS",
    "StageEvent",
    "Tracer",
    "CollectingTracer",
    "PrintTracer",
    "emit",
]

EVENT_KINDS = (
    "run_start",
    "stage_start",
    "stage_end",
    "stage_error",
    "stage_retry",
    "stage_skip",
    "stage_fallback",
    "stage_timeout",
    "stage_cancelled",
    "fault_injected",
    "cache_hit",
    "run_end",
)


class StageEvent:
    """One engine event: what happened, to which stage, when."""

    __slots__ = ("kind", "stage", "layer", "timestamp", "data")

    def __init__(self, kind, stage=None, layer=None, **data):
        if kind not in EVENT_KINDS:
            raise ValueError(
                f"kind must be one of {EVENT_KINDS}, got {kind!r}"
            )
        self.kind = kind
        self.stage = stage
        self.layer = layer
        self.timestamp = time.time()
        self.data = data

    def __repr__(self):
        where = f" {self.layer}/{self.stage}" if self.stage else ""
        extra = f" {self.data}" if self.data else ""
        return f"StageEvent({self.kind}{where}{extra})"


class Tracer:
    """The tracer protocol: override :meth:`on_event`.

    Any object with a compatible ``on_event`` works; this base class
    just documents the contract and provides a no-op default.
    """

    def on_event(self, event):  # pragma: no cover - trivial default
        pass


class CollectingTracer(Tracer):
    """Buffers every event; thread-safe."""

    def __init__(self):
        self.events = []
        self._lock = threading.Lock()

    def on_event(self, event):
        with self._lock:
            self.events.append(event)

    def kinds(self):
        """The event kinds seen, in arrival order."""
        with self._lock:
            return [event.kind for event in self.events]

    def of_kind(self, kind):
        with self._lock:
            return [event for event in self.events if event.kind == kind]


class PrintTracer(Tracer):
    """Streams one line per event to ``stream`` (default stdout)."""

    def __init__(self, stream=None):
        self._stream = stream

    def on_event(self, event):
        import sys

        stream = self._stream or sys.stdout
        where = f" {event.layer}/{event.stage}" if event.stage else ""
        extra = "".join(f" {k}={v}" for k, v in event.data.items())
        print(f"[{event.kind}]{where}{extra}", file=stream)


def emit(tracer, kind, stage=None, layer=None, **data):
    """Deliver an event to the tracer, swallowing observer errors."""
    if tracer is None:
        return
    with contextlib.suppress(Exception):
        tracer.on_event(StageEvent(kind, stage, layer, **data))
