"""Observability: structured run events and the tracer protocol.

The engine narrates a run as a stream of :class:`StageEvent` objects
— ``run_start``, ``stage_start``, ``stage_attempt``, ``stage_end``,
``stage_error``, ``stage_retry``, ``stage_skip``, ``stage_fallback``,
``stage_timeout``, ``stage_cancelled``, ``fault_injected``,
``cache_hit``, ``run_end`` — plus ``tick_start`` / ``tick_end``
bracketing each incremental tick of a streaming session (see
:mod:`repro.core.streaming`) — delivered to an opt-in *tracer*: any
object with an ``on_event(event)`` method (duck-typed; subclassing
is optional).  Tracer exceptions are swallowed so a broken observer
cannot take the pipeline down with it.

Threading contract: the scheduler runs contract-independent stages
on a thread pool, so ``on_event`` is called **concurrently from
multiple worker threads** and must be thread-safe.  Events for any
*single* stage arrive in program order (one thread executes a stage
at a time), but events from different stages interleave arbitrarily.
Every event carries both a wall-clock ``timestamp`` (``time.time``)
and a ``monotonic`` stamp (``time.perf_counter``) taken at emission,
so observers can order and measure without re-reading clocks.

Two tracers ship with the library: :class:`CollectingTracer` buffers
events for inspection (tests, dashboards; explicitly thread-safe —
its buffer and accessors are lock-protected) and :class:`PrintTracer`
streams one line per event (live debugging).
:class:`repro.observability.SpanTracer` folds the stream into a span
tree.  A tracer that additionally exposes an
``inject(stage_name, attempt)`` method is a *tracer-hook*: the
scheduler calls it at the top of every attempt, and it may sleep or
raise to perturb execution — see
:class:`repro.core.faults.FaultInjector`.
"""

from __future__ import annotations

import contextlib
import threading
import time

__all__ = [
    "EVENT_KINDS",
    "StageEvent",
    "Tracer",
    "CollectingTracer",
    "PrintTracer",
    "emit",
]

EVENT_KINDS = (
    "run_start",
    "stage_start",
    "stage_attempt",
    "stage_end",
    "stage_error",
    "stage_retry",
    "stage_skip",
    "stage_fallback",
    "stage_timeout",
    "stage_cancelled",
    "fault_injected",
    "cache_hit",
    "run_end",
    "tick_start",
    "tick_end",
)


class StageEvent:
    """One engine event: what happened, to which stage, when.

    ``timestamp`` is wall-clock (``time.time``) for human display;
    ``monotonic`` is ``time.perf_counter`` at emission, guaranteed
    non-decreasing across the process — span durations and ordering
    assertions are built on it.
    """

    __slots__ = ("kind", "stage", "layer", "timestamp", "monotonic",
                 "data")

    def __init__(self, kind, stage=None, layer=None, **data):
        if kind not in EVENT_KINDS:
            raise ValueError(
                f"kind must be one of {EVENT_KINDS}, got {kind!r}"
            )
        self.kind = kind
        self.stage = stage
        self.layer = layer
        self.timestamp = time.time()
        self.monotonic = time.perf_counter()
        self.data = data

    def to_dict(self):
        """The event as plain JSON-ready data.

        The wire form events travel in when they cross a process
        boundary (executor workers ship them back as dicts) or land
        in artifacts; :meth:`from_dict` round-trips it.
        """
        return {"kind": self.kind, "stage": self.stage,
                "layer": self.layer, "timestamp": self.timestamp,
                "monotonic": self.monotonic, "data": dict(self.data)}

    @classmethod
    def from_dict(cls, payload):
        """Rebuild an event from :meth:`to_dict` output, preserving
        the original emission timestamps."""
        event = cls(payload["kind"], payload.get("stage"),
                    payload.get("layer"), **dict(payload.get("data", {})))
        if "timestamp" in payload:
            event.timestamp = float(payload["timestamp"])
        if "monotonic" in payload:
            event.monotonic = float(payload["monotonic"])
        return event

    def __repr__(self):
        where = f" {self.layer}/{self.stage}" if self.stage else ""
        extra = f" {self.data}" if self.data else ""
        return f"StageEvent({self.kind}{where}{extra})"


class Tracer:
    """The tracer protocol: override :meth:`on_event`.

    Any object with a compatible ``on_event`` works; this base class
    just documents the contract and provides a no-op default.
    """

    def on_event(self, event):  # pragma: no cover - trivial default
        pass


class CollectingTracer(Tracer):
    """Buffers every event; explicitly thread-safe.

    ``on_event`` may be called concurrently from scheduler worker
    threads; the buffer append and every accessor hold the tracer's
    lock, so no event is ever lost or observed torn.  Forward targets
    attached with :meth:`forward_to` receive each event *after* it is
    buffered (outside the lock, errors swallowed per target) — the
    composition hook that lets a :class:`FaultInjector` and a
    :class:`~repro.observability.SpanTracer` observe one run
    together, including events the injector itself generates.
    """

    def __init__(self):
        self.events = []
        self._lock = threading.Lock()
        self._forward = []

    def __getstate__(self):
        """Pickle without the lock (buffered events ride along)."""
        with self._lock:
            state = self.__dict__.copy()
            state["events"] = list(self.events)
        state.pop("_lock", None)
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._lock = threading.Lock()

    def forward_to(self, *tracers):
        """Also deliver every event to ``tracers``; returns ``self``."""
        self._forward.extend(tracers)
        return self

    def on_event(self, event):
        with self._lock:
            self.events.append(event)
        for tracer in self._forward:
            with contextlib.suppress(Exception):
                tracer.on_event(event)

    def kinds(self):
        """The event kinds seen, in arrival order."""
        with self._lock:
            return [event.kind for event in self.events]

    def of_kind(self, kind):
        with self._lock:
            return [event for event in self.events if event.kind == kind]


class PrintTracer(Tracer):
    """Streams one line per event to ``stream`` (default stdout)."""

    def __init__(self, stream=None):
        self._stream = stream

    def on_event(self, event):
        import sys

        stream = self._stream or sys.stdout
        where = f" {event.layer}/{event.stage}" if event.stage else ""
        extra = "".join(f" {k}={v}" for k, v in event.data.items())
        print(f"[{event.kind}]{where}{extra}", file=stream)


def emit(tracer, kind, stage=None, layer=None, **data):
    """Deliver an event to the tracer, swallowing observer errors."""
    if tracer is None:
        return
    with contextlib.suppress(Exception):
        tracer.on_event(StageEvent(kind, stage, layer, **data))
