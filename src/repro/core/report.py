"""Structured reports for pipeline runs.

The paradigm of Figure 1 is a *process*; a run of it should leave an
audit trail — which governance steps ran, what the analytics produced,
what the decision was and why.  :class:`RunReport` is that trail: an
ordered list of stage records with a compact textual rendering.
"""

from __future__ import annotations

import time

__all__ = ["StageRecord", "RunReport"]


class StageRecord:
    """One pipeline stage's outcome."""

    def __init__(self, layer, name, summary, duration_seconds,
                 details=None):
        self.layer = str(layer)
        self.name = str(name)
        self.summary = str(summary)
        self.duration_seconds = float(duration_seconds)
        self.details = dict(details or {})

    def __repr__(self):
        return (
            f"StageRecord({self.layer}/{self.name}: {self.summary} "
            f"[{self.duration_seconds:.3f}s])"
        )


class RunReport:
    """Ordered record of one Data-Governance-Analytics-Decision run."""

    _LAYERS = ("data", "governance", "analytics", "decision")

    def __init__(self, title="pipeline run"):
        self.title = str(title)
        self.records = []
        self._started = time.perf_counter()

    def add(self, layer, name, summary, duration_seconds, **details):
        if layer not in self._LAYERS:
            raise ValueError(
                f"layer must be one of {self._LAYERS}, got {layer!r}"
            )
        record = StageRecord(layer, name, summary, duration_seconds,
                             details)
        self.records.append(record)
        return record

    def stages(self, layer=None):
        """Records, optionally filtered to one layer."""
        if layer is None:
            return list(self.records)
        return [r for r in self.records if r.layer == layer]

    @property
    def total_seconds(self):
        return sum(r.duration_seconds for r in self.records)

    def render(self):
        """Human-readable multi-line summary."""
        lines = [f"=== {self.title} ==="]
        for layer in self._LAYERS:
            records = self.stages(layer)
            if not records:
                continue
            lines.append(f"[{layer}]")
            for record in records:
                lines.append(
                    f"  {record.name}: {record.summary} "
                    f"({record.duration_seconds:.3f}s)"
                )
        lines.append(f"total stage time: {self.total_seconds:.3f}s")
        return "\n".join(lines)

    def __repr__(self):
        return f"RunReport(title={self.title!r}, stages={len(self.records)})"
