"""Structured reports for pipeline runs.

The paradigm of Figure 1 is a *process*; a run of it should leave an
audit trail — which governance steps ran, what the analytics produced,
what the decision was and why.  :class:`RunReport` is that trail: an
ordered list of stage records plus the engine's execution story — the
resolved DAG, per-stage status / retries / cache hits, and the three
timings that characterize a scheduled run:

* ``total_seconds`` — the sum of stage durations (sequential cost),
* ``wall_seconds`` — observed wall-clock time of the whole run,
* ``critical_path_seconds`` — the DAG's longest duration-weighted
  path, the lower bound with unlimited parallelism.
"""

from __future__ import annotations

import time

from .dag import critical_path_seconds as _critical_path

__all__ = ["StageRecord", "RunReport"]

_STATUSES = ("ok", "failed", "skipped", "fallback", "timed_out",
             "cancelled")


class StageRecord:
    """One pipeline stage's outcome."""

    def __init__(self, layer, name, summary, duration_seconds,
                 details=None, *, status="ok", retries=0,
                 cache_hit=False, error=None):
        if status not in _STATUSES:
            raise ValueError(
                f"status must be one of {_STATUSES}, got {status!r}"
            )
        self.layer = str(layer)
        self.name = str(name)
        self.summary = str(summary)
        self.duration_seconds = float(duration_seconds)
        self.details = dict(details or {})
        self.status = status
        self.retries = int(retries)
        self.cache_hit = bool(cache_hit)
        self.error = error

    def __repr__(self):
        flags = ""
        if self.cache_hit:
            flags += " cached"
        if self.status != "ok":
            flags += f" {self.status}"
        return (
            f"StageRecord({self.layer}/{self.name}: {self.summary} "
            f"[{self.duration_seconds:.3f}s{flags}])"
        )


class RunReport:
    """Ordered record of one Data-Governance-Analytics-Decision run."""

    _LAYERS = ("data", "governance", "analytics", "decision")

    def __init__(self, title="pipeline run"):
        self.title = str(title)
        self.records = []
        self.dag = []
        self.deadline_seconds = None
        self.profiles = {}
        self.run_id = None
        self._started = time.perf_counter()
        self._finished = None

    def add(self, layer, name, summary, duration_seconds, *,
            status="ok", retries=0, cache_hit=False, error=None,
            **details):
        if layer not in self._LAYERS:
            raise ValueError(
                f"layer must be one of {self._LAYERS}, got {layer!r}"
            )
        record = StageRecord(layer, name, summary, duration_seconds,
                             details, status=status, retries=retries,
                             cache_hit=cache_hit, error=error)
        self.records.append(record)
        return record

    def set_dag(self, edges):
        """Record the resolved DAG as ``(stage, (dep, ...))`` pairs."""
        self.dag = [(str(name), tuple(deps)) for name, deps in edges]

    def set_deadline(self, seconds):
        """Record the run-level deadline budget (``None`` = none)."""
        self.deadline_seconds = (None if seconds is None
                                 else float(seconds))

    def set_profiles(self, profiles):
        """Attach per-stage profiling data (``run(profile=True)``).

        ``profiles`` maps stage name to the plain dict produced by
        :meth:`~repro.observability.RunProfiler.profiles`: wall/CPU
        seconds, queue wait and tracemalloc deltas.
        """
        self.profiles = {str(name): dict(data)
                         for name, data in dict(profiles).items()}

    def profile(self, name):
        """The named stage's profile dict (requires ``profile=True``)."""
        try:
            return self.profiles[name]
        except KeyError:
            raise KeyError(
                f"no profile for stage {name!r}; was the run made "
                "with profile=True?") from None

    @property
    def deadline_remaining_seconds(self):
        """Budget left at ``finish()`` time (``None`` without deadline)."""
        if self.deadline_seconds is None:
            return None
        return self.deadline_seconds - self.wall_seconds

    def finish(self):
        """Freeze the wall clock; called by the engine at run end."""
        self._finished = time.perf_counter()
        return self

    def stages(self, layer=None):
        """Records, optionally filtered to one layer."""
        if layer is None:
            return list(self.records)
        return [r for r in self.records if r.layer == layer]

    def record(self, name):
        """The record of the named stage (first match)."""
        for r in self.records:
            if r.name == name:
                return r
        raise KeyError(f"no record for stage {name!r}")

    def status_map(self):
        """``{stage name: status}`` over the recorded stages.

        The compact equivalence surface the executor-backend tests
        compare: two runs of the same pipeline agree iff their status
        maps (and final states) agree, regardless of record order,
        timings or backend.
        """
        return {r.name: r.status for r in self.records}

    # -- timings -------------------------------------------------------------

    @property
    def total_seconds(self):
        """Summed stage durations — what a sequential run would cost."""
        return sum(r.duration_seconds for r in self.records)

    @property
    def wall_seconds(self):
        """Observed wall-clock time from construction to ``finish()``."""
        end = self._finished
        if end is None:
            end = time.perf_counter()
        return end - self._started

    @property
    def critical_path_seconds(self):
        """Longest duration-weighted path through the recorded DAG."""
        if not self.dag:
            return self.total_seconds
        index = {name: i for i, (name, _) in enumerate(self.dag)}
        durations = [0.0] * len(self.dag)
        for r in self.records:
            if r.name in index:
                durations[index[r.name]] = r.duration_seconds
        deps = [
            {index[d] for d in dep_names if d in index}
            for _, dep_names in self.dag
        ]
        return _critical_path(durations, deps)

    # -- engine counters -----------------------------------------------------

    @property
    def cache_hits(self):
        return sum(1 for r in self.records if r.cache_hit)

    @property
    def total_retries(self):
        return sum(r.retries for r in self.records)

    @property
    def timed_out_count(self):
        return sum(1 for r in self.records if r.status == "timed_out")

    @property
    def cancelled_count(self):
        return sum(1 for r in self.records if r.status == "cancelled")

    def render(self):
        """Human-readable multi-line summary."""
        lines = [f"=== {self.title} ==="]
        for layer in self._LAYERS:
            records = self.stages(layer)
            if not records:
                continue
            lines.append(f"[{layer}]")
            for record in records:
                flags = []
                if record.cache_hit:
                    flags.append("cached")
                if record.retries:
                    flags.append(f"{record.retries} retries")
                if record.status != "ok":
                    flags.append(record.status)
                suffix = f" [{', '.join(flags)}]" if flags else ""
                lines.append(
                    f"  {record.name}: {record.summary} "
                    f"({record.duration_seconds:.3f}s){suffix}"
                )
        lines.append(
            f"total stage time: {self.total_seconds:.3f}s | "
            f"wall clock: {self.wall_seconds:.3f}s | "
            f"critical path: {self.critical_path_seconds:.3f}s"
        )
        if self.deadline_seconds is not None:
            lines.append(
                f"deadline: {self.deadline_seconds:.3f}s | "
                f"remaining: {self.deadline_remaining_seconds:.3f}s"
            )
        if self.cache_hits or self.total_retries:
            lines.append(
                f"cache hits: {self.cache_hits} | "
                f"retries: {self.total_retries}"
            )
        if self.timed_out_count or self.cancelled_count:
            lines.append(
                f"timed out: {self.timed_out_count} | "
                f"cancelled: {self.cancelled_count}"
            )
        if self.profiles:
            lines.append("profile (wall / cpu / queue-wait / net alloc):")
            for name, p in self.profiles.items():
                lines.append(
                    f"  {name}: {p['wall_seconds']:.3f}s / "
                    f"{p['cpu_seconds']:.3f}s / "
                    f"{p['queue_wait_seconds']:.3f}s / "
                    f"{p['net_alloc_bytes'] / 1024:.1f} KiB "
                    f"(peak {p['peak_alloc_bytes'] / 1024:.1f} KiB)"
                )
        return "\n".join(lines)

    def __repr__(self):
        return f"RunReport(title={self.title!r}, stages={len(self.records)})"
