"""Content-keyed stage-result cache.

A stage's cache key is a digest of everything that determines its
output: its name and layer, a fingerprint of its function's code and
closure, its declared contract, the cache keys of its *data*
dependencies (recursively, so the key encodes the whole upstream
cone), and a content fingerprint of any read keys that come straight
from the initial state.

That construction gives the reuse the E1 ablation needs for free:
removing a stage with :meth:`DecisionPipeline.without_stage` leaves
the keys of every stage outside the removed stage's downstream cone
unchanged, so a rerun against the same :class:`StageCache` replays
those stages from their stored state deltas and only re-executes the
cone.

Only stages with *declared* contracts participate — a wildcard stage
has no enumerable inputs to fingerprint, and anything data-dependent
on an uncacheable stage is itself uncacheable.  Values that resist
fingerprinting (unpicklable objects without a stable byte form)
silently exclude the stage from caching rather than risking a stale
hit.

A stored delta is the stage's full transactional outcome: the values
it committed *and* the keys it deleted (tombstones), so a cached
replay reproduces deletions exactly like a live run.  Deltas are
deep-copied on store and again on replay — a later stage mutating a
replayed numpy array or dict in place can therefore never corrupt
the cached copy for future runs.  A value that cannot be deep-copied
demotes its stage to uncacheable instead of being shared by
reference.

Function fingerprints are *structural*: nested code objects (inner
lambdas, comprehensions, local functions) are recursed into and
hashed by their bytecode, names and constants — never by ``repr``,
which embeds memory addresses and made structurally identical
functions compiled separately (or in separate processes) hash
differently.
"""

from __future__ import annotations

import copy
import hashlib
import pickle
import threading
import types

from . import dag as _dag
from .stage import ANY

__all__ = ["StageCache", "Unfingerprintable", "fingerprint", "stage_keys"]

_ABSENT = "<absent>"


class Unfingerprintable(TypeError):
    """A value has no stable content fingerprint; skip caching."""


def _item_digests(pairs, depth):
    """Order-independent digesting: hash each item alone, sort digests.

    Used for dicts with unsortable keys and for sets, where iteration
    order is arbitrary and ``repr``-keyed sorting is address-dependent
    for plain objects.
    """
    digests = []
    for pair in pairs:
        digest = hashlib.sha256()
        for value in pair:
            _update(digest, value, depth)
        digests.append(digest.digest())
    return sorted(digests)


def _update(digest, value, _depth=0):
    if _depth > 16:
        raise Unfingerprintable("fingerprint recursion too deep")
    # numpy arrays: dtype + shape + raw bytes, no pickling overhead.
    tobytes = getattr(value, "tobytes", None)
    dtype = getattr(value, "dtype", None)
    if callable(tobytes) and dtype is not None:
        digest.update(b"ndarray")
        digest.update(str(dtype).encode())
        digest.update(repr(getattr(value, "shape", ())).encode())
        digest.update(value.tobytes())
        return
    if value is None or isinstance(value, (bool, int, float, complex,
                                           str)):
        digest.update(type(value).__name__.encode())
        digest.update(repr(value).encode())
        return
    if isinstance(value, (bytes, bytearray)):
        digest.update(b"bytes")
        digest.update(bytes(value))
        return
    if isinstance(value, (list, tuple)):
        digest.update(type(value).__name__.encode())
        for item in value:
            _update(digest, item, _depth + 1)
        return
    if isinstance(value, dict):
        digest.update(b"dict")
        try:
            items = sorted(value.items())
        except TypeError:
            # Unsortable keys: per-item digests, sorted, so the hash
            # is independent of insertion order.
            for item_digest in _item_digests(value.items(), _depth + 1):
                digest.update(item_digest)
            return
        for key, item in items:
            _update(digest, key, _depth + 1)
            _update(digest, item, _depth + 1)
        return
    if isinstance(value, (set, frozenset)):
        digest.update(b"set")
        for item_digest in _item_digests(((item,) for item in value),
                                         _depth + 1):
            digest.update(item_digest)
        return
    if isinstance(value, types.CodeType):
        _update_code(digest, value, _depth + 1)
        return
    # Arbitrary objects: pickle is content-stable for the numpy-backed
    # datatypes this library passes between stages.
    try:
        digest.update(b"pickle")
        digest.update(pickle.dumps(value, protocol=4))
    except Exception as exc:
        raise Unfingerprintable(
            f"cannot fingerprint {type(value).__name__}"
        ) from exc


def _update_code(digest, code, _depth=0):
    """Structural digest of a code object.

    Hashes bytecode, names and constants, recursing into nested code
    objects (lambdas, comprehensions, local defs).  ``repr`` of a
    code object embeds its memory address, so it must never reach the
    digest — two separately compiled but identical functions have to
    share a fingerprint, within a process and across processes.
    """
    if _depth > 16:
        raise Unfingerprintable("code fingerprint recursion too deep")
    digest.update(b"code")
    digest.update(code.co_code)
    for names in (code.co_names, code.co_varnames, code.co_freevars,
                  code.co_cellvars):
        digest.update(repr(names).encode())
    digest.update(repr((code.co_argcount, code.co_kwonlyargcount,
                        code.co_flags)).encode())
    for const in code.co_consts:
        if isinstance(const, types.CodeType):
            _update_code(digest, const, _depth + 1)
        else:
            _update(digest, const, _depth + 1)


def fingerprint(value):
    """Hex digest of a value's content; raises :class:`Unfingerprintable`."""
    digest = hashlib.sha256()
    _update(digest, value)
    return digest.hexdigest()


def _function_fingerprint(function):
    """Digest of a callable's behavior: code, constants and closure."""
    digest = hashlib.sha256()
    code = getattr(function, "__code__", None)
    if code is not None:
        _update_code(digest, code)
        closure = getattr(function, "__closure__", None) or ()
        for cell in closure:
            _update(digest, cell.cell_contents)
        defaults = getattr(function, "__defaults__", None) or ()
        for value in defaults:
            _update(digest, value)
        return digest.hexdigest()
    # Callable objects / builtins: pickle or give up.
    _update(digest, function)
    return digest.hexdigest()


def stage_keys(stages, deps, initial_state):
    """Per-stage cache keys, ``None`` where the stage is uncacheable.

    Must be called with the run's *initial* state, before any stage
    mutates it — external reads are fingerprinted from it.
    """
    data_deps = _dag.data_dependencies(stages, deps)
    keys = []
    for j, stage in enumerate(stages):
        if stage.reads is ANY or stage.writes is ANY:
            keys.append(None)
            continue
        upstream = [keys[i] for i in sorted(data_deps[j])]
        if any(key is None for key in upstream):
            keys.append(None)
            continue
        digest = hashlib.sha256()
        digest.update(stage.layer.encode())
        digest.update(stage.name.encode())
        digest.update(repr(sorted(stage.reads)).encode())
        digest.update(repr(sorted(stage.writes)).encode())
        for key in upstream:
            digest.update(key.encode())
        try:
            digest.update(_function_fingerprint(stage.function).encode())
            for read in sorted(_dag.external_reads(stages, deps, j)):
                digest.update(read.encode())
                value = initial_state.get(read, _ABSENT)
                digest.update(fingerprint(value).encode())
        except Unfingerprintable:
            keys.append(None)
            continue
        keys.append(digest.hexdigest())
    return keys


class CacheEntry:
    """A stored stage outcome: summary, details, state delta, tombstones."""

    __slots__ = ("summary", "details", "delta", "deleted")

    def __init__(self, summary, details, delta, deleted=()):
        self.summary = summary
        self.details = dict(details)
        self.delta = dict(delta)
        self.deleted = frozenset(deleted)

    def snapshot(self):
        """A replay-safe ``(delta, deleted)`` pair.

        The delta is deep-copied so downstream stages mutating a
        replayed value in place cannot reach back into the cache.
        """
        return copy.deepcopy(self.delta), self.deleted


class StageCache:
    """Thread-safe in-memory store of stage results across runs.

    Pass one instance to several :meth:`DecisionPipeline.run` calls
    (including runs of ``without_stage`` copies) to reuse results
    whose whole upstream cone is unchanged.

    Every lookup publishes an ``engine.stage_cache_lookups_total``
    counter sample (labeled ``outcome=hit|miss``) and the entry count
    is mirrored to the ``engine.stage_cache_entries`` gauge in the
    process-global :class:`~repro.observability.MetricsRegistry`, so
    hit rates are visible without holding a reference to the cache.
    """

    def __init__(self):
        self._entries = {}
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def __getstate__(self):
        """Pickle without the lock; entries (plain data) ride along,
        so a warm cache can ship to another process intact."""
        with self._lock:
            state = self.__dict__.copy()
            state["_entries"] = dict(self._entries)
        state.pop("_lock", None)
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._lock = threading.Lock()

    @staticmethod
    def _metrics():
        from ..observability.metrics import get_registry

        return get_registry()

    def get(self, key):
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
            else:
                self.hits += 1
        self._metrics().counter(
            "engine.stage_cache_lookups_total",
            "StageCache lookups by outcome").inc(
                outcome="miss" if entry is None else "hit")
        return entry

    def store(self, key, summary, details, delta, deleted=()):
        """Store an outcome; returns False (and stores nothing) when
        the delta cannot be deep-copied — such a value would be shared
        by reference across runs and poisoned by the first in-place
        mutation, so the stage is demoted to uncacheable instead."""
        try:
            delta = copy.deepcopy(dict(delta))
        except Exception:
            return False
        with self._lock:
            self._entries[key] = CacheEntry(summary, details, delta,
                                            deleted)
            size = len(self._entries)
        self._metrics().gauge(
            "engine.stage_cache_entries",
            "Entries currently stored in the StageCache").set(size)
        return True

    def entry(self, key):
        """Fetch an entry without touching hit/miss counters.

        The bookkeeping accessor streaming sessions use to harvest a
        tick's committed deltas — those reads are not cache *lookups*
        in the replay sense and must not skew the hit-rate metrics
        :meth:`get` publishes.
        """
        with self._lock:
            return self._entries.get(key)

    def adopt(self, key, entry):
        """Install an existing :class:`CacheEntry` under ``key``.

        Unlike :meth:`store` this does *not* deep-copy the delta: the
        entry is adopted by reference.  Callers own the aliasing —
        the streaming session uses this to republish a prior tick's
        entry (whose delta is only ever handed out through the
        deep-copying :meth:`CacheEntry.snapshot`) under a fresh
        replay key without paying a second copy.
        """
        if not isinstance(entry, CacheEntry):
            raise TypeError(
                f"expected CacheEntry, got {type(entry).__name__}")
        with self._lock:
            self._entries[key] = entry
            size = len(self._entries)
        self._metrics().gauge(
            "engine.stage_cache_entries",
            "Entries currently stored in the StageCache").set(size)

    def merge(self, other):
        """Fold another cache's entries into this one.

        Content keys are process-independent by construction — the
        function fingerprint is structural (bytecode, names,
        constants), never address-based — so entries computed in a
        worker process or by a different run of the same pipeline are
        valid here verbatim.  On key collision the existing entry
        wins: two caches can only disagree about a key's value if one
        of them is corrupt, and the local one is the devil we know.
        Returns the number of entries added.
        """
        if isinstance(other, StageCache):
            with other._lock:
                entries = dict(other._entries)
        else:
            entries = dict(other)
        added = 0
        with self._lock:
            for key, entry in entries.items():
                if not isinstance(entry, CacheEntry):
                    raise TypeError(
                        f"cache entry for key {key!r} is "
                        f"{type(entry).__name__}, not CacheEntry")
                if key not in self._entries:
                    self._entries[key] = entry
                    added += 1
            size = len(self._entries)
        self._metrics().gauge(
            "engine.stage_cache_entries",
            "Entries currently stored in the StageCache").set(size)
        return added

    def clear(self):
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0

    def __len__(self):
        with self._lock:
            return len(self._entries)

    def __repr__(self):
        return (f"StageCache(entries={len(self)}, hits={self.hits}, "
                f"misses={self.misses})")
