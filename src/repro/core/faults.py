"""Deterministic fault injection for exercising the engine's guarantees.

Robustness claims are only as good as the failures they have been
tested against.  :class:`FaultInjector` is a *tracer-hook*: it is a
full :class:`~repro.core.events.CollectingTracer` (pass it as
``tracer=``), and the scheduler additionally calls its
:meth:`inject` method at the top of every stage attempt.  Injection
plans are per-stage FIFO queues, so a test can script an exact
failure trajectory — "fail twice, then succeed", "sleep past the
timeout on the first attempt" — and the run replays it
deterministically, no monkey-patching or wall-clock racing required.

Three fault kinds cover the engine's failure surface:

* :meth:`fail` raises an exception (exercises retries, backoff and
  the ``on_error`` policies),
* :meth:`delay` sleeps before the stage function runs (exercises
  per-stage ``timeout`` and run ``deadline`` enforcement),
* :meth:`timeout` raises :class:`~repro.core.stage.StageTimeout`
  directly (a hung stage, without spending real wall clock).

Every injection is recorded as a ``fault_injected`` event in the
tracer's buffer, interleaved with the engine's own events, so a test
can assert the exact sequence of what was injected and how the
engine responded.
"""

from __future__ import annotations

import hashlib
import threading
import time

from .events import CollectingTracer, StageEvent
from .stage import StageTimeout

__all__ = ["FaultInjector", "attempt_seed", "attempt_jitter"]


def attempt_seed(run_id, stage, attempt):
    """Deterministic 64-bit seed for one (run_id, stage, attempt).

    sha256-based so the value is identical across processes and
    interpreter launches — ``hash()`` is salted per process
    (``PYTHONHASHSEED``) and would make process workers disagree with
    the parent.  This is what keeps jittered backoff and jittered
    fault delays reproducible under every executor backend.
    """
    token = f"{run_id}\x1f{stage}\x1f{int(attempt)}".encode()
    return int.from_bytes(hashlib.sha256(token).digest()[:8], "big")


def attempt_jitter(run_id, stage, attempt, low=0.5, high=1.0):
    """Deterministic jitter factor in ``[low, high)`` for one attempt.

    Replaces ``random.random()`` in retry backoff: reruns of the same
    ``run_id`` back off identically, on any backend, in any process.
    """
    unit = attempt_seed(run_id, stage, attempt) / 2.0 ** 64
    return low + (high - low) * unit


class FaultInjector(CollectingTracer):
    """Scripted faults for named stages; also a collecting tracer.

    >>> faults = (FaultInjector()
    ...           .fail("impute", times=2)
    ...           .delay("forecast", 0.2))
    >>> pipeline.run(tracer=faults)          # doctest: +SKIP

    Each plan entry fires once per attempt, in the order scheduled;
    when a stage's queue is empty the stage runs untouched.
    """

    def __init__(self):
        super().__init__()
        self._plans = {}
        self._plans_lock = threading.Lock()
        self.injected = 0
        self.run_id = ""

    def __getstate__(self):
        """Pickle without either lock; pending plans ride along so a
        scripted injector can ship to a worker process intact."""
        state = super().__getstate__()
        with self._plans_lock:
            state["_plans"] = {stage: list(queue) for stage, queue
                               in self._plans.items()}
        state.pop("_plans_lock", None)
        return state

    def __setstate__(self, state):
        super().__setstate__(state)
        self._plans_lock = threading.Lock()

    def on_event(self, event):
        # Capture the run's identity from the run_start event so
        # jittered delays can seed from (run_id, stage, attempt).
        if event.kind == "run_start":
            self.run_id = event.data.get("run_id", self.run_id)
        super().on_event(event)

    # -- scheduling ----------------------------------------------------------

    def _schedule(self, stage, kind, payload, times):
        times = int(times)
        if times < 1:
            raise ValueError("times must be >= 1")
        with self._plans_lock:
            queue = self._plans.setdefault(str(stage), [])
            queue.extend((kind, payload) for _ in range(times))
        return self

    def fail(self, stage, times=1, exc=None):
        """Raise ``exc`` (default ``RuntimeError``) on the next
        ``times`` attempts of the named stage."""
        if exc is None:
            exc = RuntimeError(f"injected fault in stage {stage!r}")
        if not isinstance(exc, BaseException):
            raise TypeError("exc must be an exception instance")
        return self._schedule(stage, "fail", exc, times)

    def delay(self, stage, seconds, times=1, jitter=0.0):
        """Sleep ``seconds`` before the next ``times`` attempts —
        the deterministic way to trip a stage ``timeout`` or a run
        ``deadline``.  ``jitter`` adds up to that many extra seconds,
        derived from :func:`attempt_seed` over
        (run_id, stage, attempt) — never from process-local RNG state,
        so the same run_id replays the same delays on every backend.
        """
        seconds = float(seconds)
        jitter = float(jitter)
        if seconds < 0:
            raise ValueError("seconds must be >= 0")
        if jitter < 0:
            raise ValueError("jitter must be >= 0")
        return self._schedule(stage, "delay", (seconds, jitter), times)

    def timeout(self, stage, times=1):
        """Make the next ``times`` attempts time out instantly, as if
        the stage hung past its budget."""
        return self._schedule(stage, "timeout", None, times)

    def pending(self, stage=None):
        """Faults not yet consumed (for the stage, or in total)."""
        with self._plans_lock:
            if stage is not None:
                return len(self._plans.get(str(stage), ()))
            return sum(len(q) for q in self._plans.values())

    # -- the tracer-hook the scheduler calls ---------------------------------

    def inject(self, stage_name, attempt):
        """Consume and execute the next planned fault, if any.

        Called by the scheduler at the top of every attempt; raising
        here is exactly like the stage function raising.
        """
        with self._plans_lock:
            queue = self._plans.get(stage_name)
            if not queue:
                return
            kind, payload = queue.pop(0)
            self.injected += 1
        from ..observability.metrics import get_registry

        get_registry().counter(
            "engine.faults_injected_total",
            "Faults injected into stage attempts by kind").inc(
                stage=stage_name, kind=kind)
        self.on_event(StageEvent("fault_injected", stage_name,
                                 fault=kind, attempt=attempt))
        if kind == "fail":
            raise payload
        if kind == "delay":
            base, spread = payload
            pause = base
            if spread:
                pause += spread * attempt_jitter(self.run_id,
                                                 stage_name, attempt,
                                                 low=0.0, high=1.0)
            time.sleep(pause)
            return
        if kind == "timeout":
            raise StageTimeout(stage_name, 0.0)
