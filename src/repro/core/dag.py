"""Dependency resolution: stage contracts -> an execution DAG.

Stages are ordered layer-major (data, governance, analytics,
decision; insertion order within a layer), and a stage depends on an
*earlier* stage whenever their contracts can touch a common key:

* read-after-write — the earlier stage writes a key this one reads,
* write-after-read — this one overwrites a key the earlier one reads,
* write-after-write — both write the same key.

Because edges only ever point backwards in layer-major order, the
result is a DAG by construction and cross-layer ordering is
preserved wherever contracts actually interact: a decision stage can
never observe a governance key before the governance stage that
produces it has run.  Wildcard (undeclared) contracts conflict with
everything, so legacy pipelines resolve to a chain — the old
sequential semantics, unchanged.
"""

from __future__ import annotations

from .stage import ANY, contracts_overlap

__all__ = [
    "Frontier",
    "resolve_dependencies",
    "data_dependencies",
    "external_reads",
    "is_chain",
    "critical_path_seconds",
]


def resolve_dependencies(stages):
    """Per-stage dependency index sets over the layer-major order.

    Returns a list ``deps`` where ``deps[j]`` is the set of indices
    ``i < j`` that stage ``j`` must wait for.
    """
    deps = [set() for _ in stages]
    for j, later in enumerate(stages):
        for i in range(j):
            earlier = stages[i]
            if (contracts_overlap(earlier.writes, later.reads)
                    or contracts_overlap(earlier.reads, later.writes)
                    or contracts_overlap(earlier.writes, later.writes)):
                deps[j].add(i)
    return deps


def data_dependencies(stages, deps):
    """The subset of ``deps`` that actually feeds each stage's inputs.

    Anti- (write-after-read) and output- (write-after-write) edges
    order execution but do not change what a stage *consumes*, so the
    cache keys stages on read-after-write edges only: ``i`` is a data
    dependency of ``j`` iff ``i in deps[j]`` and ``i`` writes a key
    ``j`` reads.
    """
    data_deps = []
    for j, stage in enumerate(stages):
        data_deps.append({
            i for i in deps[j]
            if contracts_overlap(stages[i].writes, stage.reads)
        })
    return data_deps


def external_reads(stages, deps, index):
    """Read keys of stage ``index`` not written by any dependency.

    These keys come from the run's initial state; the cache
    fingerprints their values.  Only meaningful for stages with
    declared reads.
    """
    stage = stages[index]
    if stage.reads is ANY:
        raise ValueError("external_reads requires declared reads")
    provided = set()
    for i in deps[index]:
        if stages[i].writes is not ANY:
            provided |= stages[i].writes
    return frozenset(stage.reads - provided)


def is_chain(deps):
    """Whether the DAG forces strictly sequential execution.

    True when every stage depends on its immediate predecessor —
    the shape every legacy (wildcard-contract) pipeline resolves to.
    The scheduler then skips the thread pool entirely.
    """
    return all(j - 1 in deps[j] for j in range(1, len(deps)))


class Frontier:
    """Ready-queue bookkeeping over a resolved DAG.

    Tracks which stages are runnable (every dependency finished),
    which have been *claimed* for execution, and which never started.
    Pure DAG mechanics — no threads, pools, futures or locks — so any
    execution backend drives an instance the same way; the caller
    serializes access (the scheduler touches it only from its
    completion loop).
    """

    def __init__(self, deps):
        self._remaining = [len(d) for d in deps]
        self._dependents = [[] for _ in deps]
        for j, dep_set in enumerate(deps):
            for i in dep_set:
                self._dependents[i].append(j)
        self._claimed = set()

    def take_ready(self):
        """Claim and return every currently runnable, unclaimed index."""
        ready = [i for i, left in enumerate(self._remaining)
                 if left == 0 and i not in self._claimed]
        self._claimed.update(ready)
        return ready

    def claim(self, index):
        """Mark one index as handed to the backend for execution."""
        self._claimed.add(index)

    def complete(self, index):
        """Mark a claimed index finished; return the dependents it
        made runnable (unclaimed — the caller claims those it actually
        submits, so an aborting run leaves them for
        :meth:`unstarted`)."""
        unblocked = []
        for j in self._dependents[index]:
            self._remaining[j] -= 1
            if self._remaining[j] == 0 and j not in self._claimed:
                unblocked.append(j)
        return unblocked

    def unstarted(self):
        """Indices never claimed — recorded as cancelled on abort."""
        return [i for i in range(len(self._remaining))
                if i not in self._claimed]


def critical_path_seconds(durations, deps):
    """Length of the longest duration-weighted path through the DAG.

    The lower bound on wall-clock time with unlimited parallelism;
    the report contrasts it with the observed wall clock and the
    sequential sum.
    """
    longest = [0.0] * len(durations)
    for j in range(len(durations)):
        upstream = max((longest[i] for i in deps[j]), default=0.0)
        longest[j] = upstream + float(durations[j])
    return max(longest, default=0.0)
