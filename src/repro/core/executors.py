"""Pluggable execution backends: where stage attempts actually run.

The scheduler (:mod:`repro.core.scheduler`) decides *when* a stage may
run; an :class:`Executor` decides *where*.  Three backends ship:

* :class:`ThreadExecutor` — the default: contract-independent stages
  fan out over a thread pool.  Right for I/O-bound and GIL-releasing
  (large-numpy) stages; pure-Python CPU work serializes on the GIL.
* :class:`ProcessExecutor` — stage attempts run in worker *processes*,
  so CPU-bound Python stages scale with cores.  Stage inputs ship by
  value, except large contiguous ndarrays, which cross zero-copy
  through ``multiprocessing.shared_memory`` segments negotiated from
  the stage's declared ``reads``/``writes`` contract.
* :class:`SerialExecutor` — everything inline in the calling thread,
  in deterministic topological order.  The debugging backend: plain
  stack traces, no pools, no interleaving.

Select one per run with ``DecisionPipeline.run(executor=...)`` — an
instance, a name (``"serial"`` / ``"thread"`` / ``"process"``), or
nothing, in which case the ``REPRO_EXECUTOR`` environment variable
decides (default ``"thread"``).

The process boundary and the Stage contract
-------------------------------------------

``ProcessExecutor`` preserves the engine's transactional semantics:
the worker buffers every write in a contract-enforcing view exactly
like an in-process attempt, and only a *successful* attempt's delta
travels back to the parent, where it is committed atomically under
the run lock.  A failed / timed-out / cancelled worker attempt ships
back a structured error instead and commits nothing.

Not every stage can cross the boundary:

* the stage function must be picklable — module-level ``def``s are,
  lambdas and locally defined closures are not (the static analyzer
  flags these at lint time as rule RC022);
* the contract must be *declared* on both sides, because the declared
  ``reads``/``writes`` are how the executor knows which state entries
  to ship.

Stages that fail this pre-flight run in-process (the parent) by
default, recorded in the ``engine.executor_local_stages_total``
metric; construct ``ProcessExecutor(on_unpicklable="error")`` to get
the pre-flight failure as a hard :class:`ExecutorError` naming the
stage instead.

Worker-side telemetry is not lost: each attempt runs against a fresh
worker :class:`~repro.observability.MetricsRegistry` whose snapshot
(and any worker-emitted events) is shipped back with the result and
merged into the parent registry, so ``engine.*`` series — contract
violations included — stay complete, and the parent-side runner still
emits every lifecycle event, so :class:`~repro.observability.SpanTracer`
trees are identical across backends.
"""

from __future__ import annotations

import collections
import os
import pickle
import threading
import time
import traceback
from concurrent.futures import Future, ThreadPoolExecutor

from .stage import ContractViolation, StageCancelled, StageTimeout, _ContractView

__all__ = [
    "Executor",
    "ExecutorError",
    "ProcessExecutor",
    "RemoteStageError",
    "SerialExecutor",
    "ThreadExecutor",
    "default_process_executor",
    "resolve_executor",
]

#: ndarray inputs at least this many bytes go through shared memory
#: instead of the pickle channel (one copy into the segment per run
#: per key, then zero-copy for every stage that reads the key).
SHARE_MIN_BYTES = 1 << 16

#: How often the parent polls a worker future, so run-level
#: cancellation can abandon a doomed attempt without waiting for it.
_POLL_SECONDS = 0.05


class ExecutorError(RuntimeError):
    """A stage cannot run on the selected backend (pre-flight or
    transport failure), with the reason spelled out."""


class RemoteStageError(RuntimeError):
    """A stage attempt raised in a worker process.

    The original exception type often cannot be reconstructed
    faithfully across the boundary, so the failure travels as this
    wrapper carrying ``original_type`` (qualified name) and
    ``remote_traceback`` (formatted worker-side traceback).  Retries
    and ``on_error`` policies treat it exactly like the original
    in-process exception.
    """

    def __init__(self, original_type, message, remote_traceback=None):
        super().__init__(f"{original_type}: {message}")
        self.original_type = str(original_type)
        self.remote_traceback = remote_traceback


# ---------------------------------------------------------------------------
# Shared-memory handoff
# ---------------------------------------------------------------------------

#: Picklable reference to a parent-owned shared-memory ndarray.
ShmHandle = collections.namedtuple("ShmHandle", "name dtype shape")

#: The slice of a Stage a worker-side contract view needs.  A plain
#: namedtuple so it pickles by value on every start method.
StageSpec = collections.namedtuple("StageSpec",
                                   "name reads writes timeout")


def _shareable(value):
    """Whether a state value qualifies for shared-memory handoff."""
    import numpy as np

    return (isinstance(value, np.ndarray)
            and value.dtype != object
            and value.nbytes >= SHARE_MIN_BYTES
            and value.flags["C_CONTIGUOUS"])


class _ShmArena:
    """Parent-owned shared-memory segments, one per shared state key.

    A segment is created (and the array copied in) the first time a
    key's current value is shared, then reused by every later stage of
    the run that reads the same object — the arena re-shares only when
    the key has been rebound to a different array.  ``close()`` at run
    end closes and unlinks everything.
    """

    def __init__(self):
        self._segments = {}  # key -> (value, SharedMemory, ShmHandle)
        self._lock = threading.Lock()  # noqa: RC034 -- parent-side shm bookkeeping; never pickled
        self.shared_bytes = 0

    def share(self, key, value):
        """A :class:`ShmHandle` for ``value``, creating the segment
        on first use; the caller has checked :func:`_shareable`."""
        import numpy as np
        from multiprocessing import shared_memory

        with self._lock:
            entry = self._segments.get(key)
            if entry is not None and entry[0] is value:
                return entry[2]
            segment = shared_memory.SharedMemory(create=True,
                                                 size=value.nbytes)
            mirror = np.ndarray(value.shape, dtype=value.dtype,
                                buffer=segment.buf)
            mirror[...] = value
            handle = ShmHandle(segment.name, str(value.dtype),
                               value.shape)
            if entry is not None:
                self._destroy(entry[1])
            self._segments[key] = (value, segment, handle)
            self.shared_bytes += value.nbytes
            return handle

    @staticmethod
    def _destroy(segment):
        for closer in (segment.close, segment.unlink):
            try:
                closer()
            except (OSError, FileNotFoundError):
                pass

    def close(self):
        with self._lock:
            for _, segment, _ in self._segments.values():
                self._destroy(segment)
            self._segments.clear()

    def __len__(self):
        with self._lock:
            return len(self._segments)


def _attach(handle):
    """Worker side: (read-only ndarray, segment) for a handle."""
    import numpy as np
    from multiprocessing import shared_memory

    segment = shared_memory.SharedMemory(name=handle.name)
    try:
        # The parent owns the segment's lifecycle; without this the
        # worker's resource tracker "helpfully" unlinks it at worker
        # exit (cpython#82300) and later attaches fail.
        from multiprocessing import resource_tracker

        resource_tracker.unregister(segment._name, "shared_memory")
    except Exception:
        pass
    array = np.ndarray(handle.shape, dtype=np.dtype(handle.dtype),
                       buffer=segment.buf)
    array.flags.writeable = False
    return array, segment


# ---------------------------------------------------------------------------
# The worker-side attempt
# ---------------------------------------------------------------------------

class _WorkerControl:
    """Deadline enforcement inside a worker attempt.

    The parent cannot cooperatively interrupt another process, so it
    ships the run's remaining deadline budget instead; the view's
    checkpoint raises :class:`StageCancelled` once it is spent, which
    travels back as a ``cancelled`` result.
    """

    def __init__(self, budget):
        self._expires = (None if budget is None
                         else time.perf_counter() + float(budget))

    def checkpoint(self, stage_name):
        if (self._expires is not None
                and time.perf_counter() > self._expires):
            raise StageCancelled(stage_name, "run deadline exceeded")


def _remote_attempt(request):
    """Execute one stage attempt in a worker process.

    ``request`` is the dict built by :meth:`_ProcessSession.dispatch`.
    Returns pickled result bytes (pickling worker-side keeps
    unpicklable stage outputs a *clear* structured error instead of a
    broken future).  The attempt is fully transactional: the delta
    only exists in the returned payload.
    """
    from ..observability.metrics import MetricsRegistry, set_registry

    spec = request["spec"]
    segments = []
    state = dict(request["inputs"])
    registry = MetricsRegistry()
    previous = set_registry(registry)
    try:
        for key, handle in request["shared"].items():
            array, segment = _attach(handle)
            state[key] = array
            segments.append(segment)
        control = _WorkerControl(request["budget"])
        view = _ContractView(state, spec, threading.RLock(), control)
        try:
            outcome = request["function"](view)
            if view.timed_out():
                raise StageTimeout(spec.name, spec.timeout)
            delta, deleted = dict(view._writes), sorted(view._deleted)
            result = {"ok": True, "outcome": outcome, "delta": delta,
                      "deleted": deleted}
        except ContractViolation as exc:
            result = {"ok": False, "kind": "contract",
                      "message": str(exc)}
        except StageTimeout:
            result = {"ok": False, "kind": "timeout"}
        except StageCancelled as exc:
            result = {"ok": False, "kind": "cancelled",
                      "reason": exc.reason}
        except BaseException as exc:
            result = {"ok": False, "kind": "error",
                      "type": type(exc).__qualname__,
                      "message": str(exc),
                      "traceback": traceback.format_exc()}
        result["metrics"] = registry.snapshot()
        result["events"] = []
        try:
            return pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception as exc:
            written = sorted(result.get("delta", ()))
            return pickle.dumps({
                "ok": False, "kind": "unpicklable",
                "message": (
                    f"stage {spec.name!r} produced a value that cannot "
                    f"cross the process boundary ({exc}); keys written: "
                    f"{written} -- run this stage on the thread or "
                    "serial backend, or make its outputs picklable"),
                "metrics": registry.snapshot(), "events": [],
            }, protocol=pickle.HIGHEST_PROTOCOL)
    finally:
        set_registry(previous)
        # Drop every reference into the mapped buffers before closing,
        # else SharedMemory.close() raises BufferError.
        del state, request
        for segment in segments:
            try:
                segment.close()
            except BufferError:  # a stage stashed the array somewhere
                pass


# ---------------------------------------------------------------------------
# Executor protocol and the in-process backends
# ---------------------------------------------------------------------------

class Executor:
    """Where stage attempts run.  Subclasses override :meth:`begin_run`.

    ``concurrent`` tells the scheduler whether independent stages may
    be in flight simultaneously; a backend with ``concurrent=False``
    gets the deterministic topological-order path.
    """

    kind = "base"
    concurrent = True

    def begin_run(self, stages, *, max_workers=None, metrics=None):
        """A per-run session; the scheduler calls ``finish()`` when
        the run ends (success or not)."""
        raise NotImplementedError

    def close(self):
        """Release long-lived resources (worker pools).  Idempotent."""

    def __repr__(self):
        return f"{type(self).__name__}()"


class _Session:
    """Base per-run session: local attempts, no worker pool."""

    remote_stages = frozenset()

    def submit(self, fn, *args):
        raise NotImplementedError

    def remote(self, index):
        return index in self.remote_stages

    def run_attempt(self, index, stage, state, lock, control, attempt):
        raise NotImplementedError(
            f"{type(self).__name__} runs every attempt in-process")

    def finish(self):
        pass


class SerialExecutor(Executor):
    """Everything inline in the calling thread, topological order.

    The debugging backend: no pools, no interleaving, plain stack
    traces — and byte-identical results to the parallel backends for
    contract-correct pipelines.
    """

    kind = "serial"
    concurrent = False

    def begin_run(self, stages, *, max_workers=None, metrics=None):
        return _Session()


class _ThreadSession(_Session):
    def __init__(self, workers):
        self._pool = ThreadPoolExecutor(max_workers=workers)

    def submit(self, fn, *args):
        return self._pool.submit(fn, *args)

    def finish(self):
        self._pool.shutdown(wait=True)


class ThreadExecutor(Executor):
    """The default backend: a per-run thread pool.

    Attempts run in worker threads of this process against the shared
    state dict (under the run lock), so there is no serialization cost
    — and no escape from the GIL for pure-Python CPU-bound stages.
    """

    kind = "thread"

    def __init__(self, max_workers=None):
        self.max_workers = (None if max_workers is None
                            else int(max_workers))

    def begin_run(self, stages, *, max_workers=None, metrics=None):
        workers = (self.max_workers or max_workers
                   or min(32, max(1, len(stages))))
        return _ThreadSession(workers)


# ---------------------------------------------------------------------------
# The process backend
# ---------------------------------------------------------------------------

class _ProcessSession(_Session):
    """One run on the process backend.

    Orchestration (retries, policies, events, commits) stays on parent
    threads; only the stage-function attempt crosses to the worker
    pool.  The session owns the run's shared-memory arena and the
    pre-flight verdict for every stage.
    """

    def __init__(self, executor, stages, workers, metrics):
        self._executor = executor
        self._stages = stages
        self._pool = ThreadPoolExecutor(max_workers=workers)
        self._arena = _ShmArena()
        self._metrics = metrics
        self.remote_stages, self.local_reasons = executor.preflight(stages)
        if metrics is not None:
            counter = metrics.counter(
                "engine.executor_local_stages_total",
                "Stages the process backend ran in-parent, by reason")
            for reason in self.local_reasons.values():
                counter.inc(reason=reason)
            self._m_remote = metrics.counter(
                "engine.executor_remote_attempts_total",
                "Stage attempts dispatched to worker processes")
            self._m_shared = metrics.counter(
                "engine.executor_shm_bytes_total",
                "Bytes of ndarray input published to shared memory")
        else:
            self._m_remote = self._m_shared = None

    def submit(self, fn, *args):
        return self._pool.submit(fn, *args)

    # -- remote attempt ------------------------------------------------------

    def _gather_inputs(self, stage, state, lock):
        """Split the stage's visible state into ship / share sets."""
        inputs, shared = {}, {}
        visible = set(stage.reads) | set(stage.writes)
        with lock:
            present = [(key, state[key]) for key in sorted(visible)
                       if key in state]
        for key, value in present:
            if _shareable(value):
                before = self._arena.shared_bytes
                shared[key] = self._arena.share(key, value)
                grown = self._arena.shared_bytes - before
                if self._m_shared is not None and grown:
                    self._m_shared.inc(grown)
            else:
                inputs[key] = value
        return inputs, shared

    def run_attempt(self, index, stage, state, lock, control, attempt):
        """Ship one attempt to a worker; returns
        ``(outcome, delta, deleted, events)`` or raises the
        reconstructed stage exception.  Worker metrics are merged into
        the parent registry before either outcome."""
        inputs, shared = self._gather_inputs(stage, state, lock)
        request = {
            "spec": StageSpec(stage.name, stage.reads, stage.writes,
                              stage.timeout),
            "function": stage.function,
            "inputs": inputs,
            "shared": shared,
            "budget": control.remaining(),
            "attempt": attempt,
        }
        if self._m_remote is not None:
            self._m_remote.inc(stage=stage.name)
        future = self._executor.dispatch(request)
        payload = self._await(future, stage, control)
        result = pickle.loads(payload)
        if self._metrics is not None and result.get("metrics"):
            self._metrics.merge_snapshot(result["metrics"])
        if result["ok"]:
            return (result["outcome"], result["delta"],
                    result["deleted"], result.get("events", ()))
        kind = result["kind"]
        if kind == "timeout":
            raise StageTimeout(stage.name, stage.timeout or 0.0)
        if kind == "cancelled":
            control.checkpoint(stage.name)  # prefer the parent's reason
            raise StageCancelled(stage.name, result["reason"])
        if kind == "contract":
            raise ContractViolation(result["message"])
        if kind == "unpicklable":
            raise ExecutorError(result["message"])
        raise RemoteStageError(result["type"], result["message"],
                               result.get("traceback"))

    def _await(self, future, stage, control):
        """Result bytes, polling so a cancelled run can abandon the
        attempt (the worker finishes; its result is discarded)."""
        while True:
            try:
                return future.result(timeout=_POLL_SECONDS)
            except TimeoutError:
                control.checkpoint(stage.name)
            except (pickle.PicklingError, AttributeError,
                    TypeError) as exc:
                raise ExecutorError(
                    f"stage {stage.name!r}: inputs could not be "
                    f"shipped to a worker process ({exc}); make the "
                    "values picklable or run this stage on the thread "
                    "backend") from exc

    def finish(self):
        self._pool.shutdown(wait=True)
        self._arena.close()


class ProcessExecutor(Executor):
    """Stage attempts in worker processes, inputs shared where large.

    Parameters
    ----------
    max_workers:
        Worker process count (default ``os.cpu_count()``).
    on_unpicklable:
        ``"local"`` (default) runs stages that cannot cross the
        boundary in the parent process and counts them in
        ``engine.executor_local_stages_total``; ``"error"`` raises
        :class:`ExecutorError` at run start instead, naming every
        offending stage and why.
    start_method:
        ``multiprocessing`` start method.  Default: the
        ``REPRO_EXECUTOR_START`` environment variable, else ``fork``
        where available (fast, no re-import) falling back to
        ``spawn``.

    The worker pool is created lazily on the first remote attempt and
    reused across runs; :meth:`close` shuts it down.
    """

    kind = "process"

    def __init__(self, max_workers=None, *, on_unpicklable="local",
                 start_method=None):
        if on_unpicklable not in ("local", "error"):
            raise ValueError(
                "on_unpicklable must be 'local' or 'error', got "
                f"{on_unpicklable!r}")
        self.max_workers = (int(max_workers) if max_workers is not None
                            else (os.cpu_count() or 1))
        self.on_unpicklable = on_unpicklable
        self.start_method = start_method
        self._pool = None
        self._pool_lock = threading.Lock()  # noqa: RC034 -- owns the worker pool; orchestrator is process-local

    # -- pool lifecycle ------------------------------------------------------

    def _make_pool(self):
        import multiprocessing
        from concurrent.futures import ProcessPoolExecutor

        method = (self.start_method
                  or os.environ.get("REPRO_EXECUTOR_START")
                  or ("fork" if "fork"
                      in multiprocessing.get_all_start_methods()
                      else "spawn"))
        context = multiprocessing.get_context(method)
        return ProcessPoolExecutor(max_workers=self.max_workers,
                                   mp_context=context)

    def dispatch(self, request):
        """Submit one attempt request to the worker pool."""
        from concurrent.futures.process import BrokenProcessPool

        with self._pool_lock:
            if self._pool is None:
                self._pool = self._make_pool()
            pool = self._pool
        try:
            return pool.submit(_remote_attempt, request)
        except BrokenProcessPool as exc:
            with self._pool_lock:
                if self._pool is pool:
                    self._pool = None
            raise ExecutorError(
                "the worker pool died (a worker was killed or "
                "crashed); subsequent runs recreate it") from exc

    def close(self):
        with self._pool_lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    # -- pre-flight ----------------------------------------------------------

    def stage_obstacle(self, stage):
        """Why a stage cannot cross the process boundary (or None)."""
        if not stage.declared:
            return ("wildcard contract (undeclared reads/writes give "
                    "the executor no key set to ship)")
        for role, function in (("function", stage.function),
                               ("fallback", stage.fallback)):
            if function is None:
                continue
            try:
                # The probe bytes are discarded; silence libraries
                # that warn from __reduce__ hooks during the dump.
                import warnings

                with warnings.catch_warnings():
                    warnings.simplefilter("ignore")
                    pickle.dumps(function,
                                 protocol=pickle.HIGHEST_PROTOCOL)
            except Exception as exc:
                name = getattr(function, "__qualname__",
                               repr(function))
                return (f"{role} {name!r} is not picklable ({exc}); "
                        "lambdas and locally defined closures cannot "
                        "run in a worker process -- move the function "
                        "to module level (lint rule RC022 flags this "
                        "statically)")
        return None

    def preflight(self, stages):
        """``(remote_indices, {index: reason})`` after pickling checks.

        With ``on_unpicklable="error"`` a non-empty reason map raises
        :class:`ExecutorError` listing every offending stage.
        """
        remote, reasons = set(), {}
        for index, stage in enumerate(stages):
            obstacle = self.stage_obstacle(stage)
            if obstacle is None:
                remote.add(index)
            else:
                reasons[index] = ("wildcard" if not stage.declared
                                  else "unpicklable")
                if self.on_unpicklable == "error":
                    raise ExecutorError(
                        f"stage {stages[index].name!r} cannot run "
                        f"under ProcessExecutor: {obstacle}")
        return frozenset(remote), reasons

    def begin_run(self, stages, *, max_workers=None, metrics=None):
        workers = max_workers or min(32, max(1, len(stages)))
        return _ProcessSession(self, stages, workers, metrics)

    def __repr__(self):
        return (f"ProcessExecutor(max_workers={self.max_workers}, "
                f"on_unpicklable={self.on_unpicklable!r})")


# ---------------------------------------------------------------------------
# Resolution
# ---------------------------------------------------------------------------

_process_default = None
_process_default_lock = threading.Lock()


def default_process_executor():
    """The process-wide shared :class:`ProcessExecutor` used when the
    backend is selected by name — shared so its worker pool amortizes
    across runs."""
    global _process_default
    with _process_default_lock:
        if _process_default is None:
            import atexit

            _process_default = ProcessExecutor()
            # Shut the shared pool down cleanly before interpreter
            # teardown starts dismantling multiprocessing internals.
            atexit.register(_process_default.close)
        return _process_default


def resolve_executor(spec=None):
    """Normalize an ``executor=`` argument to an :class:`Executor`.

    ``None`` consults ``REPRO_EXECUTOR`` (``serial`` / ``thread`` /
    ``process``), defaulting to the thread backend; strings name a
    backend (``"process"`` resolves to the shared default instance so
    its pool is reused); instances pass through.
    """
    if spec is None:
        spec = os.environ.get("REPRO_EXECUTOR", "").strip() or "thread"
    if isinstance(spec, Executor):
        return spec
    if isinstance(spec, str):
        name = spec.strip().lower()
        if name == "serial":
            return SerialExecutor()
        if name == "thread":
            return ThreadExecutor()
        if name == "process":
            return default_process_executor()
        raise ValueError(
            f"unknown executor {spec!r}; expected 'serial', 'thread', "
            "'process' or an Executor instance")
    raise TypeError(
        f"executor must be a name or an Executor, got {type(spec).__name__}")
