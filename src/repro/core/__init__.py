"""The paradigm of Figure 1 as an execution engine: a DAG-scheduled,
contract-checked, cache-aware, transactionally-isolated
Data-Governance-Analytics-Decision pipeline with bounded execution
(timeouts, deadlines, cancellation) and structured observability."""

from .cache import StageCache
from .events import CollectingTracer, PrintTracer, StageEvent, Tracer
from .executors import (
    Executor,
    ExecutorError,
    ProcessExecutor,
    RemoteStageError,
    SerialExecutor,
    ThreadExecutor,
    resolve_executor,
)
from .faults import FaultInjector
from .pipeline import DecisionPipeline
from .report import RunReport, StageRecord
from .stage import (
    ANY,
    ContractViolation,
    RunDeadlineExceeded,
    Stage,
    StageCancelled,
    StageFailure,
    StageTimeout,
)
from .streaming import IncrementalSession, Tick

__all__ = [
    "ANY",
    "CollectingTracer",
    "ContractViolation",
    "DecisionPipeline",
    "Executor",
    "ExecutorError",
    "FaultInjector",
    "IncrementalSession",
    "PrintTracer",
    "ProcessExecutor",
    "RemoteStageError",
    "RunDeadlineExceeded",
    "RunReport",
    "SerialExecutor",
    "Stage",
    "StageCache",
    "StageCancelled",
    "StageEvent",
    "StageFailure",
    "StageRecord",
    "StageTimeout",
    "ThreadExecutor",
    "Tick",
    "Tracer",
    "resolve_executor",
]
