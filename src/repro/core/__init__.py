"""The paradigm of Figure 1 as an execution engine: a DAG-scheduled,
contract-checked, cache-aware Data-Governance-Analytics-Decision
pipeline with structured observability."""

from .cache import StageCache
from .events import CollectingTracer, PrintTracer, StageEvent, Tracer
from .pipeline import DecisionPipeline
from .report import RunReport, StageRecord
from .stage import ANY, ContractViolation, Stage, StageFailure

__all__ = [
    "ANY",
    "CollectingTracer",
    "ContractViolation",
    "DecisionPipeline",
    "PrintTracer",
    "RunReport",
    "Stage",
    "StageCache",
    "StageEvent",
    "StageFailure",
    "StageRecord",
    "Tracer",
]
