"""The paradigm of Figure 1: a composable, self-documenting
Data-Governance-Analytics-Decision pipeline."""

from .pipeline import DecisionPipeline
from .report import RunReport, StageRecord

__all__ = ["DecisionPipeline", "RunReport", "StageRecord"]
