"""Stages with declared contracts: the unit of work of the engine.

A :class:`Stage` is a named function attached to one of the four
Figure-1 layers, carrying a *contract*: the state keys it ``reads``
and ``writes``.  Contracts drive everything downstream:

* the dependency resolver (:mod:`repro.core.dag`) turns overlapping
  contracts into DAG edges, so contract-independent stages can run
  concurrently;
* the scheduler hands each stage a :class:`_ContractView` of the
  shared state that *enforces* the contract at run time — an
  undeclared read or write raises :class:`ContractViolation`;
* the cache (:mod:`repro.core.cache`) keys a stage's result on the
  content of exactly the inputs its contract names.

A stage that declares no contract gets the :data:`ANY` wildcard for
both sides, which conflicts with everything and therefore degrades to
the legacy fully-sequential execution order.

Execution is *transactional*: the view buffers every write (and
deletion) of one attempt and commits to shared state atomically only
when the attempt succeeds.  A failed, timed-out, skipped or cancelled
attempt leaves shared state exactly as it found it, so retries and
``on_error="skip"`` can never poison a run with torn writes.  The one
escape hatch is in-place mutation of a *read* value (e.g. writing
into a numpy array pulled out of state) — by default the transaction
layer hands out real references and cannot intercept that.  Two
defenses close it: ``run(copy_on_read=True)`` hands out defensive
copies of numpy arrays read through read-only keys, and the static
analyzer (``python -m repro.lint``, rule RC004) flags the mutation at
lint time before a run ever starts.
"""

from __future__ import annotations

import time
from collections.abc import MutableMapping

__all__ = [
    "ANY",
    "ContractViolation",
    "RunDeadlineExceeded",
    "Stage",
    "StageCancelled",
    "StageFailure",
    "StageTimeout",
]


class _AnyKeys:
    """Wildcard contract: the stage may touch every state key."""

    _instance = None

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self):
        return "ANY"


ANY = _AnyKeys()

_POLICIES = ("fail", "skip", "fallback")


class ContractViolation(RuntimeError):
    """A stage touched a state key its contract does not declare."""


class StageFailure(RuntimeError):
    """A stage with the ``fail`` policy exhausted its retries.

    Carries the partial run artifacts so a failed run still leaves an
    audit trail: ``.stage`` (name), ``.report`` (records up to the
    failure), ``.state`` (state as of the failure) and
    ``.secondary`` (exceptions from other in-flight stages that
    failed concurrently; previously these were silently dropped).
    """

    def __init__(self, stage, message, *, report=None, state=None):
        super().__init__(message)
        self.stage = str(stage)
        self.report = report
        self.state = state
        self.secondary = []


class StageTimeout(RuntimeError):
    """A stage attempt exceeded its ``timeout`` budget.

    Raised cooperatively into the stage function at its next state
    access, or by the runner when an attempt returns over budget.
    Counts as an ordinary failure: retries and the stage's
    ``on_error`` policy apply.
    """

    def __init__(self, stage, timeout):
        super().__init__(
            f"stage {stage!r} exceeded its {timeout:.3f}s timeout"
        )
        self.stage = str(stage)
        self.timeout = float(timeout)


class StageCancelled(BaseException):
    """The run was cancelled while this stage was in flight.

    Deliberately a ``BaseException``: a stage function's blanket
    ``except Exception`` must not swallow cooperative cancellation.
    Cancellation is not a stage failure — it is never retried and no
    failure policy applies; the attempt's buffered writes are simply
    discarded.
    """

    def __init__(self, stage, reason):
        super().__init__(
            f"stage {stage!r} cancelled ({reason})"
        )
        self.stage = str(stage)
        self.reason = str(reason)


class RunDeadlineExceeded(RuntimeError):
    """The run-level ``deadline`` budget expired before completion.

    Carries the partial ``.report`` and ``.state`` like
    :class:`StageFailure`; committed stages stay committed, in-flight
    attempts are rolled back.
    """

    def __init__(self, message, *, report=None, state=None):
        super().__init__(message)
        self.report = report
        self.state = state


def _as_contract(keys):
    """Normalize a declared contract: None -> ANY, iterable -> frozenset."""
    if keys is None or keys is ANY:
        return ANY
    if isinstance(keys, str):
        raise TypeError(
            "contract keys must be an iterable of key names, not a "
            f"bare string: {keys!r}"
        )
    return frozenset(str(key) for key in keys)


def contracts_overlap(a, b):
    """Whether two contract key sets can refer to a common key."""
    if a is ANY:
        return True if b is ANY else bool(b)
    if b is ANY:
        return bool(a)
    return not a.isdisjoint(b)


class Stage:
    """A named pipeline stage with contract and failure policy.

    Parameters
    ----------
    layer, name, function:
        As in the original pipeline: the Figure-1 layer, a unique
        stage name, and a callable receiving the state mapping.
    reads, writes:
        Iterables of state keys the stage consumes / produces.
        ``None`` (the default) means the :data:`ANY` wildcard.
    on_error:
        ``"fail"`` (default) aborts the run, ``"skip"`` records the
        error and continues, ``"fallback"`` invokes ``fallback``.
    fallback:
        Callable with the stage signature, required when
        ``on_error="fallback"``.
    retries:
        Extra attempts before the failure policy applies.
    timeout:
        Per-attempt wall-clock budget in seconds (``None`` = no
        limit).  Enforced cooperatively at every state access and
        again when the attempt returns; a timed-out attempt commits
        nothing and counts as a failure (retries, then policy).
    backoff:
        Base delay in seconds for exponential backoff between retry
        attempts (``delay = backoff * 2**(attempt-1)``, full jitter,
        capped at 2 seconds).  ``0`` disables backoff.
    incremental:
        Optional *fold* callable ``fold(view, tick)`` for streaming
        sessions (see :mod:`repro.core.streaming`).  On a tick where
        the stage is dirty but has a previous committed result, the
        session seeds the view with that carried delta and calls the
        fold instead of ``function``, so windowed operators update
        carried state instead of recomputing from scratch.  The fold
        must produce the same committed delta as ``function`` would
        on the full input — the differential harness checks exactly
        that.  ``None`` (default) always recomputes.
    """

    __slots__ = ("layer", "name", "function", "reads", "writes",
                 "on_error", "fallback", "retries", "timeout",
                 "backoff", "incremental")

    def __init__(self, layer, name, function, *, reads=None, writes=None,
                 on_error="fail", fallback=None, retries=0,
                 timeout=None, backoff=0.02, incremental=None):
        if not callable(function):
            raise TypeError("function must be callable")
        if on_error not in _POLICIES:
            raise ValueError(
                f"on_error must be one of {_POLICIES}, got {on_error!r}"
            )
        if on_error == "fallback" and not callable(fallback):
            raise TypeError(
                "on_error='fallback' requires a callable fallback"
            )
        if fallback is not None and on_error != "fallback":
            raise ValueError(
                "fallback given but on_error is not 'fallback'"
            )
        retries = int(retries)
        if retries < 0:
            raise ValueError("retries must be >= 0")
        if timeout is not None:
            timeout = float(timeout)
            if timeout <= 0:
                raise ValueError("timeout must be positive or None")
        backoff = float(backoff)
        if backoff < 0:
            raise ValueError("backoff must be >= 0")
        if incremental is not None and not callable(incremental):
            raise TypeError("incremental must be callable or None")
        self.layer = str(layer)
        self.name = str(name)
        self.function = function
        self.reads = _as_contract(reads)
        self.writes = _as_contract(writes)
        self.on_error = on_error
        self.fallback = fallback
        self.retries = retries
        self.timeout = timeout
        self.backoff = backoff
        self.incremental = incremental

    @property
    def declared(self):
        """Whether both contract sides are explicit (cacheable)."""
        return self.reads is not ANY and self.writes is not ANY

    def describe_contract(self):
        """The contract as plain, JSON-ready data.

        The introspection hook tooling builds on (the static analyzer
        in :mod:`repro.analysis` checks the same shape at lint time):
        ``reads``/``writes`` are sorted key lists, or the string
        ``"ANY"`` for an undeclared (wildcard) side.
        """
        def side(keys):
            return "ANY" if keys is ANY else sorted(keys)

        return {
            "layer": self.layer,
            "name": self.name,
            "reads": side(self.reads),
            "writes": side(self.writes),
            "on_error": self.on_error,
            "has_fallback": self.fallback is not None,
            "retries": self.retries,
            "timeout": self.timeout,
            "incremental": self.incremental is not None,
        }

    def replace_name_suffix(self):  # pragma: no cover - debug aid
        return f"{self.layer}/{self.name}"

    def __repr__(self):
        return (
            f"Stage({self.layer}/{self.name}, reads={self.reads!r}, "
            f"writes={self.writes!r}, on_error={self.on_error!r})"
        )


class _ContractView(MutableMapping):
    """A contract-enforcing, transactional view of the shared state.

    Stage functions receive this instead of the raw dict.  It behaves
    like the state mapping restricted to the stage's declared keys:
    reads outside ``reads | writes`` and writes outside ``writes``
    raise :class:`ContractViolation` immediately, naming the stage.

    Writes and deletions never touch the shared dict directly: they
    land in a per-attempt buffer (``_writes`` plus ``_deleted``
    tombstones) that :meth:`commit` applies atomically under the
    run's lock once the attempt succeeds.  The stage reads its own
    buffered writes (read-your-writes), while shared reads go to the
    underlying dict under the lock.  Discarding the view discards the
    attempt — that is the whole rollback mechanism.

    Every access is also a cooperative checkpoint: when the run is
    cancelled the access raises :class:`StageCancelled`, and when the
    attempt's ``timeout`` budget is spent it raises
    :class:`StageTimeout`.

    ``copy_on_read=True`` closes the worst of the in-place-mutation
    escape hatch: numpy arrays fetched through a key the contract
    declares *read-only* (the stage's ``writes`` side is declared and
    does not include the key) are handed out as defensive copies, so
    sorting or slicing into a read value can no longer tear shared
    state behind the transaction layer's back.  The copy is made once
    per key per attempt, so repeated reads stay consistent within the
    stage.  Mutating the copy is still a contract smell -- the static
    analyzer (rule RC004) flags it -- but it is no longer a data race.
    """

    __slots__ = ("_state", "_stage", "_lock", "_control", "_writes",
                 "_deleted", "_started", "_timeout_at", "written",
                 "_copy_on_read", "_copies")

    def __init__(self, state, stage, lock, control=None, *,
                 copy_on_read=False):
        self._state = state
        self._stage = stage
        self._lock = lock
        self._control = control
        self._writes = {}
        self._deleted = set()
        self._started = time.perf_counter()
        self._timeout_at = (None if stage.timeout is None
                            else self._started + stage.timeout)
        self.written = set()
        self._copy_on_read = bool(copy_on_read)
        self._copies = {}

    # -- transactional machinery --------------------------------------------

    def _checkpoint(self):
        """Cooperative cancellation / timeout check at every access."""
        if self._control is not None:
            self._control.checkpoint(self._stage.name)
        if (self._timeout_at is not None
                and time.perf_counter() > self._timeout_at):
            raise StageTimeout(self._stage.name, self._stage.timeout)

    def elapsed(self):
        """Seconds since this attempt's view was created."""
        return time.perf_counter() - self._started

    def timed_out(self):
        """Whether the attempt has outlived its timeout budget."""
        return (self._timeout_at is not None
                and time.perf_counter() > self._timeout_at)

    def commit(self):
        """Atomically apply buffered writes/deletes to shared state.

        Returns ``(writes, deleted)``: the dict of committed values
        and the frozenset of deleted keys — exactly the replayable
        delta the cache stores (deletions included as tombstones).
        """
        with self._lock:
            self._state.update(self._writes)
            for key in self._deleted:
                self._state.pop(key, None)
        return dict(self._writes), frozenset(self._deleted)

    # -- contract checks ----------------------------------------------------

    @staticmethod
    def _count_violation(stage_name, side):
        """Publish a contract violation to the global metrics registry.

        Violations are programming errors and abort the run, so the
        lazy registry lookup only ever runs on the exceptional path.
        """
        from ..observability.metrics import get_registry

        get_registry().counter(
            "engine.contract_violations_total",
            "Undeclared state accesses caught by contract views").inc(
                stage=stage_name, side=side)

    def _check_read(self, key):
        reads = self._stage.reads
        if reads is ANY:
            return
        if key in reads or (self._stage.writes is not ANY
                            and key in self._stage.writes):
            return
        self._count_violation(self._stage.name, "read")
        raise ContractViolation(
            f"stage {self._stage.name!r} read undeclared key {key!r} "
            f"(declared reads: {sorted(reads)})"
        )

    def _check_write(self, key):
        writes = self._stage.writes
        if writes is ANY or key in writes:
            return
        self._count_violation(self._stage.name, "write")
        raise ContractViolation(
            f"stage {self._stage.name!r} wrote undeclared key {key!r} "
            f"(declared writes: {sorted(writes)})"
        )

    def _visible(self, key):
        """Whether the contract lets the stage see this key at all."""
        if self._stage.reads is ANY:
            return True
        return key in self._stage.reads or (
            self._stage.writes is not ANY and key in self._stage.writes)

    # -- MutableMapping interface -------------------------------------------

    def _read_only(self, key):
        """Whether the contract forbids the stage to write ``key``."""
        writes = self._stage.writes
        return writes is not ANY and key not in writes

    def __getitem__(self, key):
        self._checkpoint()
        self._check_read(key)
        if key in self._writes:
            return self._writes[key]
        if key in self._deleted:
            raise KeyError(key)
        with self._lock:
            value = self._state[key]
        if self._copy_on_read and self._read_only(key):
            import numpy as np

            if isinstance(value, np.ndarray):
                cached = self._copies.get(key)
                if cached is None:
                    cached = value.copy()
                    self._copies[key] = cached
                return cached
        return value

    def __setitem__(self, key, value):
        self._checkpoint()
        self._check_write(key)
        self._deleted.discard(key)
        self._writes[key] = value
        self.written.add(key)

    def __delitem__(self, key):
        self._checkpoint()
        self._check_write(key)
        if key in self._writes:
            del self._writes[key]
        else:
            if key in self._deleted:
                raise KeyError(key)
            with self._lock:
                if key not in self._state:
                    raise KeyError(key)
        self._deleted.add(key)
        self.written.add(key)

    def __iter__(self):
        self._checkpoint()
        with self._lock:
            keys = list(self._state)
        merged = [key for key in keys
                  if key not in self._deleted and key not in self._writes]
        merged.extend(self._writes)
        return iter([key for key in merged if self._visible(key)])

    def __len__(self):
        return len(list(iter(self)))

    def __contains__(self, key):
        self._checkpoint()
        if not self._visible(key):
            return False
        if key in self._writes:
            return True
        if key in self._deleted:
            return False
        with self._lock:
            return key in self._state

    def __repr__(self):
        return f"<state view for stage {self._stage.name!r}>"
