"""Stages with declared contracts: the unit of work of the engine.

A :class:`Stage` is a named function attached to one of the four
Figure-1 layers, carrying a *contract*: the state keys it ``reads``
and ``writes``.  Contracts drive everything downstream:

* the dependency resolver (:mod:`repro.core.dag`) turns overlapping
  contracts into DAG edges, so contract-independent stages can run
  concurrently;
* the scheduler hands each stage a :class:`_ContractView` of the
  shared state that *enforces* the contract at run time — an
  undeclared read or write raises :class:`ContractViolation`;
* the cache (:mod:`repro.core.cache`) keys a stage's result on the
  content of exactly the inputs its contract names.

A stage that declares no contract gets the :data:`ANY` wildcard for
both sides, which conflicts with everything and therefore degrades to
the legacy fully-sequential execution order.
"""

from __future__ import annotations

from collections.abc import MutableMapping

__all__ = [
    "ANY",
    "ContractViolation",
    "Stage",
    "StageFailure",
]


class _AnyKeys:
    """Wildcard contract: the stage may touch every state key."""

    _instance = None

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self):
        return "ANY"


ANY = _AnyKeys()

_POLICIES = ("fail", "skip", "fallback")


class ContractViolation(RuntimeError):
    """A stage touched a state key its contract does not declare."""


class StageFailure(RuntimeError):
    """A stage with the ``fail`` policy exhausted its retries.

    Carries the partial run artifacts so a failed run still leaves an
    audit trail: ``.stage`` (name), ``.report`` (records up to the
    failure) and ``.state`` (state as of the failure).
    """

    def __init__(self, stage, message, *, report=None, state=None):
        super().__init__(message)
        self.stage = str(stage)
        self.report = report
        self.state = state


def _as_contract(keys):
    """Normalize a declared contract: None -> ANY, iterable -> frozenset."""
    if keys is None or keys is ANY:
        return ANY
    if isinstance(keys, str):
        raise TypeError(
            "contract keys must be an iterable of key names, not a "
            f"bare string: {keys!r}"
        )
    return frozenset(str(key) for key in keys)


def contracts_overlap(a, b):
    """Whether two contract key sets can refer to a common key."""
    if a is ANY:
        return True if b is ANY else bool(b)
    if b is ANY:
        return bool(a)
    return not a.isdisjoint(b)


class Stage:
    """A named pipeline stage with contract and failure policy.

    Parameters
    ----------
    layer, name, function:
        As in the original pipeline: the Figure-1 layer, a unique
        stage name, and a callable receiving the state mapping.
    reads, writes:
        Iterables of state keys the stage consumes / produces.
        ``None`` (the default) means the :data:`ANY` wildcard.
    on_error:
        ``"fail"`` (default) aborts the run, ``"skip"`` records the
        error and continues, ``"fallback"`` invokes ``fallback``.
    fallback:
        Callable with the stage signature, required when
        ``on_error="fallback"``.
    retries:
        Extra attempts before the failure policy applies.
    """

    __slots__ = ("layer", "name", "function", "reads", "writes",
                 "on_error", "fallback", "retries")

    def __init__(self, layer, name, function, *, reads=None, writes=None,
                 on_error="fail", fallback=None, retries=0):
        if not callable(function):
            raise TypeError("function must be callable")
        if on_error not in _POLICIES:
            raise ValueError(
                f"on_error must be one of {_POLICIES}, got {on_error!r}"
            )
        if on_error == "fallback" and not callable(fallback):
            raise TypeError(
                "on_error='fallback' requires a callable fallback"
            )
        if fallback is not None and on_error != "fallback":
            raise ValueError(
                "fallback given but on_error is not 'fallback'"
            )
        retries = int(retries)
        if retries < 0:
            raise ValueError("retries must be >= 0")
        self.layer = str(layer)
        self.name = str(name)
        self.function = function
        self.reads = _as_contract(reads)
        self.writes = _as_contract(writes)
        self.on_error = on_error
        self.fallback = fallback
        self.retries = retries

    @property
    def declared(self):
        """Whether both contract sides are explicit (cacheable)."""
        return self.reads is not ANY and self.writes is not ANY

    def replace_name_suffix(self):  # pragma: no cover - debug aid
        return f"{self.layer}/{self.name}"

    def __repr__(self):
        return (
            f"Stage({self.layer}/{self.name}, reads={self.reads!r}, "
            f"writes={self.writes!r}, on_error={self.on_error!r})"
        )


class _ContractView(MutableMapping):
    """A contract-enforcing, lock-guarded view of the shared state.

    Stage functions receive this instead of the raw dict.  It behaves
    like the state mapping restricted to the stage's declared keys:
    reads outside ``reads | writes`` and writes outside ``writes``
    raise :class:`ContractViolation` immediately, naming the stage.
    All operations hold the run's lock, so contract-disjoint stages
    can safely mutate the underlying dict concurrently.

    Keys the stage actually wrote are tracked in ``written`` — the
    scheduler uses them to validate wildcard stages post-hoc and the
    cache uses them as the stage's replayable state delta.
    """

    __slots__ = ("_state", "_stage", "_lock", "written")

    def __init__(self, state, stage, lock):
        self._state = state
        self._stage = stage
        self._lock = lock
        self.written = set()

    # -- contract checks ----------------------------------------------------

    def _check_read(self, key):
        reads = self._stage.reads
        if reads is ANY:
            return
        if key in reads or (self._stage.writes is not ANY
                            and key in self._stage.writes):
            return
        raise ContractViolation(
            f"stage {self._stage.name!r} read undeclared key {key!r} "
            f"(declared reads: {sorted(reads)})"
        )

    def _check_write(self, key):
        writes = self._stage.writes
        if writes is ANY or key in writes:
            return
        raise ContractViolation(
            f"stage {self._stage.name!r} wrote undeclared key {key!r} "
            f"(declared writes: {sorted(writes)})"
        )

    def _visible(self, key):
        """Whether the contract lets the stage see this key at all."""
        if self._stage.reads is ANY:
            return True
        return key in self._stage.reads or (
            self._stage.writes is not ANY and key in self._stage.writes)

    # -- MutableMapping interface -------------------------------------------

    def __getitem__(self, key):
        self._check_read(key)
        with self._lock:
            return self._state[key]

    def __setitem__(self, key, value):
        self._check_write(key)
        with self._lock:
            self._state[key] = value
        self.written.add(key)

    def __delitem__(self, key):
        self._check_write(key)
        with self._lock:
            del self._state[key]
        self.written.add(key)

    def __iter__(self):
        with self._lock:
            keys = list(self._state)
        return iter([key for key in keys if self._visible(key)])

    def __len__(self):
        return len(list(iter(self)))

    def __contains__(self, key):
        if not self._visible(key):
            return False
        with self._lock:
            return key in self._state

    def __repr__(self):
        return f"<state view for stage {self._stage.name!r}>"
