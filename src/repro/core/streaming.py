"""Streaming / incremental pipeline execution: ticks over a DAG.

Production traffic arrives as an unbounded stream, but
:meth:`DecisionPipeline.run` recomputes the whole DAG from scratch.
:class:`IncrementalSession` (returned by
:meth:`DecisionPipeline.stream`) closes that gap: the session carries
the input state and every stage's last committed *delta* across
**ticks**.  Each ``tick(changed=..., deleted=...)``

1. applies the mutations to the carried input state,
2. walks the stages in topological (layer-major) order, consulting
   each declared ``reads``/``writes`` contract to compute the **dirty
   downstream cone** of the changed keys,
3. replays every *clean* stage from its carried delta — a deep-copy
   replay through the :class:`~repro.core.cache.StageCache` machinery,
   deletion tombstones included — and re-executes only dirty stages,
4. and harvests the new committed deltas for the next tick.

Every tick funnels through the same engine core as ``run()``
(:func:`repro.core.pipeline._execute_run`), so events, metrics,
reports, failure policies, timeouts, deadlines and all three executor
backends (serial / thread / process) behave identically; the final
state of a tick is byte-identical to a from-scratch ``run()`` on the
same input state for deterministic stages — the differential harness
in ``tests/test_streaming.py`` asserts exactly that.

Dirty-cone rules (walked in topological order over a live set of
*dirty keys*, seeded with the tick's changed/deleted keys plus any
keys pending from failed ticks):

* a stage with no carried delta (first tick, prior skip/fallback, or
  an uncacheable result) is dirty;
* a stage whose declared ``reads`` intersect the dirty set is dirty;
  a wildcard-``reads`` stage is dirty whenever the set is non-empty;
* a dirty stage adds its declared ``writes`` to the dirty set; a
  wildcard-``writes`` stage dirties everything after it;
* a clean stage *removes* the keys its carried delta actually wrote
  or deleted — after replay they match the previous tick exactly, so
  downstream readers are clean again.  Only actual effects are
  removed, never declared writes: a declared-but-unwritten key stays
  dirty.

Ticks are **key-identity** based, not content based: passing a key in
``changed`` dirties its cone even if the value is equal.  Fingerprint
the value yourself if you want content-level cutoffs.

Incremental folds: a stage constructed with ``incremental=fold`` does
not recompute from scratch when it is dirty on a non-first tick.
Instead the engine seeds the attempt's transactional view with the
stage's previous committed delta (tombstones re-applied) and calls
``fold(view, tick)`` — the :class:`Tick` names the changed/deleted
keys — so a windowed operator folds the new observations into carried
state.  The fold *must* leave the view in the same state a full
recompute would; the engine guarantees byte-identity only for
non-incremental stages and checks fold discipline in the differential
harness.

Failure semantics are transactional at tick granularity: a failed or
deadline-cancelled tick publishes nothing — the carried state and
deltas remain those of the last successful tick, and the failed
tick's mutations stay *pending* so the next successful tick
recomputes the whole accumulated cone.
"""

from __future__ import annotations

import collections
import threading
import uuid

from . import dag as _dag
from .cache import StageCache
from .events import emit
from .stage import ANY, RunDeadlineExceeded, Stage, StageFailure

__all__ = ["IncrementalSession", "Tick"]


class Tick(collections.namedtuple("Tick", "number changed deleted")):
    """One tick's identity, handed to incremental folds.

    ``number`` is the 0-based tick index; ``changed`` / ``deleted``
    are frozensets of the state keys this tick mutated at the session
    boundary.  Plain data, so it crosses the process boundary with
    the stage function.
    """

    __slots__ = ()


class _IncrementalCall:
    """Substitute stage function for a dirty incremental stage.

    Seeds the attempt's view with the stage's previous committed
    delta (so the fold reads its own carried state through normal
    contract-checked access), re-applies previous deletion tombstones,
    then delegates to the user's fold.  Picklable whenever the fold
    and the carried values are, so the process backend's pre-flight
    treats it like any other stage function.
    """

    def __init__(self, fold, tick, carried, carried_deleted):
        self.fold = fold
        self.tick = tick
        self.carried = carried
        self.carried_deleted = frozenset(carried_deleted)

    def __call__(self, view):
        for key, value in self.carried.items():
            view[key] = value
        for key in self.carried_deleted:
            if key in view:
                del view[key]
        return self.fold(view, self.tick)


def _clone_stage(stage, function):
    """The stage with its function swapped, everything else intact."""
    return Stage(stage.layer, stage.name, function,
                 reads=stage.reads, writes=stage.writes,
                 on_error=stage.on_error, fallback=stage.fallback,
                 retries=stage.retries, timeout=stage.timeout,
                 backoff=stage.backoff)


class IncrementalSession:
    """Carries state and per-stage deltas across incremental ticks.

    Construct through :meth:`DecisionPipeline.stream`.  Not safe for
    concurrent ticks — a lock serializes them, so interleaved callers
    block rather than corrupt the carried state.
    """

    def __init__(self, pipeline, initial_state=None, *, tracer=None,
                 max_workers=None, copy_on_read=False, metrics=None,
                 executor=None):
        self._pipeline = pipeline
        self._stages = pipeline._ordered_stages()
        self._deps = _dag.resolve_dependencies(self._stages)
        self._tracer = tracer
        self._max_workers = max_workers
        self._copy_on_read = bool(copy_on_read)
        self._metrics = metrics
        self._executor = executor
        self._initial = dict(initial_state or {})
        self._state = None          # final state of the last ok tick
        self._entries = {}          # stage name -> CacheEntry
        self._pending = set()       # dirty keys from failed ticks
        self._force_full = False
        self._ticks = 0             # ticks attempted (keys/ids)
        self.completed = 0          # ticks that committed
        self.last_report = None
        self._tick_lock = threading.Lock()  # noqa: RC034 -- serializes ticks; sessions never cross a process

    # -- inspection ----------------------------------------------------------

    @property
    def state(self):
        """Final state of the last successful tick (shallow copy).

        ``None`` before the first successful tick.
        """
        return None if self._state is None else dict(self._state)

    @property
    def input_state(self):
        """The carried input state, mutations applied (shallow copy)."""
        return dict(self._initial)

    def __repr__(self):
        return (f"IncrementalSession({self._pipeline.title!r}, "
                f"ticks={self.completed}/{self._ticks})")

    # -- planning ------------------------------------------------------------

    def _plan(self, dirty, full):
        """Per-stage disposition for one tick.

        Returns a list aligned with the stages: ``"replay"`` (clean,
        serve from the carried delta), ``"execute"`` (recompute) or
        ``"fold"`` (dirty, but the stage folds into carried state).
        Mutates ``dirty`` in place following the module-docstring
        rules; the walk order is the layer-major stage order, which
        is a valid topological order of the resolved DAG.
        """
        plan = []
        all_dirty = bool(full)
        for stage in self._stages:
            entry = self._entries.get(stage.name)
            if entry is None or all_dirty:
                is_dirty = True
            elif stage.reads is ANY:
                is_dirty = bool(dirty)
            else:
                is_dirty = not stage.reads.isdisjoint(dirty)
            if is_dirty:
                if stage.writes is ANY:
                    all_dirty = True
                else:
                    dirty |= stage.writes
                fold = (stage.incremental is not None
                        and entry is not None and not full)
                plan.append("fold" if fold else "execute")
            else:
                dirty -= set(entry.delta)
                dirty -= entry.deleted
                plan.append("replay")
        return plan

    # -- execution -----------------------------------------------------------

    def tick(self, changed=None, deleted=(), *, deadline=None,
             run_id=None, full=False):
        """Apply mutations and run the dirty cone; returns
        ``(state, report)`` exactly like :meth:`DecisionPipeline.run`.

        Parameters
        ----------
        changed:
            Mapping of state keys to new values.  Key identity is
            what matters: a key listed here dirties its downstream
            cone even if the value compares equal.
        deleted:
            Iterable of state keys to remove from the input state
            (missing keys are tolerated but still dirty their cone).
        deadline, run_id:
            Per-tick :meth:`DecisionPipeline.run` semantics.
        full:
            Force a from-scratch recompute of every stage — no
            replays, no incremental folds.  The first tick is always
            full in effect (there is nothing to replay yet).

        Raises whatever ``run()`` raises; a raising tick commits
        nothing — carried state and deltas stay those of the last
        successful tick, and this tick's mutations stay pending until
        a tick succeeds.
        """
        with self._tick_lock:
            return self._tick(changed, deleted, deadline=deadline,
                              run_id=run_id, full=full)

    def _tick(self, changed, deleted, *, deadline, run_id, full):
        from ..observability.metrics import get_registry
        from .pipeline import _execute_run

        if deadline is not None and float(deadline) <= 0:
            raise ValueError("deadline must be positive or None")
        changed = dict(changed or {})
        deleted = frozenset(str(key) for key in deleted)
        overlap = set(changed) & deleted
        if overlap:
            raise ValueError(
                f"keys both changed and deleted: {sorted(overlap)}")
        number = self._ticks
        self._ticks += 1
        run_id = (uuid.uuid4().hex[:12] if run_id is None
                  else str(run_id))
        full = bool(full) or self._force_full

        # 1. Mutate the carried input state.
        self._initial.update(changed)
        for key in deleted:
            self._initial.pop(key, None)

        # 2. Plan the dirty cone and build this tick's replay cache.
        dirty = self._pending | set(changed) | set(deleted)
        pending = set(dirty)  # what stays pending if this tick fails
        plan = self._plan(dirty, full)
        tick_info = Tick(number, frozenset(changed), deleted)
        replay = StageCache()
        keys, stages = [], []
        for stage, disposition in zip(self._stages, plan):
            if disposition == "replay":
                key = f"replay:{stage.name}"
                replay.adopt(key, self._entries[stage.name])
            else:
                key = f"t{number}:{stage.name}"
            if disposition == "fold":
                carried, carried_deleted = (
                    self._entries[stage.name].snapshot())
                stage = _clone_stage(stage, _IncrementalCall(
                    stage.incremental, tick_info, carried,
                    carried_deleted))
            keys.append(key)
            stages.append(stage)
        saved = plan.count("replay")
        folded = plan.count("fold")
        executed = len(plan) - saved

        # 3. Execute through the shared engine core.
        metrics = (self._metrics if self._metrics is not None
                   else get_registry())
        emit(self._tracer, "tick_start", tick=number, run_id=run_id,
             changed=len(changed), deleted=len(deleted),
             dirty=executed, saved=saved, full=full)
        state = dict(self._initial)
        status = "ok"
        try:
            report = _execute_run(
                self._pipeline.title, stages, self._deps, state,
                cache=replay, cache_keys=keys, tracer=self._tracer,
                max_workers=self._max_workers, deadline=deadline,
                copy_on_read=self._copy_on_read, metrics=metrics,
                executor=self._executor, run_id=run_id,
                run_data={"tick": number})
        except RunDeadlineExceeded:
            status = "deadline_exceeded"
            raise
        except StageFailure:
            status = "failed"
            raise
        except BaseException:
            status = "error"
            raise
        finally:
            if status != "ok":
                self._pending = pending
                self._force_full = full
            metrics.counter(
                "engine.ticks_total",
                "Incremental ticks by terminal status").inc(
                    status=status)
            counter = metrics.counter(
                "engine.tick_stages_total",
                "Per-tick stage dispositions (replayed = saved work)")
            if saved:
                counter.inc(saved, disposition="replayed")
            if folded:
                counter.inc(folded, disposition="incremental")
            if executed - folded:
                counter.inc(executed - folded, disposition="executed")
            emit(self._tracer, "tick_end", tick=number, run_id=run_id,
                 status=status, dirty=executed, saved=saved)

        # 4. Harvest the committed deltas for the next tick.  A stage
        # with no entry (skipped, fallback, uncacheable) stays dirty.
        metrics.histogram(
            "engine.tick_duration_seconds",
            "Wall-clock duration of incremental ticks").observe(
                report.wall_seconds)
        self._entries = {
            stage.name: entry
            for stage, key in zip(self._stages, keys)
            if (entry := replay.entry(key)) is not None
        }
        self._state = state
        self._pending = set()
        self._force_full = False
        self.completed += 1
        self.last_report = report
        return state, report
