"""The DAG scheduler: concurrent stage execution with failure policies.

Given stages and their resolved dependencies, the scheduler runs
every stage whose dependencies are satisfied, fanning independent
stages out over a ``ThreadPoolExecutor``.  The library's stages are
numpy-heavy (GIL-releasing) or I/O-bound, so threads buy real
wall-clock parallelism without pickling state between processes.

Chain-shaped DAGs — which every legacy wildcard-contract pipeline
resolves to — are detected and executed inline in the calling
thread: identical semantics to the old for-loop, zero pool overhead.

Per-stage failure handling:

* ``retries=N`` re-invokes the stage up to N extra times,
* then the stage's policy applies: ``fail`` aborts the run (raising
  :class:`StageFailure` carrying the partial report), ``skip``
  records the error and lets the rest of the DAG proceed,
  ``fallback`` runs the stage's fallback callable instead.

:class:`ContractViolation` is never retried or absorbed by a policy:
a stage touching undeclared state is a programming error, and hiding
it would poison every scheduling decision built on the contract.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import FIRST_COMPLETED, ThreadPoolExecutor, wait

from . import cache as _cache
from . import dag as _dag
from .events import emit
from .stage import ContractViolation, StageFailure, _ContractView

__all__ = ["DagScheduler"]


class DagScheduler:
    """Executes a resolved stage DAG against a shared state dict."""

    def __init__(self, max_workers=None):
        self.max_workers = max_workers

    def execute(self, stages, deps, state, report, *, cache=None,
                tracer=None):
        """Run all stages; mutates ``state`` and ``report`` in place."""
        lock = threading.RLock()
        keys = (_cache.stage_keys(stages, deps, state)
                if cache is not None else [None] * len(stages))
        run = _StageRunner(stages, state, report, lock, cache, keys,
                           tracer)
        if len(stages) <= 1 or _dag.is_chain(deps):
            for index in range(len(stages)):
                run(index)
            return
        self._execute_concurrent(stages, deps, run)

    def _execute_concurrent(self, stages, deps, run):
        n = len(stages)
        remaining = [len(d) for d in deps]
        dependents = [[] for _ in range(n)]
        for j, dep_set in enumerate(deps):
            for i in dep_set:
                dependents[i].append(j)
        failure = None
        workers = self.max_workers or min(32, n)
        with ThreadPoolExecutor(max_workers=workers) as pool:
            futures = {
                pool.submit(run, i): i
                for i in range(n) if remaining[i] == 0
            }
            while futures:
                done, _ = wait(futures, return_when=FIRST_COMPLETED)
                for future in done:
                    index = futures.pop(future)
                    error = future.exception()
                    if error is not None and failure is None:
                        failure = error  # stop scheduling new stages
                    for j in dependents[index]:
                        remaining[j] -= 1
                        if remaining[j] == 0 and failure is None:
                            futures[pool.submit(run, j)] = j
        if failure is not None:
            raise failure


class _StageRunner:
    """Executes one stage: cache lookup, retries, failure policy."""

    def __init__(self, stages, state, report, lock, cache, keys,
                 tracer):
        self._stages = stages
        self._state = state
        self._report = report
        self._lock = lock
        self._cache = cache
        self._keys = keys
        self._tracer = tracer

    def __call__(self, index):
        stage = self._stages[index]
        if self._replay_from_cache(index, stage):
            return
        emit(self._tracer, "stage_start", stage.name, stage.layer)
        attempts = 0
        while True:
            view = _ContractView(self._state, stage, self._lock)
            started = time.perf_counter()
            try:
                outcome = stage.function(view)
            except ContractViolation:
                raise  # programming error: never retried or absorbed
            except Exception as exc:
                elapsed = time.perf_counter() - started
                if attempts < stage.retries:
                    attempts += 1
                    emit(self._tracer, "stage_retry", stage.name,
                         stage.layer, attempt=attempts, error=str(exc))
                    continue
                self._apply_policy(stage, exc, elapsed, attempts)
                return
            elapsed = time.perf_counter() - started
            self._record_success(index, stage, outcome, elapsed,
                                 attempts, view)
            return

    # -- outcomes ------------------------------------------------------------

    def _replay_from_cache(self, index, stage):
        key = self._keys[index]
        if self._cache is None or key is None:
            return False
        entry = self._cache.get(key)
        if entry is None:
            return False
        started = time.perf_counter()
        with self._lock:
            self._state.update(entry.delta)
        elapsed = time.perf_counter() - started
        emit(self._tracer, "cache_hit", stage.name, stage.layer)
        with self._lock:
            self._report.add(stage.layer, stage.name, entry.summary,
                             elapsed, cache_hit=True, **entry.details)
        return True

    def _record_success(self, index, stage, outcome, elapsed, attempts,
                        view):
        if isinstance(outcome, tuple):
            summary, details = outcome
        else:
            summary, details = outcome, {}
        key = self._keys[index]
        if self._cache is not None and key is not None:
            with self._lock:
                delta = {k: self._state[k] for k in view.written
                         if k in self._state}
            self._cache.store(key, summary, details, delta)
        emit(self._tracer, "stage_end", stage.name, stage.layer,
             seconds=elapsed)
        with self._lock:
            self._report.add(stage.layer, stage.name, summary, elapsed,
                             retries=attempts, **dict(details))

    def _apply_policy(self, stage, exc, elapsed, attempts):
        emit(self._tracer, "stage_error", stage.name, stage.layer,
             error=str(exc), retries=attempts)
        if stage.on_error == "skip":
            emit(self._tracer, "stage_skip", stage.name, stage.layer)
            with self._lock:
                self._report.add(stage.layer, stage.name,
                                 f"skipped: {exc}", elapsed,
                                 status="skipped", retries=attempts,
                                 error=str(exc))
            return
        if stage.on_error == "fallback":
            self._run_fallback(stage, exc, elapsed, attempts)
            return
        with self._lock:
            self._report.add(stage.layer, stage.name,
                             f"failed: {exc}", elapsed,
                             status="failed", retries=attempts,
                             error=str(exc))
        raise StageFailure(
            stage.name,
            f"stage {stage.name!r} failed after {attempts + 1} "
            f"attempt(s): {exc}",
            report=self._report, state=self._state,
        ) from exc

    def _run_fallback(self, stage, exc, elapsed, attempts):
        emit(self._tracer, "stage_fallback", stage.name, stage.layer)
        view = _ContractView(self._state, stage, self._lock)
        started = time.perf_counter()
        try:
            outcome = stage.fallback(view)
        except ContractViolation:
            raise
        except Exception as fallback_exc:
            total = elapsed + time.perf_counter() - started
            with self._lock:
                self._report.add(stage.layer, stage.name,
                                 f"failed: {fallback_exc}", total,
                                 status="failed", retries=attempts,
                                 error=str(fallback_exc))
            raise StageFailure(
                stage.name,
                f"stage {stage.name!r} fallback failed: {fallback_exc}",
                report=self._report, state=self._state,
            ) from fallback_exc
        total = elapsed + time.perf_counter() - started
        if isinstance(outcome, tuple):
            summary, details = outcome
        else:
            summary, details = outcome, {}
        with self._lock:
            self._report.add(stage.layer, stage.name, summary, total,
                             status="fallback", retries=attempts,
                             error=str(exc), **dict(details))
