"""The DAG scheduler: concurrent stage execution with failure policies.

Given stages and their resolved dependencies, the scheduler runs
every stage whose dependencies are satisfied.  *When* a stage may run
is decided here, over a backend-agnostic
:class:`~repro.core.dag.Frontier`; *where* its attempts run is
delegated to a pluggable :class:`~repro.core.executors.Executor` —
threads by default (right for I/O-bound and GIL-releasing numpy
stages), worker processes for CPU-bound pure-Python stages, or
serial for debugging.  Whatever the backend, orchestration (retries,
backoff, failure policies, commits, events, cache replay) happens on
the parent's threads, so traces, metrics and reports are identical
across backends.

Chain-shaped DAGs — which every legacy wildcard-contract pipeline
resolves to — are detected and executed inline in the calling
thread: identical semantics to the old for-loop, zero pool overhead.
(A non-``concurrent`` backend such as ``SerialExecutor`` forces the
same deterministic topological-order path for any DAG shape.)

Execution is *transactional*: each attempt runs against a buffering
:class:`~repro.core.stage._ContractView` and its writes (including
deletions) commit to shared state atomically only on success.  A
failed, retried, skipped, timed-out or cancelled attempt commits
nothing — shared state is exactly what it was before the attempt.

Per-stage failure handling:

* ``retries=N`` re-invokes the stage up to N extra times, sleeping
  an exponentially growing, jittered backoff between attempts,
* then the stage's policy applies: ``fail`` aborts the run (raising
  :class:`StageFailure` carrying the partial report), ``skip``
  records the error and lets the rest of the DAG proceed,
  ``fallback`` runs the stage's fallback callable instead.

Bounded execution:

* ``Stage(timeout=...)`` limits one attempt's wall clock; the view
  raises :class:`StageTimeout` cooperatively at the next state
  access (and the runner re-checks when the attempt returns), after
  which retries / the failure policy apply and the record's status
  becomes ``"timed_out"`` if the policy is ``fail``;
* ``deadline=`` bounds the whole run; when it expires the run is
  cancelled, in-flight attempts abort at their next state access
  with :class:`StageCancelled`, unstarted stages are recorded as
  ``"cancelled"``, and :class:`RunDeadlineExceeded` is raised with
  the partial report and state;
* the first aborting failure likewise cancels every other in-flight
  stage, so nothing keeps mutating state after the run is doomed —
  and concurrent secondary failures are attached to the raised
  :class:`StageFailure` as ``.secondary`` instead of being dropped.

:class:`ContractViolation` is never retried or absorbed by a policy:
a stage touching undeclared state is a programming error, and hiding
it would poison every scheduling decision built on the contract.

Fault injection: a tracer that also exposes an
``inject(stage_name, attempt)`` method (see
:class:`~repro.core.faults.FaultInjector`) is called at the top of
every attempt and may sleep or raise to deterministically simulate
slow, flaky or hung stages.
"""

from __future__ import annotations

import contextlib
import threading
import time
from concurrent.futures import FIRST_COMPLETED, wait

from . import cache as _cache
from . import dag as _dag
from . import executors as _executors
from .events import StageEvent, emit
from .faults import attempt_jitter
from .stage import (
    ContractViolation,
    RunDeadlineExceeded,
    StageCancelled,
    StageFailure,
    StageTimeout,
    _ContractView,
)

__all__ = ["DagScheduler"]

#: Upper bound on a single backoff sleep, seconds.
BACKOFF_CAP = 2.0


class _RunControl:
    """Shared cancellation and deadline state for one run.

    ``cancel(reason)`` flips the run into a cancelled state (first
    reason wins); ``checkpoint(stage)`` is called by every state
    access and raises :class:`StageCancelled` once cancelled, making
    every stage's state traffic a cooperative cancellation point.
    """

    def __init__(self, deadline=None):
        self._started = time.perf_counter()
        self._deadline_at = (None if deadline is None
                             else self._started + float(deadline))
        self._cancelled = threading.Event()
        self._reason_lock = threading.Lock()  # noqa: RC034 -- per-run cancellation state; never crosses a process
        self.reason = None

    def cancel(self, reason):
        with self._reason_lock:
            if self.reason is None:
                self.reason = str(reason)
        self._cancelled.set()

    @property
    def cancelled(self):
        return self._cancelled.is_set()

    def deadline_exceeded(self):
        return (self._deadline_at is not None
                and time.perf_counter() > self._deadline_at)

    def remaining(self):
        """Seconds left in the run budget (``None`` = unbounded)."""
        if self._deadline_at is None:
            return None
        return max(0.0, self._deadline_at - time.perf_counter())

    def checkpoint(self, stage_name):
        if not self.cancelled and self.deadline_exceeded():
            self.cancel("run deadline exceeded")
        if self.cancelled:
            raise StageCancelled(stage_name, self.reason)


class DagScheduler:
    """Executes a resolved stage DAG against a shared state dict."""

    def __init__(self, max_workers=None):
        self.max_workers = max_workers

    def execute(self, stages, deps, state, report, *, cache=None,
                tracer=None, deadline=None, copy_on_read=False,
                metrics=None, profiler=None, executor=None,
                run_id=None, cache_keys=None):
        """Run all stages; mutates ``state`` and ``report`` in place.

        ``executor`` selects the backend (an
        :class:`~repro.core.executors.Executor`, a name, or ``None``
        for the environment default); ``run_id`` seeds deterministic
        per-attempt jitter.  ``cache_keys`` (one key or ``None`` per
        stage) overrides content-keying entirely — streaming sessions
        pass precomputed replay/execute keys so no fingerprinting of
        the initial state ever happens on the tick path.
        """
        executor = _executors.resolve_executor(executor)
        lock = threading.RLock()
        control = _RunControl(deadline)
        if cache_keys is not None:
            keys = list(cache_keys)
            if len(keys) != len(stages):
                raise ValueError(
                    f"cache_keys has {len(keys)} entries for "
                    f"{len(stages)} stages")
        else:
            keys = (_cache.stage_keys(stages, deps, state)
                    if cache is not None else [None] * len(stages))
        session = executor.begin_run(stages,
                                     max_workers=self.max_workers,
                                     metrics=metrics)
        try:
            run = _StageRunner(stages, state, report, lock, cache,
                               keys, tracer, control,
                               copy_on_read=copy_on_read,
                               metrics=metrics, profiler=profiler,
                               session=session, run_id=run_id)
            if (not executor.concurrent or len(stages) <= 1
                    or _dag.is_chain(deps)):
                run.serial = True
                self._execute_chain(stages, run)
                return
            self._execute_concurrent(stages, deps, run, control,
                                     session)
        finally:
            session.finish()

    def _execute_chain(self, stages, run):
        for index in range(len(stages)):
            run.mark_ready(index)
            try:
                run(index)
            except BaseException:
                self._record_cancelled(stages,
                                       range(index + 1, len(stages)),
                                       run)
                raise

    def _execute_concurrent(self, stages, deps, run, control, session):
        frontier = _dag.Frontier(deps)
        failures = []
        futures = {}
        for i in frontier.take_ready():
            run.mark_ready(i)
            futures[session.submit(run, i)] = i
        while futures:
            done, _ = wait(futures, return_when=FIRST_COMPLETED)
            for future in done:
                index = futures.pop(future)
                error = future.exception()
                if error is not None:
                    failures.append(error)
                    # Cancel every other in-flight stage: their
                    # next state access aborts the attempt, and
                    # nothing they did so far was committed.
                    control.cancel(
                        f"stage {stages[index].name!r} aborted "
                        "the run")
                for j in frontier.complete(index):
                    if not failures and not control.cancelled:
                        frontier.claim(j)
                        run.mark_ready(j)
                        futures[session.submit(run, j)] = j
        unrun = frontier.unstarted()
        if failures:
            self._record_cancelled(stages, unrun, run)
            primary = failures[0]
            if isinstance(primary, StageFailure):
                primary.secondary = failures[1:]
            raise primary
        if control.cancelled:
            self._record_cancelled(stages, unrun, run)
            raise RunDeadlineExceeded(
                f"run deadline expired with {len(unrun)} stage(s) "
                "unexecuted",
                report=run.report, state=run.state)

    def _record_cancelled(self, stages, indices, run):
        """Audit-trail records for stages the abort kept from running."""
        for j in indices:
            run.record_cancelled(stages[j], "run aborted")


class _StageRunner:
    """Executes one stage: cache lookup, retries, failure policy.

    Also the engine's telemetry source: every attempt, retry, outcome
    and duration is published into the run's
    :class:`~repro.observability.MetricsRegistry` (when given), and a
    :class:`~repro.observability.RunProfiler` (when given) brackets
    each stage with wall/CPU/memory baselines in the worker thread.
    """

    def __init__(self, stages, state, report, lock, cache, keys,
                 tracer, control, *, copy_on_read=False, metrics=None,
                 profiler=None, session=None, run_id=None):
        self._stages = stages
        self.state = state
        self.report = report
        self._lock = lock
        self._cache = cache
        self._keys = keys
        self._tracer = tracer
        self._control = control
        self._copy_on_read = copy_on_read
        self._inject = getattr(tracer, "inject", None)
        self._profiler = profiler
        self._session = (session if session is not None
                         else _executors._Session())
        self._run_id = "" if run_id is None else str(run_id)
        self._ready = {}
        self.serial = False
        if metrics is not None:
            self._m_attempts = metrics.counter(
                "engine.stage_attempts_total",
                "Stage execution attempts, including retries")
            self._m_retries = metrics.counter(
                "engine.stage_retries_total",
                "Retry attempts after a failed stage attempt")
            self._m_outcomes = metrics.counter(
                "engine.stage_outcomes_total",
                "Terminal stage outcomes by report status")
            self._m_replays = metrics.counter(
                "engine.stage_cache_replays_total",
                "Stages served from the StageCache instead of running")
            self._m_duration = metrics.histogram(
                "engine.stage_duration_seconds",
                "Stage wall-clock duration across attempts")
            self._m_queue_wait = metrics.histogram(
                "engine.stage_queue_wait_seconds",
                "Delay between a stage becoming ready and starting")
        else:
            self._m_attempts = self._m_retries = None
            self._m_outcomes = self._m_replays = None
            self._m_duration = self._m_queue_wait = None

    # -- telemetry helpers ---------------------------------------------------

    def mark_ready(self, index):
        """Called by the scheduler when a stage's deps are satisfied."""
        with self._lock:
            self._ready[index] = time.perf_counter()

    def _take_queue_wait(self, index):
        with self._lock:
            ready_at = self._ready.pop(index, None)
        if ready_at is None:
            return 0.0
        return max(0.0, time.perf_counter() - ready_at)

    def _count_outcome(self, stage, status):
        if self._m_outcomes is not None:
            self._m_outcomes.inc(stage=stage.name, status=status)

    def _observe_duration(self, stage, seconds):
        if self._m_duration is not None:
            self._m_duration.observe(seconds, stage=stage.name)

    def __call__(self, index):
        stage = self._stages[index]
        queue_wait = self._take_queue_wait(index)
        try:
            self._control.checkpoint(stage.name)
        except StageCancelled:
            reason = self._control.reason or "cancelled"
            self.record_cancelled(stage, reason)
            if reason == "run deadline exceeded":
                raise RunDeadlineExceeded(
                    f"run deadline expired before stage {stage.name!r}",
                    report=self.report, state=self.state)
            return
        if self._m_queue_wait is not None:
            self._m_queue_wait.observe(queue_wait, stage=stage.name)
        token = (self._profiler.stage_begin(stage.name, stage.layer,
                                            queue_wait,
                                            serial=self.serial)
                 if self._profiler is not None else None)
        try:
            self._run_stage(index, stage)
        finally:
            if self._profiler is not None:
                self._profiler.stage_end(token)

    def _run_stage(self, index, stage):
        if self._replay_from_cache(index, stage):
            return
        emit(self._tracer, "stage_start", stage.name, stage.layer)
        attempts = 0
        while True:
            emit(self._tracer, "stage_attempt", stage.name,
                 stage.layer, attempt=attempts)
            if self._m_attempts is not None:
                self._m_attempts.inc(stage=stage.name)
            view = _ContractView(self.state, stage, self._lock,
                                 self._control,
                                 copy_on_read=self._copy_on_read)
            try:
                outcome = self._attempt(index, stage, view, attempts)
            except ContractViolation:
                raise  # programming error: never retried or absorbed
            except StageCancelled:
                self._record_run_cancelled(stage, view, attempts)
                return
            except Exception as exc:
                if attempts < stage.retries:
                    attempts += 1
                    emit(self._tracer, "stage_retry", stage.name,
                         stage.layer, attempt=attempts, error=str(exc))
                    if self._m_retries is not None:
                        self._m_retries.inc(stage=stage.name)
                    self._backoff(stage, attempts)
                    continue
                self._apply_policy(stage, exc, view.elapsed(), attempts)
                return
            self._record_success(index, stage, outcome, view, attempts)
            return

    def _attempt(self, index, stage, view, attempt):
        """One bounded attempt: inject faults, run, enforce timeout."""
        if self._inject is not None:
            self._inject(stage.name, attempt)
        if self._session.remote(index):
            return self._remote_attempt(index, stage, view, attempt)
        outcome = stage.function(view)
        # An attempt that returns over budget is as timed out as one
        # caught mid-flight: it must not commit.
        if view.timed_out():
            raise StageTimeout(stage.name, stage.timeout)
        return outcome

    def _remote_attempt(self, index, stage, view, attempt):
        """Ship the attempt to the backend's workers and graft the
        returned delta into this attempt's transactional buffers, so
        commit, rollback, retries and cache storage behave exactly as
        for an in-process attempt."""
        outcome, delta, deleted, events = self._session.run_attempt(
            index, stage, self.state, self._lock, self._control,
            attempt)
        for payload in events:
            if self._tracer is not None:
                with contextlib.suppress(Exception):
                    self._tracer.on_event(StageEvent.from_dict(payload))
        for key, value in delta.items():
            view._writes[key] = value
            view._deleted.discard(key)
            view.written.add(key)
        for key in deleted:
            view._writes.pop(key, None)
            view._deleted.add(key)
            view.written.add(key)
        if view.timed_out():
            raise StageTimeout(stage.name, stage.timeout)
        return outcome

    def _backoff(self, stage, attempt):
        """Jittered exponential pause before the next attempt.

        The jitter factor is derived deterministically from
        (run_id, stage, attempt) — see
        :func:`~repro.core.faults.attempt_jitter` — never from
        process-local RNG state, so reruns of the same run_id back
        off identically on every backend.
        """
        if stage.backoff <= 0:
            return
        delay = min(BACKOFF_CAP, stage.backoff * 2 ** (attempt - 1))
        delay *= attempt_jitter(self._run_id, stage.name, attempt)
        budget = self._control.remaining()
        if budget is not None:
            delay = min(delay, budget)
        if delay > 0:
            time.sleep(delay)

    # -- outcomes ------------------------------------------------------------

    def record_cancelled(self, stage, why):
        emit(self._tracer, "stage_cancelled", stage.name, stage.layer,
             reason=why)
        self._count_outcome(stage, "cancelled")
        with self._lock:
            self.report.add(stage.layer, stage.name,
                             f"cancelled: {why}", 0.0,
                             status="cancelled", error=str(why))

    def _record_run_cancelled(self, stage, view, attempts):
        reason = self._control.reason or "cancelled"
        emit(self._tracer, "stage_cancelled", stage.name, stage.layer,
             reason=reason)
        self._count_outcome(stage, "cancelled")
        with self._lock:
            self.report.add(stage.layer, stage.name,
                             f"cancelled: {reason}", view.elapsed(),
                             status="cancelled", retries=attempts,
                             error=reason)
        if self._control.reason == "run deadline exceeded":
            raise RunDeadlineExceeded(
                f"run deadline expired during stage {stage.name!r}",
                report=self.report, state=self.state)

    def _replay_from_cache(self, index, stage):
        key = self._keys[index]
        if self._cache is None or key is None:
            return False
        entry = self._cache.get(key)
        if entry is None:
            return False
        started = time.perf_counter()
        delta, deleted = entry.snapshot()
        with self._lock:
            self.state.update(delta)
            for k in deleted:
                self.state.pop(k, None)
        elapsed = time.perf_counter() - started
        emit(self._tracer, "cache_hit", stage.name, stage.layer)
        if self._m_replays is not None:
            self._m_replays.inc(stage=stage.name)
        self._count_outcome(stage, "ok")
        self._observe_duration(stage, elapsed)
        with self._lock:
            self.report.add(stage.layer, stage.name, entry.summary,
                             elapsed, cache_hit=True, **entry.details)
        return True

    def _record_success(self, index, stage, outcome, view, attempts):
        if isinstance(outcome, tuple):
            summary, details = outcome
        else:
            summary, details = outcome, {}
        elapsed = view.elapsed()
        delta, deleted = view.commit()
        key = self._keys[index]
        if self._cache is not None and key is not None:
            self._cache.store(key, summary, details, delta, deleted)
        emit(self._tracer, "stage_end", stage.name, stage.layer,
             seconds=elapsed)
        self._count_outcome(stage, "ok")
        self._observe_duration(stage, elapsed)
        with self._lock:
            self.report.add(stage.layer, stage.name, summary, elapsed,
                             retries=attempts, **dict(details))

    def _apply_policy(self, stage, exc, elapsed, attempts):
        timed_out = isinstance(exc, StageTimeout)
        kind = "stage_timeout" if timed_out else "stage_error"
        emit(self._tracer, kind, stage.name, stage.layer,
             error=str(exc), retries=attempts)
        if stage.on_error == "skip":
            emit(self._tracer, "stage_skip", stage.name, stage.layer)
            self._count_outcome(stage, "skipped")
            self._observe_duration(stage, elapsed)
            with self._lock:
                self.report.add(stage.layer, stage.name,
                                 f"skipped: {exc}", elapsed,
                                 status="skipped", retries=attempts,
                                 error=str(exc))
            return
        if stage.on_error == "fallback":
            self._run_fallback(stage, exc, elapsed, attempts)
            return
        status = "timed_out" if timed_out else "failed"
        self._count_outcome(stage, status)
        self._observe_duration(stage, elapsed)
        with self._lock:
            self.report.add(stage.layer, stage.name,
                             f"{status.replace('_', ' ')}: {exc}",
                             elapsed, status=status, retries=attempts,
                             error=str(exc))
        raise StageFailure(
            stage.name,
            f"stage {stage.name!r} {status.replace('_', ' ')} after "
            f"{attempts + 1} attempt(s): {exc}",
            report=self.report, state=self.state,
        ) from exc

    def _run_fallback(self, stage, exc, elapsed, attempts):
        emit(self._tracer, "stage_fallback", stage.name, stage.layer)
        view = _ContractView(self.state, stage, self._lock,
                             self._control,
                             copy_on_read=self._copy_on_read)
        try:
            outcome = stage.fallback(view)
        except ContractViolation:
            raise
        except StageCancelled:
            self._record_run_cancelled(stage, view, attempts)
            return
        except Exception as fallback_exc:
            total = elapsed + view.elapsed()
            emit(self._tracer, "stage_error", stage.name, stage.layer,
                 error=str(fallback_exc), retries=attempts,
                 fallback=True)
            self._count_outcome(stage, "failed")
            self._observe_duration(stage, total)
            with self._lock:
                self.report.add(stage.layer, stage.name,
                                 f"failed: {fallback_exc}", total,
                                 status="failed", retries=attempts,
                                 error=str(fallback_exc))
            raise StageFailure(
                stage.name,
                f"stage {stage.name!r} fallback failed: {fallback_exc}",
                report=self.report, state=self.state,
            ) from fallback_exc
        total = elapsed + view.elapsed()
        view.commit()
        if isinstance(outcome, tuple):
            summary, details = outcome
        else:
            summary, details = outcome, {}
        emit(self._tracer, "stage_end", stage.name, stage.layer,
             seconds=total, status="fallback")
        self._count_outcome(stage, "fallback")
        self._observe_duration(stage, total)
        with self._lock:
            self.report.add(stage.layer, stage.name, summary, total,
                             status="fallback", retries=attempts,
                             error=str(exc), **dict(details))
