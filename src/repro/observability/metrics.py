"""Thread-safe runtime metrics: counters, gauges and histograms.

The engine claims to be cache-aware, bounded and concurrent; this
module is how those claims become *numbers* at run time.  A
:class:`MetricsRegistry` holds named, labeled metric families:

* :class:`Counter` — monotonically increasing totals
  (``engine.stage_attempts_total``),
* :class:`Gauge` — instantaneous values that move both ways
  (``engine.stage_cache_entries``),
* :class:`Histogram` — sample distributions bucketed over *fixed*
  boundaries chosen at construction
  (``engine.stage_duration_seconds``).

Every metric family is labeled: ``counter.inc(stage="impute")`` and
``counter.inc(stage="forecast")`` are independent series of the same
family.  All mutation is lock-protected per family, so concurrent
stages hammering the same counter lose no increments — the property
``tests/test_observability.py`` stress-tests explicitly.

A process-global default registry (:func:`get_registry`) is what the
engine's components publish into unless handed an explicit registry;
tests swap it with :func:`use_registry` to observe a single run in
isolation.  :meth:`MetricsRegistry.snapshot` renders everything as
plain JSON-ready data for dashboards and artifacts.
"""

from __future__ import annotations

import contextlib
import threading

__all__ = [
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "set_registry",
    "use_registry",
]

#: Default histogram bucket upper bounds, in seconds — spanning
#: sub-millisecond kernel calls to minute-scale pipeline runs.  A
#: final implicit ``+inf`` bucket catches everything beyond.
DEFAULT_BUCKETS = (0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0,
                   10.0, 60.0)


def _label_key(labels):
    """Canonical hashable key for a label set (sorted, stringified)."""
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class _Metric:
    """Shared machinery: name, description, lock, labeled series."""

    kind = "metric"

    def __init__(self, name, description=""):
        self.name = str(name)
        self.description = str(description)
        self._lock = threading.Lock()  # noqa: RC034 -- metric handles are process-local; workers merge snapshots
        self._series = {}

    def labels(self):
        """All label sets seen so far, as dicts."""
        with self._lock:
            return [dict(key) for key in self._series]

    def _snapshot_series(self):
        raise NotImplementedError


class Counter(_Metric):
    """A monotonically increasing total, per label set."""

    kind = "counter"

    def inc(self, amount=1, **labels):
        amount = float(amount)
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        key = _label_key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0.0) + amount
            return self._series[key]

    def value(self, **labels):
        """Current total for one label set (0.0 if never incremented)."""
        with self._lock:
            return self._series.get(_label_key(labels), 0.0)

    def total(self):
        """Sum across every label set."""
        with self._lock:
            return sum(self._series.values())

    def _snapshot_series(self):
        with self._lock:
            return [{"labels": dict(key), "value": value}
                    for key, value in sorted(self._series.items())]


class Gauge(_Metric):
    """An instantaneous value that can move both ways, per label set."""

    kind = "gauge"

    def set(self, value, **labels):
        with self._lock:
            self._series[_label_key(labels)] = float(value)

    def inc(self, amount=1, **labels):
        key = _label_key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0.0) + float(amount)
            return self._series[key]

    def dec(self, amount=1, **labels):
        return self.inc(-float(amount), **labels)

    def value(self, **labels):
        with self._lock:
            return self._series.get(_label_key(labels), 0.0)

    def _snapshot_series(self):
        with self._lock:
            return [{"labels": dict(key), "value": value}
                    for key, value in sorted(self._series.items())]


class Histogram(_Metric):
    """Sample distribution over fixed bucket boundaries, per label set.

    ``buckets`` is an increasing tuple of upper bounds; a sample lands
    in the first bucket whose bound it does not exceed, or in the
    implicit final ``+inf`` bucket.  Each series tracks count, sum,
    min and max alongside the bucket counts, so snapshots can report
    rates and tails without keeping raw samples.
    """

    kind = "histogram"

    def __init__(self, name, description="", buckets=DEFAULT_BUCKETS):
        super().__init__(name, description)
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if any(b >= c for b, c in zip(bounds, bounds[1:])):
            raise ValueError("bucket bounds must be strictly increasing")
        self.buckets = bounds

    def observe(self, value, **labels):
        value = float(value)
        key = _label_key(labels)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = {"count": 0, "sum": 0.0, "min": value,
                          "max": value,
                          "bucket_counts": [0] * (len(self.buckets) + 1)}
                self._series[key] = series
            series["count"] += 1
            series["sum"] += value
            series["min"] = min(series["min"], value)
            series["max"] = max(series["max"], value)
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    series["bucket_counts"][i] += 1
                    break
            else:
                series["bucket_counts"][-1] += 1

    def absorb(self, sample, **labels):
        """Merge one snapshot series dict into this family's series.

        ``sample`` has the :meth:`_snapshot_series` shape (``count``,
        ``sum``, ``min``, ``max``, ``bucket_counts``); bucket
        boundaries must match — this is how worker-process histograms
        fold into the parent registry without shipping raw samples.
        """
        counts = [int(c) for c in sample["bucket_counts"]]
        if len(counts) != len(self.buckets) + 1:
            raise ValueError(
                f"histogram {self.name!r}: cannot absorb a snapshot "
                f"with {len(counts)} bucket counts into "
                f"{len(self.buckets) + 1} buckets")
        key = _label_key(labels)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                self._series[key] = {
                    "count": int(sample["count"]),
                    "sum": float(sample["sum"]),
                    "min": float(sample["min"]),
                    "max": float(sample["max"]),
                    "bucket_counts": counts,
                }
                return
            series["count"] += int(sample["count"])
            series["sum"] += float(sample["sum"])
            series["min"] = min(series["min"], float(sample["min"]))
            series["max"] = max(series["max"], float(sample["max"]))
            series["bucket_counts"] = [
                a + b for a, b in zip(series["bucket_counts"], counts)]

    def count(self, **labels):
        """Number of samples observed for one label set."""
        with self._lock:
            series = self._series.get(_label_key(labels))
            return 0 if series is None else series["count"]

    def sum(self, **labels):
        with self._lock:
            series = self._series.get(_label_key(labels))
            return 0.0 if series is None else series["sum"]

    def total_count(self):
        """Samples observed across *all* label sets."""
        with self._lock:
            return sum(s["count"] for s in self._series.values())

    def quantile(self, q, **labels):
        """Estimated ``q``-quantile for one label set, from buckets.

        Standard bucketed estimation (what dashboards compute from
        exported histograms): find the bucket holding the target rank
        and interpolate linearly inside it.  The tracked per-series
        ``min`` / ``max`` clamp the first and last (``+inf``) buckets,
        so the estimate never leaves the observed range.  Returns
        ``None`` when the series has no samples.
        """
        q = float(q)
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"q must be in [0, 1], got {q}")
        with self._lock:
            series = self._series.get(_label_key(labels))
            if series is None or not series["count"]:
                return None
            counts = list(series["bucket_counts"])
            low, high = series["min"], series["max"]
            total = series["count"]
        target = q * total
        cumulative = 0
        for i, count in enumerate(counts):
            if not count:
                continue
            if cumulative + count >= target:
                lower = 0.0 if i == 0 else self.buckets[i - 1]
                upper = high if i == len(self.buckets) \
                    else self.buckets[i]
                lower = min(max(lower, low), upper)
                upper = max(min(upper, high), lower)
                fraction = (target - cumulative) / count
                return lower + (upper - lower) * min(max(fraction,
                                                         0.0), 1.0)
            cumulative += count
        return high

    def _snapshot_series(self):
        with self._lock:
            return [
                {"labels": dict(key), "count": s["count"],
                 "sum": s["sum"], "min": s["min"], "max": s["max"],
                 "mean": s["sum"] / s["count"],
                 "bucket_counts": list(s["bucket_counts"])}
                for key, s in sorted(self._series.items())
            ]


class MetricsRegistry:
    """A named collection of metric families.

    ``counter`` / ``gauge`` / ``histogram`` are get-or-create: asking
    for an existing name returns the existing family (and raises
    ``TypeError`` if the kinds clash), so independent components can
    publish into the same family without coordination.
    """

    def __init__(self):
        self._lock = threading.Lock()  # noqa: RC034 -- process-global registry; workers ship snapshot dicts
        self._metrics = {}

    def _get_or_create(self, cls, name, description, **kwargs):
        with self._lock:
            metric = self._metrics.get(name)
            if metric is not None:
                if not isinstance(metric, cls):
                    raise TypeError(
                        f"metric {name!r} already registered as "
                        f"{metric.kind}, not {cls.kind}"
                    )
                return metric
            metric = cls(name, description, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(self, name, description=""):
        return self._get_or_create(Counter, name, description)

    def gauge(self, name, description=""):
        return self._get_or_create(Gauge, name, description)

    def histogram(self, name, description="", buckets=DEFAULT_BUCKETS):
        return self._get_or_create(Histogram, name, description,
                                   buckets=buckets)

    def get(self, name):
        """The named family, or ``None``."""
        with self._lock:
            return self._metrics.get(name)

    def names(self):
        with self._lock:
            return sorted(self._metrics)

    def reset(self):
        """Drop every family (tests; a fresh registry is equivalent)."""
        with self._lock:
            self._metrics.clear()

    def merge_snapshot(self, snapshot):
        """Fold another registry's :meth:`snapshot` into this one.

        The cross-process aggregation path: an executor worker runs
        each stage attempt against a fresh registry and ships the
        snapshot back with the result; merging it here keeps the
        parent's ``engine.*`` series complete.  Counters add their
        totals, histograms absorb counts/sums/bucket tallies
        (boundaries must match), and gauges take the incoming value
        (last write wins — gauges are instantaneous by definition).
        """
        for name, entry in dict(snapshot).items():
            kind = entry.get("type")
            series = entry.get("series", ())
            if kind == "counter":
                counter = self.counter(name,
                                       entry.get("description", ""))
                for sample in series:
                    counter.inc(sample["value"], **sample["labels"])
            elif kind == "gauge":
                gauge = self.gauge(name, entry.get("description", ""))
                for sample in series:
                    gauge.set(sample["value"], **sample["labels"])
            elif kind == "histogram":
                histogram = self.histogram(
                    name, entry.get("description", ""),
                    buckets=tuple(entry.get("buckets",
                                            DEFAULT_BUCKETS)))
                for sample in series:
                    histogram.absorb(sample, **sample["labels"])
            else:
                raise ValueError(
                    f"cannot merge metric {name!r} of unknown type "
                    f"{kind!r}")
        return self

    def snapshot(self):
        """Everything, as plain JSON-ready data keyed by family name."""
        with self._lock:
            metrics = list(self._metrics.values())
        out = {}
        for metric in sorted(metrics, key=lambda m: m.name):
            entry = {
                "type": metric.kind,
                "description": metric.description,
                "series": metric._snapshot_series(),
            }
            if isinstance(metric, Histogram):
                entry["buckets"] = list(metric.buckets)
            out[metric.name] = entry
        return out

    def __repr__(self):
        return f"MetricsRegistry(families={len(self.names())})"


_default_registry = MetricsRegistry()
_default_lock = threading.Lock()


def get_registry():
    """The process-global default registry the engine publishes into."""
    with _default_lock:
        return _default_registry


def set_registry(registry):
    """Replace the global default registry; returns the previous one."""
    global _default_registry
    if not isinstance(registry, MetricsRegistry):
        raise TypeError("registry must be a MetricsRegistry")
    with _default_lock:
        previous = _default_registry
        _default_registry = registry
        return previous


@contextlib.contextmanager
def use_registry(registry=None):
    """Temporarily swap the global registry (fresh one by default).

    The idiom for observing a single run in isolation::

        with use_registry() as metrics:
            pipeline.run(...)
        metrics.snapshot()
    """
    registry = registry if registry is not None else MetricsRegistry()
    previous = set_registry(registry)
    try:
        yield registry
    finally:
        set_registry(previous)
