"""Lightweight per-stage profiling for pipeline runs.

``DecisionPipeline.run(profile=True)`` attaches a :class:`RunProfiler`
to the scheduler; for every stage it records

* ``wall_seconds`` — the stage's wall clock across all attempts,
* ``cpu_seconds`` — CPU time consumed by the executing thread
  (``time.thread_time``), so a stage that sleeps or waits on I/O
  shows a wall/CPU gap,
* ``queue_wait_seconds`` — how long the stage sat ready in the
  scheduler before a worker picked it up (scheduler pressure),
* ``net_alloc_bytes`` / ``peak_alloc_bytes`` — ``tracemalloc`` deltas
  over the stage: net retained allocation and the traced-memory peak
  above the stage's baseline.

The profiler starts ``tracemalloc`` if it is not already tracing (and
stops it again when the run ends, leaving a caller's own tracing
untouched).  Peak deltas are exact for sequential (chain) pipelines;
under concurrent execution the interpreter-wide peak is shared, so a
stage's ``peak_alloc_bytes`` is an upper bound that may include a
neighbour's allocations — documented, deterministic behaviour rather
than a lie of precision.

Results land on :attr:`RunReport.profiles` as plain dicts, render in
:meth:`RunReport.render`, and are dumpable via ``python -m
repro.trace``.
"""

from __future__ import annotations

import threading
import time
import tracemalloc

__all__ = ["RunProfiler", "StageProfile"]


class StageProfile:
    """One stage's measured resource usage for a run."""

    __slots__ = ("stage", "layer", "wall_seconds", "cpu_seconds",
                 "queue_wait_seconds", "net_alloc_bytes",
                 "peak_alloc_bytes")

    def __init__(self, stage, layer, wall_seconds, cpu_seconds,
                 queue_wait_seconds, net_alloc_bytes,
                 peak_alloc_bytes):
        self.stage = str(stage)
        self.layer = str(layer)
        self.wall_seconds = float(wall_seconds)
        self.cpu_seconds = float(cpu_seconds)
        self.queue_wait_seconds = float(queue_wait_seconds)
        self.net_alloc_bytes = int(net_alloc_bytes)
        self.peak_alloc_bytes = int(peak_alloc_bytes)

    def as_dict(self):
        return {
            "stage": self.stage,
            "layer": self.layer,
            "wall_seconds": self.wall_seconds,
            "cpu_seconds": self.cpu_seconds,
            "queue_wait_seconds": self.queue_wait_seconds,
            "net_alloc_bytes": self.net_alloc_bytes,
            "peak_alloc_bytes": self.peak_alloc_bytes,
        }

    def __repr__(self):
        return (f"StageProfile({self.layer}/{self.stage}: "
                f"wall={self.wall_seconds:.4f}s "
                f"cpu={self.cpu_seconds:.4f}s "
                f"queue={self.queue_wait_seconds:.4f}s "
                f"net={self.net_alloc_bytes}B "
                f"peak={self.peak_alloc_bytes}B)")


class _StageToken:
    """Baseline measurements captured when a stage begins executing."""

    __slots__ = ("stage", "layer", "queue_wait", "wall0", "cpu0",
                 "mem0")

    def __init__(self, stage, layer, queue_wait, mem0):
        self.stage = stage
        self.layer = layer
        self.queue_wait = queue_wait
        self.wall0 = time.perf_counter()
        self.cpu0 = time.thread_time()
        self.mem0 = mem0


class RunProfiler:
    """Collects :class:`StageProfile` records during one run.

    The scheduler calls :meth:`stage_begin` in the worker thread just
    before a stage's first attempt and :meth:`stage_end` when the
    stage reaches any terminal outcome; both are cheap (two clock
    reads and a ``tracemalloc.get_traced_memory`` call).
    """

    def __init__(self):
        self._lock = threading.Lock()  # noqa: RC034 -- per-run profiler; results exported as plain dicts
        self._profiles = {}
        self._started_tracemalloc = False
        self._active = False

    def start(self):
        if not tracemalloc.is_tracing():
            tracemalloc.start()
            self._started_tracemalloc = True
        self._active = True
        return self

    def stop(self):
        self._active = False
        if self._started_tracemalloc:
            tracemalloc.stop()
            self._started_tracemalloc = False
        return self

    def stage_begin(self, stage, layer, queue_wait=0.0, *,
                    serial=False):
        """Capture baselines in the executing thread; returns a token.

        ``serial=True`` (chain execution) additionally resets the
        tracemalloc peak so the stage's peak delta is exact rather
        than an upper bound shared with concurrent neighbours.
        """
        if not self._active:
            return None
        if serial and tracemalloc.is_tracing():
            tracemalloc.reset_peak()
        mem0 = (tracemalloc.get_traced_memory()[0]
                if tracemalloc.is_tracing() else 0)
        return _StageToken(stage, layer, queue_wait, mem0)

    def stage_end(self, token):
        """Close a token and record the stage's profile."""
        if token is None or not self._active:
            return None
        wall = time.perf_counter() - token.wall0
        cpu = time.thread_time() - token.cpu0
        if tracemalloc.is_tracing():
            current, peak = tracemalloc.get_traced_memory()
            net = current - token.mem0
            peak_delta = max(0, peak - token.mem0)
        else:
            net = peak_delta = 0
        profile = StageProfile(token.stage, token.layer, wall, cpu,
                               token.queue_wait, net, peak_delta)
        with self._lock:
            self._profiles[token.stage] = profile
        return profile

    def profiles(self):
        """``{stage name: profile dict}`` for everything recorded."""
        with self._lock:
            return {name: profile.as_dict()
                    for name, profile in self._profiles.items()}
