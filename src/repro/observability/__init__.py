"""First-class runtime observability: metrics, tracing, profiling.

The engine's resource-efficiency claims (concurrent scheduling,
content-keyed caching, bounded execution, memoized hot paths) are
verifiable at run time through three complementary surfaces:

* :mod:`repro.observability.metrics` — a thread-safe
  :class:`MetricsRegistry` of labeled counters, gauges and
  fixed-bucket histograms that the scheduler, stage cache, contract
  views, fault injector and the governance/decision serving caches
  publish into (a process-global default registry, swappable with
  :func:`use_registry`);
* :mod:`repro.observability.tracing` — :class:`SpanTracer`, which
  folds the engine's event stream into a run → stage → attempt span
  tree exportable as ``chrome://tracing`` JSON;
* :mod:`repro.observability.profiling` — :class:`RunProfiler`,
  activated with ``DecisionPipeline.run(profile=True)``, recording
  per-stage wall/CPU time, scheduler queue wait and ``tracemalloc``
  deltas onto the :class:`RunReport`.

``python -m repro.trace`` drives all three from the command line.
See ``docs/OBSERVABILITY.md`` for the metric-name table and formats.
"""

from .metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    set_registry,
    use_registry,
)
from .profiling import RunProfiler, StageProfile
from .tracing import Span, SpanTracer, TeeTracer

__all__ = [
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "RunProfiler",
    "Span",
    "SpanTracer",
    "StageProfile",
    "TeeTracer",
    "get_registry",
    "set_registry",
    "use_registry",
]
