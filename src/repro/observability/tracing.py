"""Structured span-based tracing over the engine's event stream.

The engine narrates a run as flat :class:`~repro.core.events.StageEvent`
objects; :class:`SpanTracer` folds that stream back into a *span tree*
— intervals with a start, an end, a status and a parent:

* one ``tick`` span per ``tick_start``/``tick_end`` pair of a
  streaming session, parenting the tick's run span,
* one ``run`` span per ``run_start``/``run_end`` pair,
* one ``stage`` span per stage (including zero-length spans for
  stages cancelled before they started and for cache replays),
* one ``attempt`` span per execution attempt under its stage span
  (retries, timeouts and cancellations each close an attempt with
  the matching status), and one ``fallback`` span when a stage's
  fallback callable runs.

Spans are timestamped with ``time.perf_counter()`` (monotonic, so
``start <= end`` always holds and nesting is checkable) plus a wall
clock for human display, and carry the emitting thread id — which is
exactly the shape of the Chrome trace-event format, so
:meth:`SpanTracer.to_chrome_trace` exports a JSON document that
``chrome://tracing`` / Perfetto loads directly.

:class:`SpanTracer` is a :class:`~repro.core.events.CollectingTracer`
(the raw events stay available via ``events`` / ``kinds()`` /
``of_kind()``) and is thread-safe: events from concurrent stages are
folded under one lock.  To combine it with a
:class:`~repro.core.faults.FaultInjector`, attach it as a forward
target (``faults.forward_to(spans)``) so injected-fault events reach
both buffers; :class:`TeeTracer` composes arbitrary tracers.
"""

from __future__ import annotations

import contextlib
import json
import threading

from ..core.events import CollectingTracer, Tracer

__all__ = ["Span", "SpanTracer", "TeeTracer"]

#: Event kinds exported as chrome-trace *instant* markers in addition
#: to any span bookkeeping they trigger.
INSTANT_KINDS = ("cache_hit", "fault_injected", "stage_retry",
                 "stage_skip", "stage_fallback")


class Span:
    """One traced interval: name, kind, status, parent and timing."""

    __slots__ = ("span_id", "parent_id", "name", "kind", "status",
                 "start", "end", "start_wall", "thread_id",
                 "attributes")

    def __init__(self, span_id, name, kind, start, start_wall,
                 thread_id, parent_id=None, **attributes):
        self.span_id = int(span_id)
        self.parent_id = parent_id
        self.name = str(name)
        self.kind = str(kind)
        self.status = None
        self.start = float(start)
        self.end = None
        self.start_wall = float(start_wall)
        self.thread_id = int(thread_id)
        self.attributes = dict(attributes)

    @property
    def duration(self):
        """Seconds from start to end (``None`` while open)."""
        if self.end is None:
            return None
        return self.end - self.start

    def close(self, status, end, **attributes):
        self.status = str(status)
        self.end = float(end)
        self.attributes.update(attributes)
        return self

    def as_dict(self):
        """Plain JSON-ready form (schema the golden-trace test pins)."""
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "kind": self.kind,
            "status": self.status,
            "start": self.start,
            "end": self.end,
            "start_wall": self.start_wall,
            "thread_id": self.thread_id,
            "attributes": dict(self.attributes),
        }

    def __repr__(self):
        dur = (f"{self.duration:.6f}s" if self.end is not None
               else "open")
        return (f"Span({self.kind}/{self.name} "
                f"[{self.status or 'open'}, {dur}])")


class SpanTracer(CollectingTracer):
    """Folds the engine's event stream into a span tree.

    Pass as ``tracer=`` to :meth:`DecisionPipeline.run`; afterwards
    :meth:`spans` holds the tree and :meth:`to_chrome_trace` /
    :meth:`export` render it for ``chrome://tracing``.
    """

    def __init__(self):
        super().__init__()
        self._span_lock = threading.RLock()  # noqa: RC034 -- process-local tracer; spans export as plain dicts
        self._spans = []
        self._next_id = 1
        self._instants = []  # (event, thread_id)
        self._run_span = None
        self._tick_span = None
        self._stage_spans = {}
        self._attempt_spans = {}
        self._pending_status = {}

    # -- construction helpers (all called under _span_lock) -----------------

    def _new_span(self, name, kind, event, parent, **attributes):
        span = Span(self._next_id, name, kind, event.monotonic,
                    event.timestamp, threading.get_ident(),
                    parent_id=parent.span_id if parent else None,
                    **attributes)
        self._next_id += 1
        self._spans.append(span)
        return span

    def _close_attempt(self, stage, status, event, **attributes):
        span = self._attempt_spans.pop(stage, None)
        if span is not None:
            span.close(status, event.monotonic, **attributes)
        return span

    def _close_stage(self, stage, status, event, **attributes):
        span = self._stage_spans.pop(stage, None)
        self._pending_status.pop(stage, None)
        if span is not None:
            span.close(status, event.monotonic, **attributes)
        return span

    # -- the tracer protocol -------------------------------------------------

    def on_event(self, event):
        super().on_event(event)  # keep the raw buffer
        with self._span_lock:
            self._fold(event)
        if event.kind in INSTANT_KINDS:
            with self._span_lock:
                self._instants.append((event, threading.get_ident()))

    def _fold(self, event):
        kind, stage = event.kind, event.stage
        if kind == "tick_start":
            name = f"tick-{event.data.get('tick', '?')}"
            self._tick_span = self._new_span(name, "tick", event, None,
                                             **event.data)
        elif kind == "tick_end":
            span, self._tick_span = self._tick_span, None
            if span is not None:
                span.close(event.data.get("status", "ok"),
                           event.monotonic,
                           **{k: v for k, v in event.data.items()
                              if k != "status"})
        elif kind == "run_start":
            self._stage_spans.clear()
            self._attempt_spans.clear()
            self._pending_status.clear()
            self._run_span = self._new_span("run", "run", event,
                                            self._tick_span,
                                            **event.data)
        elif kind == "stage_start":
            self._stage_spans[stage] = self._new_span(
                stage, "stage", event, self._run_span,
                layer=event.layer)
        elif kind == "stage_attempt":
            self._attempt_spans[stage] = self._new_span(
                stage, "attempt", event, self._stage_spans.get(stage),
                attempt=event.data.get("attempt", 0))
        elif kind == "stage_retry":
            # The retry event's "attempt" is the *next* attempt number;
            # keep the closing span's own attempt index intact.
            data = {("next_attempt" if key == "attempt" else key): value
                    for key, value in event.data.items()}
            self._close_attempt(stage, "retry", event, **data)
        elif kind == "stage_error":
            self._close_attempt(stage, "error", event, **event.data)
            self._pending_status[stage] = "failed"
        elif kind == "stage_timeout":
            self._close_attempt(stage, "timeout", event, **event.data)
            self._pending_status[stage] = "timed_out"
        elif kind == "stage_skip":
            self._close_stage(stage, "skipped", event)
        elif kind == "stage_fallback":
            self._attempt_spans[stage] = self._new_span(
                stage, "fallback", event, self._stage_spans.get(stage))
        elif kind == "stage_end":
            self._close_attempt(stage, "ok", event)
            self._close_stage(stage, event.data.get("status", "ok"),
                              event, **{k: v for k, v in
                                        event.data.items()
                                        if k != "status"})
        elif kind == "stage_cancelled":
            self._close_attempt(stage, "cancelled", event,
                                **event.data)
            if stage in self._stage_spans:
                self._close_stage(stage, "cancelled", event,
                                  **event.data)
            else:
                # Cancelled before it ever started: zero-length span
                # so every stage of the run is visible in the trace.
                span = self._new_span(stage, "stage", event,
                                      self._run_span,
                                      layer=event.layer, **event.data)
                span.close("cancelled", event.monotonic)
        elif kind == "cache_hit":
            span = self._new_span(stage, "stage", event,
                                  self._run_span, layer=event.layer,
                                  cached=True)
            span.close("cached", event.monotonic)
        elif kind == "run_end":
            for stage_name in list(self._attempt_spans):
                self._close_attempt(stage_name, "unclosed", event)
            for stage_name in list(self._stage_spans):
                status = self._pending_status.get(stage_name,
                                                  "unclosed")
                self._close_stage(stage_name, status, event)
            if self._run_span is not None:
                self._run_span.close(self._run_status(), event.monotonic,
                                     **event.data)
                self._run_span = None

    def _run_status(self):
        statuses = {span.status for span in self._spans
                    if span.kind == "stage"
                    and span.parent_id == (self._run_span.span_id
                                           if self._run_span else None)}
        if statuses & {"failed", "timed_out"}:
            return "failed"
        if "cancelled" in statuses:
            return "cancelled"
        return "ok"

    # -- inspection ----------------------------------------------------------

    def spans(self, kind=None, name=None, status=None):
        """Spans in creation order, optionally filtered."""
        with self._span_lock:
            spans = list(self._spans)
        if kind is not None:
            spans = [s for s in spans if s.kind == kind]
        if name is not None:
            spans = [s for s in spans if s.name == name]
        if status is not None:
            spans = [s for s in spans if s.status == status]
        return spans

    def span(self, name, kind="stage"):
        """The first span with this name and kind."""
        for s in self.spans(kind=kind, name=name):
            return s
        raise KeyError(f"no {kind} span named {name!r}")

    # -- export --------------------------------------------------------------

    def to_chrome_trace(self):
        """The trace as a ``chrome://tracing`` JSON-ready dict.

        Spans become complete (``"ph": "X"``) events with microsecond
        timestamps relative to the first span; marker events
        (:data:`INSTANT_KINDS`) become instants (``"ph": "i"``).
        """
        with self._span_lock:
            spans = list(self._spans)
            instants = list(self._instants)
        times = [s.start for s in spans]
        times.extend(e.monotonic for e, _ in instants)
        base = min(times) if times else 0.0

        def micros(seconds):
            return round((seconds - base) * 1e6, 3)

        trace_events = [{
            "ph": "M", "name": "process_name", "pid": 0,
            "args": {"name": "repro.DecisionPipeline"},
        }]
        for s in spans:
            end = s.end if s.end is not None else s.start
            args = {"status": s.status, "span_id": s.span_id,
                    "parent_id": s.parent_id}
            args.update({k: _jsonable(v)
                         for k, v in s.attributes.items()})
            trace_events.append({
                "name": s.name, "cat": s.kind, "ph": "X",
                "ts": micros(s.start),
                "dur": round((end - s.start) * 1e6, 3),
                "pid": 0, "tid": s.thread_id, "args": args,
            })
        for event, tid in instants:
            trace_events.append({
                "name": event.kind, "cat": "event", "ph": "i",
                "ts": micros(event.monotonic), "s": "t",
                "pid": 0, "tid": tid,
                "args": {"stage": event.stage,
                         **{k: _jsonable(v)
                            for k, v in event.data.items()}},
            })
        return {"traceEvents": trace_events, "displayTimeUnit": "ms"}

    def export(self, path):
        """Write the chrome trace JSON to ``path``; returns the path."""
        payload = json.dumps(self.to_chrome_trace(), indent=2,
                             sort_keys=True)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(payload + "\n")
        return path


def _jsonable(value):
    """Coerce an attribute to something ``json.dumps`` accepts."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return repr(value)


class TeeTracer(Tracer):
    """Fans one event stream out to several tracers.

    ``on_event`` forwards to every child, swallowing per-child
    errors; ``inject`` forwards to every child exposing it *without*
    swallowing — a raised fault must reach the scheduler.  Note that
    events a child generates internally (e.g. a
    :class:`FaultInjector`'s ``fault_injected``) land only in that
    child's own buffer; prefer ``CollectingTracer.forward_to`` when
    the composition is injector-plus-observer.
    """

    def __init__(self, *tracers):
        self.tracers = list(tracers)

    def on_event(self, event):
        for tracer in self.tracers:
            with contextlib.suppress(Exception):
                tracer.on_event(event)

    def inject(self, stage_name, attempt):
        for tracer in self.tracers:
            inject = getattr(tracer, "inject", None)
            if inject is not None:
                inject(stage_name, attempt)
