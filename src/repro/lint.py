"""Contract linter CLI: ``python -m repro.lint [paths...]``.

Statically checks every module that constructs a
:class:`~repro.core.pipeline.DecisionPipeline` against its declared
stage contracts, plus pipeline-level dataflow hazards and repo-local
conventions -- without importing or executing the analyzed code.

Examples::

    python -m repro.lint src examples            # human-readable text
    python -m repro.lint src --format=json       # machine-readable
    python -m repro.lint src --format=sarif      # code-scanning SARIF
    python -m repro.lint src --select RC00       # contract rules only
    python -m repro.lint src --select RC03       # concurrency rules
    python -m repro.lint src --ignore RC021      # drop one rule
    python -m repro.lint src --baseline lint.baseline.json
    python -m repro.lint --list-rules            # the rule catalogue

Exit status is 1 when any *error*-severity finding is reported (so CI
can gate on it), 0 otherwise; warnings never fail the run.

``--baseline FILE`` is the adoption path for new error-severity rule
families without a flag day: the first run writes every current
finding to FILE (and exits 0); subsequent runs suppress the recorded
findings and fail only on *new* ones.  ``--update-baseline`` rewrites
the file from the current findings.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from .analysis import ERROR, all_rules, analyze_paths

__all__ = ["main"]

#: Version pin of the SARIF 2.1.0 output (GitHub code scanning).
_SARIF_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/"
                 "sarif-spec/master/Schemata/sarif-schema-2.1.0.json")


def _render_text(findings, n_files, baselined=0):
    lines = [finding.render() for finding in findings]
    errors = sum(1 for f in findings if f.is_error)
    warnings = len(findings) - errors
    suffix = (f" ({baselined} baselined finding(s) suppressed)"
              if baselined else "")
    lines.append(f"{errors} error(s), {warnings} warning(s) in "
                 f"{n_files} file(s){suffix}")
    return "\n".join(lines)


def _render_json(findings, n_files, baselined=0):
    by_rule = {}
    for finding in findings:
        by_rule[finding.code] = by_rule.get(finding.code, 0) + 1
    errors = sum(1 for f in findings if f.is_error)
    report = {
        "findings": [finding.to_dict() for finding in findings],
        "summary": {
            "files": n_files,
            "errors": errors,
            "warnings": len(findings) - errors,
            "rules": dict(sorted(by_rule.items())),
        },
    }
    if baselined:
        report["summary"]["baselined"] = baselined
    return json.dumps(report, indent=2, sort_keys=False)


def _sarif_level(severity):
    return "error" if severity == ERROR else "warning"


def _render_sarif(findings, n_files, baselined=0):
    """SARIF 2.1.0: one run, the full rule catalogue, one result per
    finding -- the shape GitHub code scanning ingests directly."""
    rules = [{
        "id": rule.code,
        "name": rule.name,
        "shortDescription": {"text": rule.summary},
        "defaultConfiguration": {
            "level": _sarif_level(rule.severity)},
    } for rule in all_rules()]
    results = [{
        "ruleId": finding.code,
        "level": _sarif_level(finding.severity),
        "message": {"text": finding.message},
        "locations": [{
            "physicalLocation": {
                "artifactLocation": {
                    "uri": str(finding.path).replace("\\", "/"),
                    "uriBaseId": "%SRCROOT%",
                },
                "region": {
                    "startLine": finding.line,
                    "startColumn": finding.col,
                },
            },
        }],
    } for finding in findings]
    document = {
        "$schema": _SARIF_SCHEMA,
        "version": "2.1.0",
        "runs": [{
            "tool": {
                "driver": {
                    "name": "repro-lint",
                    "informationUri": (
                        "https://example.invalid/docs/"
                        "STATIC_ANALYSIS.md"),
                    "rules": rules,
                },
            },
            "results": results,
        }],
    }
    return json.dumps(document, indent=2, sort_keys=False)


# -- baseline adoption -------------------------------------------------------


def _baseline_key(finding):
    """Line-number-free fingerprint: survives unrelated edits above
    the finding, breaks (and so resurfaces) when the message-bearing
    facts change."""
    return (finding.path, finding.code, finding.message)


def _write_baseline(path, findings):
    counts = {}
    for finding in findings:
        counts[_baseline_key(finding)] = counts.get(
            _baseline_key(finding), 0) + 1
    entries = [{"path": key[0], "code": key[1], "message": key[2],
                "count": count}
               for key, count in sorted(counts.items())]
    document = {"version": 1, "entries": entries}
    Path(path).write_text(json.dumps(document, indent=2) + "\n",
                          encoding="utf-8")
    return len(findings)


def _apply_baseline(path, findings):
    """``(new_findings, n_suppressed)`` after consuming the baseline.

    Each recorded (path, code, message) fingerprint absorbs up to its
    recorded count of current findings; everything beyond that is new
    and stays in the report.
    """
    document = json.loads(Path(path).read_text(encoding="utf-8"))
    budget = {}
    for entry in document.get("entries", []):
        key = (entry["path"], entry["code"], entry["message"])
        budget[key] = budget.get(key, 0) + int(entry.get("count", 1))
    fresh = []
    suppressed = 0
    for finding in findings:
        key = _baseline_key(finding)
        if budget.get(key, 0) > 0:
            budget[key] -= 1
            suppressed += 1
        else:
            fresh.append(finding)
    return fresh, suppressed


def _render_rules():
    lines = ["rule   severity  name                      summary"]
    for rule in all_rules():
        lines.append(f"{rule.code}  {rule.severity:8s}  "
                     f"{rule.name:24s}  {rule.summary}")
    return "\n".join(lines)


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="Static contract analyzer for DecisionPipeline "
                    "modules: proves reads/writes conformance, DAG "
                    "hazards and repo conventions at lint time.",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src", "examples"],
        help="files or directories to analyze (default: src examples)")
    parser.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text",
        help="report format (default: text); sarif is SARIF 2.1.0, "
             "GitHub code-scanning compatible")
    parser.add_argument(
        "--select", action="append", default=None, metavar="CODE",
        help="only run rule codes with this prefix (repeatable)")
    parser.add_argument(
        "--ignore", action="append", default=None, metavar="CODE",
        help="skip rule codes with this prefix (repeatable)")
    parser.add_argument(
        "--output", metavar="FILE", default=None,
        help="also write the report to FILE")
    parser.add_argument(
        "--baseline", metavar="FILE", default=None,
        help="adoption file: written with the current findings when "
             "missing (exit 0); when present, recorded findings are "
             "suppressed and only new ones are reported")
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="rewrite --baseline FILE from the current findings")
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit")
    arguments = parser.parse_args(argv)

    if arguments.list_rules:
        print(_render_rules())
        return 0

    missing = [p for p in arguments.paths if not Path(p).exists()]
    if missing:
        parser.error(f"no such path(s): {', '.join(missing)}")

    if arguments.update_baseline and not arguments.baseline:
        parser.error("--update-baseline requires --baseline FILE")

    findings, n_files = analyze_paths(
        arguments.paths, select=arguments.select,
        ignore=arguments.ignore)

    baselined = 0
    if arguments.baseline:
        baseline_path = Path(arguments.baseline)
        if arguments.update_baseline or not baseline_path.exists():
            recorded = _write_baseline(baseline_path, findings)
            print(f"baseline written to {baseline_path}: {recorded} "
                  "finding(s) recorded; subsequent runs fail only on "
                  "new findings")
            return 0
        findings, baselined = _apply_baseline(baseline_path, findings)

    renderer = {"json": _render_json,
                "sarif": _render_sarif}.get(arguments.format,
                                            _render_text)
    report = renderer(findings, n_files, baselined)
    print(report)
    if arguments.output:
        Path(arguments.output).write_text(report + "\n",
                                          encoding="utf-8")
    return 1 if any(f.is_error for f in findings) else 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:
        # downstream pager/head closed the pipe; exit quietly
        # (devnull keeps the interpreter's final flush from raising)
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        sys.exit(0)
