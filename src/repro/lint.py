"""Contract linter CLI: ``python -m repro.lint [paths...]``.

Statically checks every module that constructs a
:class:`~repro.core.pipeline.DecisionPipeline` against its declared
stage contracts, plus pipeline-level dataflow hazards and repo-local
conventions -- without importing or executing the analyzed code.

Examples::

    python -m repro.lint src examples            # human-readable text
    python -m repro.lint src --format=json       # machine-readable
    python -m repro.lint src --select RC00       # contract rules only
    python -m repro.lint src --ignore RC021      # drop one rule
    python -m repro.lint --list-rules            # the rule catalogue

Exit status is 1 when any *error*-severity finding is reported (so CI
can gate on it), 0 otherwise; warnings never fail the run.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from .analysis import all_rules, analyze_paths

__all__ = ["main"]


def _render_text(findings, n_files):
    lines = [finding.render() for finding in findings]
    errors = sum(1 for f in findings if f.is_error)
    warnings = len(findings) - errors
    lines.append(f"{errors} error(s), {warnings} warning(s) in "
                 f"{n_files} file(s)")
    return "\n".join(lines)


def _render_json(findings, n_files):
    by_rule = {}
    for finding in findings:
        by_rule[finding.code] = by_rule.get(finding.code, 0) + 1
    errors = sum(1 for f in findings if f.is_error)
    report = {
        "findings": [finding.to_dict() for finding in findings],
        "summary": {
            "files": n_files,
            "errors": errors,
            "warnings": len(findings) - errors,
            "rules": dict(sorted(by_rule.items())),
        },
    }
    return json.dumps(report, indent=2, sort_keys=False)


def _render_rules():
    lines = ["rule   severity  name                      summary"]
    for rule in all_rules():
        lines.append(f"{rule.code}  {rule.severity:8s}  "
                     f"{rule.name:24s}  {rule.summary}")
    return "\n".join(lines)


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="Static contract analyzer for DecisionPipeline "
                    "modules: proves reads/writes conformance, DAG "
                    "hazards and repo conventions at lint time.",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src", "examples"],
        help="files or directories to analyze (default: src examples)")
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (default: text)")
    parser.add_argument(
        "--select", action="append", default=None, metavar="CODE",
        help="only run rule codes with this prefix (repeatable)")
    parser.add_argument(
        "--ignore", action="append", default=None, metavar="CODE",
        help="skip rule codes with this prefix (repeatable)")
    parser.add_argument(
        "--output", metavar="FILE", default=None,
        help="also write the report to FILE")
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit")
    arguments = parser.parse_args(argv)

    if arguments.list_rules:
        print(_render_rules())
        return 0

    missing = [p for p in arguments.paths if not Path(p).exists()]
    if missing:
        parser.error(f"no such path(s): {', '.join(missing)}")

    findings, n_files = analyze_paths(
        arguments.paths, select=arguments.select,
        ignore=arguments.ignore)
    renderer = (_render_json if arguments.format == "json"
                else _render_text)
    report = renderer(findings, n_files)
    print(report)
    if arguments.output:
        Path(arguments.output).write_text(report + "\n",
                                          encoding="utf-8")
    return 1 if any(f.is_error for f in findings) else 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:
        # downstream pager/head closed the pipe; exit quietly
        # (devnull keeps the interpreter's final flush from raising)
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        sys.exit(0)
