"""Command-line entry point: ``python -m repro``.

Small utilities for exploring the library without writing code:

* ``python -m repro demo`` — run the Figure-1 pipeline on synthetic
  traffic and print its run report;
* ``python -m repro leaderboard`` — run the built-in forecasting
  leaderboard (E24's grid) and print the table;
* ``python -m repro info`` — version and subsystem inventory.
"""

from __future__ import annotations

import argparse
import sys


def _command_info():
    import repro

    print(f"repro {repro.__version__}")
    print("Data-Governance-Analytics-Decision paradigm "
          "(ICDE 2025 tutorial reproduction)")
    print()
    subsystems = {
        "datatypes": "TimeSeries, CorrelatedTimeSeries, Trajectory, "
                     "ImageSequence, RoadNetwork",
        "datasets": "traffic, trajectories, cloud demand, anomalies, "
                    "waves, waveform classification",
        "governance": "imputation (temporal/spatial/spatio-temporal), "
                      "uncertainty, fusion",
        "analytics": "forecasting, anomaly, classification, automation, "
                     "representation, robustness, explainability, "
                     "efficiency, generative",
        "decision": "utilities, dominance, routing, skylines, "
                    "preferences, imitation, scaling, maintenance, "
                    "eco-driving",
        "benchmarking": "model-zoo x dataset-suite leaderboard",
    }
    for name, summary in subsystems.items():
        print(f"  {name:13s} {summary}")
    return 0


# The demo's stage functions live at module level (not nested inside
# _command_demo) so they pickle by reference and the demo works under
# REPRO_EXECUTOR=process; lint rule RC022 flags the nested form.

def _demo_load(state):
    import numpy as np

    from repro.datasets import traffic_speed_dataset

    rng = np.random.default_rng(7)
    full = traffic_speed_dataset(n_sensors=12, n_days=7, rng=rng)
    state["truth"], state["test"] = full.split(0.9)
    state["observed"] = state["truth"].corrupt(
        0.25, rng, block_length=6)
    return (f"{state['observed'].n_sensors} sensors, "
            f"{state['observed'].missing_fraction():.0%} missing")


def _demo_impute(state):
    import numpy as np

    from repro.datatypes import CorrelatedTimeSeries
    from repro.governance.imputation import impute_seasonal

    completed = impute_seasonal(
        state["observed"].as_timeseries(), 96)
    state["clean"] = CorrelatedTimeSeries(
        completed.values, adjacency=state["observed"].adjacency,
        timestamps=state["observed"].timestamps)
    holes = ~state["observed"].mask
    error = float(np.abs(completed.values[holes]
                         - state["truth"].values[holes]).mean())
    return f"gap MAE {error:.2f} km/h"


def _demo_forecast(state):
    from repro.analytics.forecasting import GraphFilterForecaster
    from repro.analytics.metrics import mae

    model = GraphFilterForecaster(n_lags=6, n_hops=2)
    model.fit(state["clean"])
    state["forecast"] = model.predict(len(state["test"]))
    return (f"{len(state['test'])} steps ahead, MAE "
            f"{mae(state['test'].values, state['forecast']):.2f}")


def _demo_decide(state):
    import numpy as np

    slowest = np.argsort(state["forecast"].min(axis=0))[:3]
    return f"dispatch to sensors {sorted(int(i) for i in slowest)}"


def _command_demo():
    from repro import DecisionPipeline

    pipeline = DecisionPipeline("python -m repro demo")
    pipeline.add_data("collect", _demo_load,
                      reads=(), writes=("truth", "test", "observed"))
    pipeline.add_governance("impute", _demo_impute,
                            reads=("observed", "truth"),
                            writes=("clean",))
    pipeline.add_analytics("forecast", _demo_forecast,
                           reads=("clean", "test"),
                           writes=("forecast",))
    pipeline.add_decision("dispatch", _demo_decide,
                          reads=("forecast",), writes=())
    _, report = pipeline.run()
    print(report.render())
    return 0


def _command_leaderboard():
    import numpy as np

    from repro.analytics.forecasting import (
        ARForecaster,
        HoltWintersForecaster,
        NaiveForecaster,
        SeasonalNaiveForecaster,
    )
    from repro.benchmarking import ForecastingLeaderboard
    from repro.datasets import cloud_demand_dataset, seasonal_series

    board = ForecastingLeaderboard(horizon=24, n_origins=3)
    board.add_model("naive", lambda: NaiveForecaster())
    board.add_model("snaive", lambda: SeasonalNaiveForecaster(96))
    board.add_model("holt_winters", lambda: HoltWintersForecaster(96))
    board.add_model("ar_seasonal",
                    lambda: ARForecaster(12, seasonal_period=96))
    board.add_dataset(
        "seasonal", seasonal_series(700, rng=np.random.default_rng(0)))
    board.add_dataset(
        "noisy", seasonal_series(700, noise_scale=1.0,
                                 rng=np.random.default_rng(1)))
    board.add_dataset(
        "cloud", cloud_demand_dataset(
            n_days=5, rng=np.random.default_rng(2))[0])
    board.run()
    print(board.render("mae"))
    return 0


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Data-driven decision making with time series and "
                    "spatio-temporal data.",
    )
    parser.add_argument(
        "command", choices=("demo", "leaderboard", "info"),
        help="demo: run the Figure-1 pipeline; leaderboard: run the "
             "forecasting grid; info: inventory",
    )
    arguments = parser.parse_args(argv)
    handlers = {
        "demo": _command_demo,
        "leaderboard": _command_leaderboard,
        "info": _command_info,
    }
    return handlers[arguments.command]()


if __name__ == "__main__":
    sys.exit(main())
