"""Learning-based routing from sparse expert trajectories [56].

Paper §II-D: "professional taxi drivers possess an intimate
understanding of urban traffic ... By analyzing the trajectories of
expert drivers, it is possible to enable human drivers and autonomous
vehicles to mimic their behavior.  Beyond simple imitation, this
strategy involves dissecting and enhancing the determinants of expert
decisions."

The reproduction dissects expert choices into two per-edge signals:

* **avoidance** — how much *less* the experts use an edge than
  shortest-path routing over the *same* origin-destination pairs would
  (the counterfactual comparison is the key: raw popularity confounds
  edge attractiveness with trip geography);
* **popularity** — the experts' absolute usage, a mild positive prior
  toward corridors they demonstrably favour.

Both signals are diffused over the line graph (the semi-supervised
completion machinery of [11]) because sparse trajectory sets never
cover every road, and are combined into a routing cost::

    cost(e) = length(e) * (1 + penalty * avoidance(e)+)
                        / (1 + bonus * popularity(e))
"""

from __future__ import annotations

import networkx as nx
import numpy as np

from .._validation import check_non_negative
from ..datatypes import RoadNetwork
from ..governance.imputation import LabelPropagationCompleter

__all__ = ["ImitationRouter"]


class ImitationRouter:
    """Route like the experts whose trajectories we observed.

    Parameters
    ----------
    network:
        The road network.
    avoidance_penalty:
        Strength of the penalty on edges experts systematically avoid.
    popularity_bonus:
        Strength of the (mild) discount on edges experts favour.
    smooth:
        Diffuse both signals to unvisited edges over the line graph.
    """

    def __init__(self, network, *, avoidance_penalty=1.5,
                 popularity_bonus=0.3, smooth=True, smoothing_alpha=0.6):
        if not isinstance(network, RoadNetwork):
            raise TypeError("network must be a RoadNetwork")
        self.network = network
        self.avoidance_penalty = float(
            check_non_negative(avoidance_penalty, "avoidance_penalty"))
        self.popularity_bonus = float(
            check_non_negative(popularity_bonus, "popularity_bonus"))
        self.smooth = bool(smooth)
        self.smoothing_alpha = float(smoothing_alpha)
        self._avoidance = None
        self._popularity = None

    def _diffuse(self, observed, *, clamp=None):
        if self.smooth:
            completer = LabelPropagationCompleter(
                alpha=self.smoothing_alpha)
            values = completer.complete(self.network, observed)
        else:
            values = {edge: observed.get(edge, 0.0)
                      for edge in self.network.edges()}
        if clamp is not None:
            low, high = clamp
            values = {edge: min(max(value, low), high)
                      for edge, value in values.items()}
        return values

    def fit(self, expert_paths):
        """Learn avoidance and popularity from expert node paths."""
        expert_paths = list(expert_paths)
        if not expert_paths:
            raise ValueError("need at least one expert path")
        expert_use = {}
        shortest_use = {}
        for path in expert_paths:
            shortest = self.network.shortest_path(path[0], path[-1])
            for edge in self.network.path_edges(path):
                expert_use[edge] = expert_use.get(edge, 0) + 1
            for edge in self.network.path_edges(shortest):
                shortest_use[edge] = shortest_use.get(edge, 0) + 1

        total_expert = sum(expert_use.values())
        total_shortest = sum(shortest_use.values())
        avoidance = {}
        for edge in set(expert_use) | set(shortest_use):
            expert_share = expert_use.get(edge, 0) / total_expert
            shortest_share = shortest_use.get(edge, 0) / total_shortest
            avoidance[edge] = (shortest_share - expert_share) \
                * total_expert
        peak = max(abs(value) for value in avoidance.values())
        if peak > 0:
            avoidance = {edge: value / peak
                         for edge, value in avoidance.items()}
        self._avoidance = self._diffuse(avoidance, clamp=(-1.0, 1.0))

        peak_use = max(expert_use.values())
        popularity = {edge: count / peak_use
                      for edge, count in expert_use.items()}
        self._popularity = self._diffuse(popularity, clamp=(0.0, 1.0))
        return self

    def _check_fitted(self):
        if self._avoidance is None:
            raise RuntimeError("fit before routing")

    def edge_popularity(self, u, v):
        self._check_fitted()
        return self._popularity[(u, v)]

    def edge_avoidance(self, u, v):
        self._check_fitted()
        return self._avoidance[(u, v)]

    def routing_cost(self, u, v):
        """The learned, expert-shaped edge cost."""
        self._check_fitted()
        length = self.network.edge_length(u, v)
        penalty = 1.0 + self.avoidance_penalty * max(
            self._avoidance[(u, v)], 0.0)
        bonus = 1.0 + self.popularity_bonus * self._popularity[(u, v)]
        return length * penalty / bonus

    def route(self, origin, destination):
        """The expert-mimicking route."""
        self._check_fitted()
        return nx.dijkstra_path(
            self.network.graph, origin, destination,
            weight=lambda u, v, data: self.routing_cost(u, v),
        )

    def imitation_score(self, expert_paths):
        """Mean route similarity (1 - Jaccard distance) against the
        experts' own origin-destination choices."""
        scores = []
        for path in expert_paths:
            recommended = self.route(path[0], path[-1])
            scores.append(
                1.0 - self.network.route_distance(path, recommended))
        return float(np.mean(scores))

    def popularity_coverage(self):
        """Fraction of network edges carrying a positive popularity
        estimate (diagnostic for the sparsity experiments)."""
        self._check_fitted()
        values = np.array(list(self._popularity.values()))
        return float((values > 1e-6).mean())
