"""Uncertainty-aware predictive autoscaling (MagicScaler [6]).

The paper's second running example: cloud "resource scaling decisions
must be made frequently ... future demands can be predicted,
particularly in the event of unexpected surges, allowing for timely
resource auto-scaling to maintain service quality while minimizing
energy consumption".

Three scaler policies, compared by experiment E23:

* :class:`PredictiveScaler` — forecasts the demand *distribution* over
  the scaling horizon and provisions its ``1 - slo_target`` quantile
  plus the requested safety margin (the MagicScaler recipe:
  uncertainty-aware, proactive);
* :class:`ReactiveScaler` — provisions a headroom multiple of the most
  recent demand (what autoscalers in practice default to);
* :class:`FixedScaler` — a static capacity.

:func:`simulate_scaling` replays a demand trace against a policy and
reports SLO violations, over-provisioning cost, and scaling churn.
"""

from __future__ import annotations

import numpy as np

from .._validation import check_fraction, check_positive
from ..datatypes import TimeSeries

__all__ = ["PredictiveScaler", "ReactiveScaler", "FixedScaler",
           "simulate_scaling"]


class FixedScaler:
    """Constant capacity (the capacity-planning strawman)."""

    def __init__(self, capacity):
        self.capacity = float(check_positive(capacity, "capacity"))

    def decide(self, history):
        return self.capacity


class ReactiveScaler:
    """Capacity = headroom x recent demand (lagging by design)."""

    def __init__(self, headroom=1.2, window=3):
        self.headroom = float(check_positive(headroom, "headroom"))
        self.window = int(check_positive(window, "window"))

    def decide(self, history):
        recent = np.asarray(history[-self.window:], dtype=float)
        return self.headroom * float(recent.max())


class PredictiveScaler:
    """Quantile-of-forecast provisioning with uncertainty awareness.

    Parameters
    ----------
    slo_target:
        Tolerated probability of under-provisioning per step (e.g.
        0.05 provisions the 95th percentile of predicted demand).
    horizon:
        Scaling lead time in steps: the decision must cover the *next*
        ``horizon`` steps (capacity takes time to come up).
    refit_interval:
        Steps between forecaster refits.
    margin:
        Multiplicative safety margin on top of the quantile.
    """

    def __init__(self, *, slo_target=0.05, horizon=3, n_lags=24,
                 seasonal_period=None, refit_interval=12, margin=1.0):
        self.slo_target = check_fraction(slo_target, "slo_target",
                                         inclusive_low=False,
                                         inclusive_high=False)
        self.horizon = int(check_positive(horizon, "horizon"))
        self.n_lags = int(check_positive(n_lags, "n_lags"))
        self.seasonal_period = seasonal_period
        self.refit_interval = int(check_positive(refit_interval,
                                                 "refit_interval"))
        self.margin = float(check_positive(margin, "margin"))
        self._model = None
        self._since_refit = 0

    def _needs_refit(self):
        return self._model is None or \
            self._since_refit >= self.refit_interval

    def _refit(self, history):
        from ..analytics.forecasting.linear import ARForecaster

        model = ARForecaster(n_lags=self.n_lags,
                             seasonal_period=self.seasonal_period)
        model.fit(TimeSeries(history))
        # Backtest per-lead residuals: the empirical h-step error
        # quantiles are what calibrates the provisioning level (the
        # MagicScaler recipe - calibrated predictive distributions, not
        # an assumed error-growth law).
        residuals = [[] for _ in range(self.horizon)]
        needed = max(self.n_lags, self.seasonal_period or 0)
        first = max(needed, len(history) - 40 * self.horizon)
        for origin in range(first, len(history) - self.horizon,
                            max(1, self.horizon // 2)):
            predicted = model.predict_from(history[:origin],
                                           self.horizon)[:, 0]
            actual = history[origin:origin + self.horizon]
            for lead in range(self.horizon):
                residuals[lead].append(actual[lead] - predicted[lead])
        quantiles = np.zeros(self.horizon)
        for lead in range(self.horizon):
            sample = np.asarray(residuals[lead])
            if sample.size:
                quantiles[lead] = np.quantile(sample,
                                              1.0 - self.slo_target)
        self._model = model
        self._lead_quantiles = quantiles

    def decide(self, history):
        history = np.asarray(history, dtype=float)
        needed = max(self.n_lags,
                     self.seasonal_period or 0) + 3 * self.horizon + 2
        if len(history) <= needed:
            return float(history.max()) * 1.2  # cold start: reactive
        if self._needs_refit():
            self._refit(history)
            self._since_refit = 0
        else:
            self._since_refit += 1
        predicted = self._model.predict_from(history, self.horizon)[:, 0]
        capacity = float(np.max(predicted + self._lead_quantiles))
        return capacity * self.margin


def simulate_scaling(demand, scaler, *, warmup=48, lead_time=1,
                     capacity_cost=1.0, violation_cost=50.0):
    """Replay a demand trace against a scaling policy.

    Capacity takes ``lead_time`` steps to come online: the capacity
    serving step ``t`` was decided from the history up to
    ``t - lead_time`` (exclusive).  This lead is what makes *proactive*
    scaling matter — a reactive policy structurally lags demand ramps
    by the lead time.

    Returns
    -------
    dict
        ``violations`` (fraction of steps with demand > capacity),
        ``mean_capacity``, ``mean_overprovision`` (capacity above
        demand), ``scaling_actions`` (relative capacity changes > 5 %),
        and ``total_cost`` under the linear cost model.
    """
    values = (demand.values[:, 0] if isinstance(demand, TimeSeries)
              else np.asarray(demand, dtype=float).ravel())
    lead_time = int(check_positive(lead_time, "lead_time"))
    if len(values) <= warmup + lead_time + 1:
        raise ValueError("demand trace shorter than the warmup")

    capacities = []
    violations = 0
    actions = 0
    previous = None
    for step in range(warmup, len(values)):
        capacity = float(scaler.decide(values[:step - lead_time + 1]))
        capacities.append(capacity)
        if values[step] > capacity:
            violations += 1
        if (previous is not None and previous > 0
                and abs(capacity - previous) / previous > 0.05):
            actions += 1
        previous = capacity
    capacities = np.asarray(capacities)
    served = values[warmup:]
    overprovision = np.maximum(capacities - served, 0.0)
    n_steps = len(served)
    return {
        "violations": violations / n_steps,
        "mean_capacity": float(capacities.mean()),
        "mean_overprovision": float(overprovision.mean()),
        "scaling_actions": actions,
        "total_cost": float(capacity_cost * capacities.sum()
                            + violation_cost * violations),
    }
