"""Personalized, context-aware preference learning [54, 55].

Paper §II-D: decisions are tailored "to individual preferences, which
may include personalized risk profiles or preferences on multi-objective
trade-offs.  The challenge lies in selecting the most suitable
preference for a given context."

:class:`ContextualPreferenceModel` learns, per context (e.g. *peak* /
*offpeak* / *weekend*), the objective weights that best explain a
driver's observed choices among alternatives — the inverse problem of
scalarization.  Learning is a projected-subgradient ranking method:
chosen options must scalarize better than their alternatives, with
weights constrained to the probability simplex (interpretable as
trade-off shares).
"""

from __future__ import annotations

import numpy as np

from .._validation import check_positive

__all__ = ["ContextualPreferenceModel"]


def _project_to_simplex(vector):
    """Euclidean projection onto the probability simplex."""
    sorted_desc = np.sort(vector)[::-1]
    cumulative = np.cumsum(sorted_desc) - 1.0
    indices = np.arange(1, len(vector) + 1)
    mask = sorted_desc - cumulative / indices > 0
    rho = indices[mask][-1]
    theta = cumulative[mask][-1] / rho
    return np.maximum(vector - theta, 0.0)


class ContextualPreferenceModel:
    """Per-context objective weights learned from observed choices.

    Parameters
    ----------
    n_objectives:
        Dimensionality of the option cost vectors.
    margin:
        Required scalarized-cost margin between chosen option and
        alternatives (hinge).
    """

    def __init__(self, n_objectives, *, margin=0.01, learning_rate=0.1,
                 n_epochs=200):
        self.n_objectives = int(check_positive(n_objectives,
                                               "n_objectives"))
        self.margin = float(margin)
        self.learning_rate = float(check_positive(learning_rate,
                                                  "learning_rate"))
        self.n_epochs = int(check_positive(n_epochs, "n_epochs"))
        self._weights = {}
        self._observations = {}

    def observe(self, context, chosen_cost, alternative_costs):
        """Record one decision: the chosen option's cost vector and the
        rejected alternatives' cost vectors."""
        chosen = np.asarray(chosen_cost, dtype=float)
        if chosen.shape != (self.n_objectives,):
            raise ValueError(
                f"chosen_cost must have {self.n_objectives} entries"
            )
        alternatives = [np.asarray(a, dtype=float)
                        for a in alternative_costs]
        for alternative in alternatives:
            if alternative.shape != (self.n_objectives,):
                raise ValueError("alternative cost shape mismatch")
        self._observations.setdefault(context, []).append(
            (chosen, alternatives))
        return self

    def fit(self):
        """Learn simplex weights for every observed context."""
        if not self._observations:
            raise RuntimeError("no observations to fit")
        for context, decisions in self._observations.items():
            weights = np.full(self.n_objectives, 1.0 / self.n_objectives)
            # Scale-normalize the objectives within this context.
            stacked = np.vstack([
                np.vstack([chosen] + alternatives)
                for chosen, alternatives in decisions
            ])
            scale = stacked.std(axis=0)
            scale[scale == 0] = 1.0
            for _ in range(self.n_epochs):
                gradient = np.zeros(self.n_objectives)
                for chosen, alternatives in decisions:
                    for alternative in alternatives:
                        gap = (chosen - alternative) / scale
                        if weights @ gap + self.margin > 0:  # violated
                            gradient += gap
                if not np.any(gradient):
                    break
                weights = _project_to_simplex(
                    weights - self.learning_rate
                    * gradient / len(decisions))
            self._weights[context] = weights
        return self

    def weights(self, context):
        """The learned trade-off weights for ``context``."""
        if context not in self._weights:
            raise KeyError(f"no learned preference for context {context!r}")
        return self._weights[context].copy()

    @property
    def contexts(self):
        return sorted(self._weights)

    def rank(self, context, option_costs):
        """Options sorted best-first under the context's preference."""
        weights = self.weights(context)
        costs = np.asarray(option_costs, dtype=float)
        if costs.ndim != 2 or costs.shape[1] != self.n_objectives:
            raise ValueError("option_costs must be (n, n_objectives)")
        scores = costs @ weights
        return list(np.argsort(scores))

    def choose(self, context, option_costs):
        """Index of the best option for the context."""
        return self.rank(context, option_costs)[0]

    def agreement(self, context, decisions):
        """Fraction of held-out decisions where the model's choice
        matches the observed choice.

        ``decisions`` is a list of ``(chosen_index, option_costs)``.
        """
        correct = 0
        for chosen_index, option_costs in decisions:
            if self.choose(context, option_costs) == chosen_index:
                correct += 1
        return correct / len(decisions) if decisions else 0.0
