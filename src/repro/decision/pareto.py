"""Multi-objective decision making: Pareto skylines and scalarization.

Paper §II-D: "Multi-objective decision-making can be categorized into
two classes: the first employs Pareto optimality to identify a set of
non-dominated options [15]; the second consolidates multiple objectives
into a single unified objective via a preference function [54]."

* :func:`pareto_front` — the non-dominated subset of arbitrary cost
  vectors;
* :func:`stochastic_pareto_front` — the same idea for options whose
  per-objective costs are *distributions*: FSD across every objective
  on shared union-support grids, optionally over a W1-reduced option
  ensemble;
* :class:`SkylineRouter` — route skylines [15]: a label-correcting
  search over a road network with *vector* edge costs, where a node
  keeps only Pareto-optimal partial labels; the result is every
  non-dominated origin-destination route;
* :func:`scalarize` — the second class: a preference-weighted single
  objective.
"""

from __future__ import annotations

import numpy as np

from .._validation import check_positive, check_probability_vector
from ..datatypes import RoadNetwork
from ..governance.uncertainty import Histogram

__all__ = [
    "pareto_front",
    "dominates",
    "SkylineRouter",
    "scalarize",
    "stochastic_pareto_front",
]


def dominates(first, second, *, tol=1e-12):
    """True when cost vector ``first`` Pareto-dominates ``second``.

    ``first`` is no worse in every objective and strictly better in at
    least one (all objectives are costs: lower is better).
    """
    first = np.asarray(first, dtype=float)
    second = np.asarray(second, dtype=float)
    if first.shape != second.shape:
        raise ValueError("cost vectors must have the same length")
    return bool(np.all(first <= second + tol)
                and np.any(first < second - tol))


def pareto_front(costs):
    """Indices of the non-dominated rows of a cost matrix.

    O(n² k); fine for the decision-sized candidate sets the experiments
    use.
    """
    costs = np.asarray(costs, dtype=float)
    if costs.ndim != 2:
        raise ValueError("costs must be 2-D (options x objectives)")
    survivors = []
    for index in range(len(costs)):
        dominated = False
        for other in range(len(costs)):
            if other != index and dominates(costs[other], costs[index]):
                dominated = True
                break
        if not dominated:
            survivors.append(index)
    return survivors


def stochastic_pareto_front(options, *, tol=1e-9, reduce_to=None):
    """Indices of stochastically non-dominated multi-objective options.

    ``options[i]`` is a tuple of cost :class:`Histogram` distributions,
    one per objective.  Option A dominates option B when A is weakly
    FSD-better (``CDF_A >= CDF_B`` everywhere, as costs) in *every*
    objective and strictly better in at least one — the distributional
    generalization of :func:`dominates`.  Each objective's verdicts are
    decided exactly on one shared union-support grid, so the whole
    front costs one CDF matrix per objective instead of n²·m pairwise
    dominance calls.

    With ``reduce_to=k``, the option ensemble is first compressed by
    W1 forward selection under the *summed* per-objective Wasserstein
    distance (see :func:`repro.decision.reduction.reduce_scenarios`),
    and every CDF matrix is built over the k representatives' reduced
    support grids only; the returned indices are then drawn from the
    representatives.
    """
    options = [tuple(option) for option in options]
    if not options:
        return []
    n_objectives = len(options[0])
    if n_objectives == 0:
        raise ValueError("options need at least one objective")
    for option in options:
        if len(option) != n_objectives:
            raise ValueError(
                "every option needs the same number of objectives")
        for distribution in option:
            if not isinstance(distribution, Histogram):
                raise TypeError("objective costs must be Histograms")

    original = np.arange(len(options))
    if reduce_to is not None and reduce_to < len(options):
        from .reduction import reduce_scenarios, wasserstein_matrix

        combined = sum(
            wasserstein_matrix([option[j] for option in options])
            for j in range(n_objectives)
        )
        reduction = reduce_scenarios(options, reduce_to,
                                     distance_matrix=combined)
        original = reduction.indices
        options = [options[int(i)] for i in original]

    n = len(options)
    weak = np.ones((n, n), dtype=bool)
    strict = np.zeros((n, n), dtype=bool)
    for j in range(n_objectives):
        members = [option[j] for option in options]
        grid = np.unique(np.concatenate([m.support for m in members]))
        cdf = np.vstack([m.cdf(grid) for m in members])
        diff = cdf[:, None, :] - cdf[None, :, :]
        weak &= (diff >= -tol).all(axis=2)
        strict |= (diff > tol).any(axis=2)
    dominated = (weak & strict)
    np.fill_diagonal(dominated, False)
    survivors = np.flatnonzero(~dominated.any(axis=0))
    if len(survivors) == 0:  # all mutually dominated within tolerance
        survivors = np.arange(n)
    return [int(original[s]) for s in survivors]


def scalarize(costs, weights):
    """Preference-weighted objective: index of the best option.

    ``weights`` are normalized to sum to one; objectives should be
    commensurate (normalize beforehand if not).
    """
    costs = np.asarray(costs, dtype=float)
    weights = check_probability_vector(weights, "weights")
    if costs.shape[1] != len(weights):
        raise ValueError("one weight per objective required")
    return int(np.argmin(costs @ weights))


class SkylineRouter:
    """Route skyline computation over vector edge costs [15].

    Parameters
    ----------
    network:
        The road network; each edge must carry the attributes named in
        ``objectives``.
    objectives:
        Edge-attribute names forming the cost vector (all minimized).
    max_labels:
        Per-node cap on retained Pareto labels (guards the worst case).
    """

    def __init__(self, network, objectives, *, max_labels=64):
        if not isinstance(network, RoadNetwork):
            raise TypeError("network must be a RoadNetwork")
        objectives = list(objectives)
        if len(objectives) < 2:
            raise ValueError("skylines need at least two objectives")
        self.network = network
        self.objectives = objectives
        self.max_labels = int(check_positive(max_labels, "max_labels"))

    def _edge_cost(self, u, v):
        return np.array([
            float(self.network.edge_attribute(u, v, name, 0.0))
            for name in self.objectives
        ])

    def skyline(self, origin, destination):
        """All Pareto-optimal routes from origin to destination.

        Returns a list of ``(path, cost_vector)`` pairs, mutually
        non-dominated.
        """
        if origin == destination:
            raise ValueError("origin and destination must differ")
        # Label-correcting search: labels are (cost_vector, path).
        labels = {origin: [(np.zeros(len(self.objectives)), [origin])]}
        queue = [origin]
        while queue:
            node = queue.pop(0)
            node_labels = list(labels.get(node, []))
            for successor in self.network.successors(node):
                edge_cost = self._edge_cost(node, successor)
                candidates = []
                for cost, path in node_labels:
                    if successor in path:  # simple paths only
                        continue
                    candidates.append((cost + edge_cost,
                                       path + [successor]))
                if not candidates:
                    continue
                existing = labels.get(successor, [])
                merged = self._merge(existing, candidates)
                if merged is not None:
                    labels[successor] = merged
                    if successor not in queue:
                        queue.append(successor)
        results = labels.get(destination, [])
        return [(path, cost.copy()) for cost, path in results]

    def _merge(self, existing, candidates):
        """Merge candidate labels into a node's Pareto set.

        Returns the new label list, or None when nothing changed.
        """
        pool = list(existing)
        changed = False
        for cost, path in candidates:
            dominated = False
            for other_cost, _ in pool:
                if dominates(other_cost, cost) or np.allclose(other_cost,
                                                              cost):
                    dominated = True
                    break
            if dominated:
                continue
            pool = [
                (other_cost, other_path) for other_cost, other_path in pool
                if not dominates(cost, other_cost)
            ]
            pool.append((cost, path))
            changed = True
        if not changed:
            return None
        if len(pool) > self.max_labels:
            # Keep the labels with the best scalarized spread.
            pool.sort(key=lambda label: label[0].sum())
            pool = pool[: self.max_labels]
        return pool
