"""Scenario reduction: Wasserstein/DTW compression of Monte-Carlo
ensembles (ROADMAP item 3, after Schardong et al., Decision Support
Systems 2018).

The decision layer consumes *ensembles*: hundreds to thousands of
Monte-Carlo travel-time or forecast scenarios, each either a cost
:class:`Histogram` or a trajectory (one row of a ``(n, horizon)``
array).  Every downstream query — dominance pruning, expected-utility
selection, stochastic Pareto fronts — pays at least O(N² · |grid|)
over the full ensemble.  This module compresses an ensemble to
``k ≪ N`` *representative* members with bounded distortion so those
queries run over k instead of N:

* :func:`wasserstein_distance` — the **exact** 1-D Wasserstein (W1)
  distance between two histograms: both CDFs are step functions
  jumping only at positive-mass atoms, so the CDF-difference integral
  is a finite sum over the union of atoms — no quadrature grid, no
  approximation error (contrast the fixed-grid estimate in
  :func:`repro.governance.uncertainty.travel_time.wasserstein_distance`);
* :func:`wasserstein_matrix` / :func:`dtw_band_matrix` — vectorized
  pairwise distances over a whole ensemble (shared union-grid CDF
  matrix; ensemble-axis-vectorized Sakoe-Chiba-banded DTW), with
  brute-force pairwise oracles kept for equivalence gating
  (:func:`_wasserstein_pairwise`, tests cross-check the DTW kernel
  against :func:`repro.analytics.classification.distance.dtw_distance`);
* :func:`reduce_scenarios` — fast-forward-selection scenario reduction
  in the style of Heitsch & Römisch: greedily grow the representative
  set, each step picking the scenario that most lowers the
  probability-weighted transport cost, then redistribute every deleted
  scenario's probability onto its nearest survivor.  The resulting
  :class:`Reduction` records who survived, the redistributed weights,
  the member→representative assignment and the achieved distortion
  (an upper bound on the W1 distance between the full and reduced
  ensemble distributions);
* :func:`fan_chart` / :func:`rank_plot` — JSON-ready export data for
  the visual-analytics side of scenario reduction: weighted quantile
  fan bands and per-step scenario ranks of (reduced) trajectory
  ensembles.

Every reduction publishes ``decision.reduction_*`` metrics (input and
output scenario counts, a distortion histogram) through the process
metrics registry, so production traffic shows how much ensemble mass
is being compressed and how lossy the compression is.

The wiring into the decision layer lives in the callers:
``dominance_prune`` / ``select_best`` accept ``reduce_to=`` /
``reduction=``, :class:`~repro.decision.StochasticRouter` takes a
``reduction=`` config (memoized per OD pair and departure window),
and :func:`repro.decision.pareto.stochastic_pareto_front` reduces
option ensembles before the per-objective FSD matrix.  The E29
benchmark gates the end-to-end speedup, the W1 distortion bound and
zero decision regret on the benchmark workload.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._validation import check_positive, check_probability_vector
from ..governance.uncertainty import Histogram

__all__ = [
    "Reduction",
    "dtw_band_matrix",
    "fan_chart",
    "rank_plot",
    "reduce_scenarios",
    "wasserstein_distance",
    "wasserstein_matrix",
]

#: Soft cap (bytes) on the temporary broadcast block of
#: :func:`wasserstein_matrix`; rows are processed in blocks sized so
#: ``block * n * grid * 8`` stays under this.
_MATRIX_BLOCK_BYTES = 32 * 1024 * 1024

#: Bucket bounds for the ``decision.reduction_distortion`` histogram —
#: distortions are workload-scaled (cost units), so the buckets span
#: sub-percent to order-one-hundred costs.
_DISTORTION_BUCKETS = (0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 50.0,
                       100.0)


# ---------------------------------------------------------------------------
# Distances
# ---------------------------------------------------------------------------

def _atom_cdf(histograms):
    """Shared positive-mass atom grid + stacked CDF matrix.

    A histogram's CDF only jumps at bins with positive mass, so the
    union of positive atoms carries the complete step functions of
    every member; zero-mass padding bins would only inflate the grid.
    """
    grid = np.unique(np.concatenate([
        h.atoms()[0] for h in histograms
    ]))
    cdf = np.vstack([h.cdf(grid) for h in histograms])
    return grid, cdf


def wasserstein_distance(first, second):
    """Exact W1 distance between two :class:`Histogram` distributions.

    ``W1(F, G) = ∫ |F(x) - G(x)| dx``; both CDFs are right-continuous
    step functions constant between consecutive atoms, so the integral
    is the finite sum ``Σ |F(x_i) - G(x_i)| (x_{i+1} - x_i)`` over the
    sorted union of the two positive-mass supports — exact, no
    quadrature grid.
    """
    if not isinstance(first, Histogram) or not isinstance(second,
                                                          Histogram):
        raise TypeError("arguments must be Histograms")
    grid, cdf = _atom_cdf([first, second])
    if len(grid) < 2:
        return 0.0
    gaps = np.diff(grid)
    return float(np.abs(cdf[0, :-1] - cdf[1, :-1]) @ gaps)


def _wasserstein_pairwise(histograms):
    """Brute-force pairwise W1 matrix — the kept equivalence oracle.

    N² independent :func:`wasserstein_distance` calls; the E29
    benchmark asserts :func:`wasserstein_matrix` reproduces it to
    within floating-point tolerance.
    """
    histograms = list(histograms)
    n = len(histograms)
    matrix = np.zeros((n, n))
    for i in range(n):
        for j in range(i + 1, n):
            matrix[i, j] = matrix[j, i] = wasserstein_distance(
                histograms[i], histograms[j])
    return matrix


def wasserstein_matrix(histograms):
    """Pairwise exact-W1 matrix over an ensemble of histograms.

    One shared union grid of positive-mass atoms decides every pair:
    with the stacked CDF matrix ``C`` and atom gaps ``g``,
    ``D[i, j] = Σ_t |C[i, t] - C[j, t]| g[t]`` — the same sum
    :func:`wasserstein_distance` evaluates per pair, because adding
    another member's atoms to a pair's union grid only inserts points
    where both step functions are constant.  Rows are processed in
    bounded broadcast blocks so the temporary ``(block, n, grid)``
    array stays small.
    """
    histograms = list(histograms)
    for histogram in histograms:
        if not isinstance(histogram, Histogram):
            raise TypeError("ensemble members must be Histograms")
    n = len(histograms)
    if n == 0:
        return np.zeros((0, 0))
    grid, cdf = _atom_cdf(histograms)
    matrix = np.zeros((n, n))
    if len(grid) < 2:
        return matrix
    gaps = np.diff(grid)
    steps = cdf[:, :-1]
    block = max(1, int(_MATRIX_BLOCK_BYTES / max(n * steps.shape[1] * 8,
                                                 1)))
    for begin in range(0, n, block):
        chunk = steps[begin:begin + block]
        matrix[begin:begin + block] = np.abs(
            chunk[:, None, :] - steps[None, :, :]) @ gaps
    return matrix


def dtw_band_matrix(trajectories, *, band=None):
    """Pairwise banded-DTW matrix over a trajectory ensemble.

    Parameters
    ----------
    trajectories:
        ``(n, horizon)`` array; each row is one scenario trajectory.
    band:
        Sakoe-Chiba band half-width (``None`` = unconstrained).  Same
        semantics — and the same per-pair values — as
        :func:`repro.analytics.classification.distance.dtw_distance`,
        which the tests keep as the pairwise oracle.

    The dynamic program is vectorized over the *ensemble* axis: one
    anchor row is warped against every later row simultaneously, so
    the Python-level loop is O(horizon · band) per anchor instead of
    O(n · horizon · band).
    """
    X = np.asarray(trajectories, dtype=float)
    if X.ndim != 2:
        raise ValueError("trajectories must be 2-D (scenarios x steps)")
    n, horizon = X.shape
    if horizon == 0:
        raise ValueError("trajectories must have at least one step")
    width = horizon if band is None else max(int(band), 0)
    matrix = np.zeros((n, n))
    for i in range(n - 1):
        matrix[i, i + 1:] = matrix[i + 1:, i] = _dtw_one_vs_many(
            X[i], X[i + 1:], width)
    return matrix


def _dtw_one_vs_many(anchor, others, band):
    """Banded DTW of ``anchor`` against every row of ``others``."""
    count, horizon = others.shape
    previous = np.full((count, horizon + 1), np.inf)
    previous[:, 0] = 0.0
    current = np.empty_like(previous)
    for i in range(1, horizon + 1):
        current.fill(np.inf)
        low = max(1, i - band)
        high = min(horizon, i + band)
        cost = (anchor[i - 1] - others[:, low - 1:high]) ** 2
        for j in range(low, high + 1):
            best = np.minimum(previous[:, j], previous[:, j - 1])
            np.minimum(best, current[:, j - 1], out=best)
            current[:, j] = cost[:, j - low] + best
        previous, current = current, previous
    return np.sqrt(previous[:, horizon])


# ---------------------------------------------------------------------------
# Forward-selection reduction
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Reduction:
    """The result of one scenario reduction.

    Attributes
    ----------
    indices:
        Ascending original indices of the k surviving representatives
        (always a subset of the input ensemble).
    probabilities:
        Redistributed probability of each survivor — its own mass plus
        the mass of every deleted scenario assigned to it; sums to 1.
    assignment:
        For every input scenario, the *position into* ``indices`` of
        its representative (survivors map to themselves).
    distortion:
        The transport cost ``Σ p_i · d(i, representative(i))`` paid by
        the redistribution — an upper bound on the W1 distance between
        the full and the reduced ensemble distribution under the
        chosen metric.
    n_input:
        Input ensemble size.
    """

    indices: np.ndarray
    probabilities: np.ndarray
    assignment: np.ndarray
    distortion: float
    n_input: int

    @property
    def n_reduced(self):
        return len(self.indices)

    def members(self, position):
        """Original indices assigned to the survivor at ``position``
        (the survivor itself included)."""
        if not 0 <= position < len(self.indices):
            raise IndexError(f"no representative at {position}")
        return [int(i) for i in
                np.flatnonzero(self.assignment == position)]

    def representative_of(self, index):
        """Original index of the representative of scenario ``index``."""
        return int(self.indices[self.assignment[index]])

    def export(self):
        """JSON-ready summary (what benchmark artifacts embed)."""
        return {
            "n_input": int(self.n_input),
            "n_reduced": int(self.n_reduced),
            "indices": [int(i) for i in self.indices],
            "probabilities": [float(p) for p in self.probabilities],
            "assignment": [int(a) for a in self.assignment],
            "distortion": float(self.distortion),
        }


def _distance_matrix_for(scenarios, metric, band):
    if metric == "wasserstein":
        return wasserstein_matrix(scenarios)
    if metric == "dtw":
        return dtw_band_matrix(scenarios, band=band)
    if metric == "euclidean":
        X = np.asarray(scenarios, dtype=float)
        if X.ndim == 1:
            X = X[:, None]
        if X.ndim != 2:
            raise ValueError(
                "euclidean scenarios must be 1-D or 2-D arrays")
        diff = X[:, None, :] - X[None, :, :]
        return np.sqrt((diff ** 2).sum(axis=2))
    raise ValueError(
        f"unknown metric {metric!r}; expected 'wasserstein', 'dtw' or "
        "'euclidean'")


def _default_metric(scenarios):
    try:
        first = scenarios[0]
    except (IndexError, TypeError):
        return "euclidean"
    return "wasserstein" if isinstance(first, Histogram) else "euclidean"


def _forward_selection(distance, probabilities, k):
    """Heitsch-Römisch fast forward selection over a distance matrix.

    Each step adds the scenario minimizing the redistribution objective
    ``z(u) = Σ_i p_i · min(d_i, D[i, u])`` where ``d_i`` is scenario
    i's distance to the current representative set; stops early when
    every scenario is already represented at zero cost.
    """
    n = len(probabilities)
    nearest = np.full(n, np.inf)
    selected = []
    for _ in range(k):
        objective = probabilities @ np.minimum(distance,
                                               nearest[:, None])
        objective[selected] = np.inf
        pick = int(np.argmin(objective))
        selected.append(pick)
        np.minimum(nearest, distance[:, pick], out=nearest)
        if probabilities @ nearest <= 0.0:
            break
    return selected


def _reduce_reference(distance, probabilities, k):
    """Pure-Python forward selection — the kept equivalence oracle."""
    n = len(probabilities)
    nearest = [float("inf")] * n
    selected = []
    for _ in range(int(k)):
        best_pick, best_cost = None, None
        for u in range(n):
            if u in selected:
                continue
            cost = sum(
                probabilities[i] * min(nearest[i], distance[i][u])
                for i in range(n)
            )
            if best_cost is None or cost < best_cost:
                best_pick, best_cost = u, cost
        selected.append(best_pick)
        nearest = [min(nearest[i], distance[i][best_pick])
                   for i in range(n)]
        if sum(p * d for p, d in zip(probabilities, nearest)) <= 0.0:
            break
    return selected


def reduce_scenarios(scenarios, k, *, probabilities=None, metric=None,
                     band=None, distance_matrix=None):
    """Compress an ensemble to ``k`` representatives (forward
    selection + probability redistribution).

    Parameters
    ----------
    scenarios:
        The ensemble: a sequence of :class:`Histogram` members
        (``metric="wasserstein"``), a ``(n, horizon)`` trajectory
        array (``metric="dtw"`` or ``"euclidean"``), or anything at
        all when ``distance_matrix=`` is supplied directly.
    k:
        Number of representatives to keep; ``k >= n`` returns the
        identity reduction.
    probabilities:
        Scenario probabilities (uniform by default); normalized.
    metric:
        Distance between members; inferred from the first member when
        omitted (Histogram → ``"wasserstein"``, else ``"euclidean"``).
    band:
        Sakoe-Chiba half-width forwarded to :func:`dtw_band_matrix`.
    distance_matrix:
        Precomputed ``(n, n)`` member distances; skips the metric.

    Returns
    -------
    Reduction
        Survivors (a subset of the input, ascending), redistributed
        probabilities, the member→representative assignment and the
        achieved distortion.  Also published to the process metrics
        registry as ``decision.reduction_*``.
    """
    n = len(scenarios)
    if n == 0:
        raise ValueError("scenarios must not be empty")
    k = int(check_positive(k, "k"))
    if probabilities is None:
        weights = np.full(n, 1.0 / n)
    else:
        weights = check_probability_vector(probabilities,
                                           "probabilities")
        if len(weights) != n:
            raise ValueError("one probability per scenario required")

    if k >= n:
        reduction = Reduction(
            indices=np.arange(n), probabilities=weights.copy(),
            assignment=np.arange(n), distortion=0.0, n_input=n)
        _publish_metrics(reduction)
        return reduction

    if distance_matrix is not None:
        distance = np.asarray(distance_matrix, dtype=float)
        if distance.shape != (n, n):
            raise ValueError(
                f"distance_matrix must be ({n}, {n}), got "
                f"{distance.shape}")
    else:
        distance = _distance_matrix_for(
            scenarios, metric or _default_metric(scenarios), band)

    selected = _forward_selection(distance, weights, k)
    indices = np.array(sorted(selected))
    # Nearest-survivor assignment and probability redistribution: each
    # deleted scenario hands its whole mass to its closest survivor.
    to_survivors = distance[:, indices]
    assignment = np.argmin(to_survivors, axis=1)
    assignment[indices] = np.arange(len(indices))  # exact self-match
    redistributed = np.zeros(len(indices))
    np.add.at(redistributed, assignment, weights)
    distortion = float(
        weights @ to_survivors[np.arange(n), assignment])
    reduction = Reduction(
        indices=indices, probabilities=redistributed,
        assignment=assignment, distortion=distortion, n_input=n)
    _publish_metrics(reduction)
    return reduction


def _publish_metrics(reduction):
    """Flush one reduction's telemetry to the process registry."""
    from ..observability.metrics import get_registry

    registry = get_registry()
    counter = registry.counter(
        "decision.reduction_scenarios_total",
        "Scenario counts through reduce_scenarios by direction")
    counter.inc(reduction.n_input, direction="in")
    counter.inc(reduction.n_reduced, direction="out")
    registry.histogram(
        "decision.reduction_distortion",
        "Probability-weighted transport cost paid per reduction",
        buckets=_DISTORTION_BUCKETS).observe(reduction.distortion)


# ---------------------------------------------------------------------------
# Plot-data export (fan charts and rank plots)
# ---------------------------------------------------------------------------

def _weighted_column_quantiles(values, weights, quantiles):
    """Weighted quantile per column: smallest value with cumulative
    weight >= q (the :meth:`Histogram.quantile` convention)."""
    order = np.argsort(values, axis=0)
    ordered = np.take_along_axis(values, order, axis=0)
    cumulative = np.cumsum(weights[order], axis=0)
    columns = np.arange(values.shape[1])
    rows = []
    for q in quantiles:
        picks = np.minimum((cumulative >= q - 1e-12).argmax(axis=0),
                           len(weights) - 1)
        rows.append(ordered[picks, columns])
    return rows


def fan_chart(trajectories, *, probabilities=None,
              quantiles=(0.05, 0.25, 0.5, 0.75, 0.95)):
    """Weighted quantile fan bands of a trajectory ensemble.

    Pass the *reduced* members and the reduction's redistributed
    probabilities to plot the compressed ensemble with preserved tail
    mass::

        red = reduce_scenarios(paths, 12, metric="dtw", band=6)
        chart = fan_chart(paths[red.indices],
                          probabilities=red.probabilities)

    Returns a JSON-ready dict: ``quantiles``, one band per quantile
    (each ``horizon`` long), the weighted ``mean`` trajectory, and the
    scenario count.
    """
    X = np.asarray(trajectories, dtype=float)
    if X.ndim != 2:
        raise ValueError("trajectories must be 2-D (scenarios x steps)")
    quantiles = [float(q) for q in quantiles]
    for q in quantiles:
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantiles must be in [0, 1], got {q!r}")
    if probabilities is None:
        weights = np.full(len(X), 1.0 / len(X))
    else:
        weights = check_probability_vector(probabilities,
                                           "probabilities")
        if len(weights) != len(X):
            raise ValueError("one probability per trajectory required")
    bands = _weighted_column_quantiles(X, weights, quantiles)
    return {
        "quantiles": quantiles,
        "bands": {f"{q:g}": [float(v) for v in band]
                  for q, band in zip(quantiles, bands)},
        "mean": [float(v) for v in weights @ X],
        "n_scenarios": int(len(X)),
    }


def rank_plot(trajectories):
    """Per-step scenario ranks — the rank-plot view of scenario
    spread (rank 0 = smallest value at that step).

    Returns a JSON-ready dict with the ``(n, horizon)`` rank table and
    the scenario order by mean rank (most dominant first), which is
    how rank plots order their rows.
    """
    X = np.asarray(trajectories, dtype=float)
    if X.ndim != 2:
        raise ValueError("trajectories must be 2-D (scenarios x steps)")
    ranks = np.argsort(np.argsort(X, axis=0), axis=0)
    order = np.argsort(ranks.mean(axis=1))
    return {
        "ranks": [[int(r) for r in row] for row in ranks],
        "order": [int(i) for i in order],
        "n_scenarios": int(len(X)),
    }
