"""Data-driven decision making (paper Sec. II-D): decision making under
uncertainty, multi-objective, personalized, and learning-based
strategies, plus the scheduling and maintenance scenarios."""

from .ecodriving import EcoDrivingPlanner, FuelModel
from .imitation import ImitationRouter
from .maintenance import (
    PeriodicPolicy,
    PredictivePolicy,
    RunToFailurePolicy,
    degradation_process,
    simulate_maintenance,
)
from .pareto import (
    SkylineRouter,
    dominates,
    pareto_front,
    scalarize,
    stochastic_pareto_front,
)
from .preference import ContextualPreferenceModel
from .reduction import (
    Reduction,
    dtw_band_matrix,
    fan_chart,
    rank_plot,
    reduce_scenarios,
    wasserstein_distance,
    wasserstein_matrix,
)
from .routing import StochasticRouter
from .scheduling import (
    FixedScaler,
    PredictiveScaler,
    ReactiveScaler,
    simulate_scaling,
)
from .stochastic import (
    dominance_prune,
    first_order_dominates,
    second_order_dominates,
    select_best,
)
from .utility import (
    DeadlineUtility,
    RiskAverseUtility,
    RiskNeutralUtility,
    RiskSeekingUtility,
    UtilityFunction,
    certainty_equivalent,
    expected_utility,
)

__all__ = [
    "ContextualPreferenceModel",
    "DeadlineUtility",
    "EcoDrivingPlanner",
    "FixedScaler",
    "FuelModel",
    "ImitationRouter",
    "PeriodicPolicy",
    "PredictivePolicy",
    "PredictiveScaler",
    "ReactiveScaler",
    "Reduction",
    "RiskAverseUtility",
    "RiskNeutralUtility",
    "RiskSeekingUtility",
    "RunToFailurePolicy",
    "SkylineRouter",
    "StochasticRouter",
    "UtilityFunction",
    "certainty_equivalent",
    "degradation_process",
    "dominance_prune",
    "dominates",
    "dtw_band_matrix",
    "expected_utility",
    "fan_chart",
    "first_order_dominates",
    "pareto_front",
    "rank_plot",
    "reduce_scenarios",
    "scalarize",
    "second_order_dominates",
    "select_best",
    "simulate_maintenance",
    "simulate_scaling",
    "stochastic_pareto_front",
    "wasserstein_distance",
    "wasserstein_matrix",
]
