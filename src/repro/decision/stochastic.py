"""Stochastic dominance and dominance-based pruning [51, 52, 53].

The paper covers "a novel pruning approach grounded in stochastic
dominance, enabling rapid identification of optimal choices across
utility functions that encode different risk profiles".  The mechanism:

* candidate A **first-order dominates** B (as a *cost*) when
  ``CDF_A(x) >= CDF_B(x)`` everywhere with strict inequality somewhere —
  every decreasing utility then prefers A;
* A **second-order dominates** B when the *integrated* CDF of A is
  everywhere at least B's — every decreasing *concave-disutility*
  (risk-averse) decision maker prefers A.

:func:`dominance_prune` removes every dominated candidate; the optimum
under *any* compatible utility provably survives, so expensive
expected-utility evaluation only runs on the (typically small) surviving
set.  That is exactly the speedup experiment E18 measures.

Both entry points additionally accept ``reduce_to=k`` / ``reduction=``:
the candidate ensemble is first compressed to k ≪ N representatives via
:func:`repro.decision.reduction.reduce_scenarios` (exact-W1 forward
selection), dominance runs over the representatives only, and
:func:`select_best` re-evaluates the winning representative's assigned
cluster so the returned index is drawn from the *full* candidate set
(zero regret whenever the true optimum is W1-closest to the winning
representative — gated end-to-end by BENCH_e29).
"""

from __future__ import annotations

import numpy as np

from ..governance.uncertainty import Histogram
from .utility import UtilityFunction

__all__ = [
    "first_order_dominates",
    "second_order_dominates",
    "dominance_prune",
    "select_best",
]


def _support_union(candidates):
    """Sorted union of the candidates' support points."""
    return np.unique(np.concatenate([c.support for c in candidates]))


def _upper_partial_moments(candidate, grid):
    """``E[(X - y)+]`` at every grid point ``y`` — exact, no quadrature.

    The survival function of a histogram is a step function, so its
    right-tail integral is piecewise linear with breakpoints exactly at
    the support points; evaluating the sum directly is both exact and
    vectorized.
    """
    excess = np.maximum(candidate.support[:, None] - grid[None, :], 0.0)
    return candidate.probabilities @ excess


def first_order_dominates(first, second, *, tol=1e-9):
    """True when ``first`` is FSD-better than ``second`` as a cost.

    ``CDF_first >= CDF_second`` everywhere, strictly somewhere:
    ``first`` is stochastically *smaller* — every decision maker with a
    decreasing utility prefers it.  Both CDFs are step functions with
    jumps only at the histograms' support points, so comparing at the
    union of supports is *exact* (a uniform grid can miss crossings
    between its points and prune a candidate some utility prefers).
    """
    if not isinstance(first, Histogram) or not isinstance(second,
                                                          Histogram):
        raise TypeError("arguments must be Histograms")
    grid = np.union1d(first.support, second.support)
    cdf_first = first.cdf(grid)
    cdf_second = second.cdf(grid)
    if np.any(cdf_first < cdf_second - tol):
        return False
    return bool(np.any(cdf_first > cdf_second + tol))


def second_order_dominates(first, second, *, tol=1e-9):
    """True when ``first`` SSD-dominates ``second`` as a cost.

    For *costs* the second-order criterion compares upper partial
    expectations: ``first`` dominates when its expected excess above
    every threshold ``y`` — the right-tail integral of the survival
    function — never exceeds ``second``'s and is strictly smaller
    somewhere.  Every risk-averse (convex-disutility) decision maker
    then prefers ``first``.  FSD implies SSD.

    Both tails are piecewise linear with breakpoints at the union of
    the two supports, so evaluating the exact upper partial moments on
    that union decides the criterion *exactly* (the pre-1.3 Riemann
    approximation carried a one-grid-step slack that made SSD overly
    conservative).
    """
    if not isinstance(first, Histogram) or not isinstance(second,
                                                          Histogram):
        raise TypeError("arguments must be Histograms")
    grid = _support_union([first, second])
    tail_first = _upper_partial_moments(first, grid)
    tail_second = _upper_partial_moments(second, grid)
    slack = tol * max(tail_second[0], 1.0)
    if np.any(tail_first > tail_second + slack):
        return False
    return bool(np.any(tail_first < tail_second - slack))


#: Coarse-prefilter resolution: the necessary-condition screen samples
#: this many columns of the full union-support matrix per pair.
_COARSE_COLUMNS = 24

#: Max candidate pairs per broadcast block in the exact pass; bounds
#: the temporary ``(pairs, G)`` arrays to a few tens of megabytes.
_PAIR_BLOCK = 4096


def _coarse_columns(n_grid):
    """Evenly spaced column indices for the prefilter (ends included)."""
    return np.unique(
        np.linspace(0, n_grid - 1, min(n_grid, _COARSE_COLUMNS)).astype(int)
    )


def _dominated_mask_fsd(candidates, tol):
    """Boolean mask of FSD-dominated candidates (matrix kernel).

    CDFs are step functions jumping only at support points, so a single
    shared union-support grid decides every pair exactly — the same
    verdicts as k² :func:`first_order_dominates` calls.  Two passes:

    1. a coarse *necessary-condition* screen — ``CDF_i >= CDF_j``
       everywhere on the full grid implies it on any column subset, so
       any pair violating the subset is ruled out for the price of a
       tiny ``(k, k, C)`` broadcast;
    2. an exact check of the surviving pairs on the full grid.

    In the realistic regime (heavily overlapping candidate costs, few
    dominations) pass 1 eliminates almost every pair, so the exact pass
    touches a handful of rows instead of all k².
    """
    grid = _support_union(candidates)
    cdf = np.vstack([c.cdf(grid) for c in candidates])
    coarse = cdf[:, _coarse_columns(cdf.shape[1])]
    maybe = (coarse[:, None, :] >= coarse[None, :, :] - tol).all(axis=2)
    np.fill_diagonal(maybe, False)
    dominated = np.zeros(len(candidates), dtype=bool)
    # Champion pass: one exact row-vs-all check by the stochastically
    # smallest candidate settles most dominated columns up front, so
    # the pair sweep only works the contested remainder.
    champion = int(np.argmax(cdf.sum(axis=1)))
    diff = cdf[champion] - cdf
    dominated |= (diff.min(axis=1) >= -tol) & (diff.max(axis=1) > tol)
    maybe[:, dominated] = False
    rows, cols = np.nonzero(maybe)
    for begin in range(0, len(rows), _PAIR_BLOCK):
        i = rows[begin:begin + _PAIR_BLOCK]
        j = cols[begin:begin + _PAIR_BLOCK]
        diff = cdf[i] - cdf[j]
        # i dominates j: CDF_i >= CDF_j everywhere, strictly somewhere.
        hit = (diff.min(axis=1) >= -tol) & (diff.max(axis=1) > tol)
        dominated[j[hit]] = True
    return dominated


def _dominated_mask_ssd(candidates, tol):
    """Boolean mask of SSD-dominated candidates (matrix kernel).

    Exact upper partial moments on the shared union-support grid; the
    tails are piecewise linear with breakpoints inside the grid, so the
    pair comparison is exact.  Same two-pass structure as
    :func:`_dominated_mask_fsd` — dominance requires ``tail_i <=
    tail_j`` everywhere on the full grid, hence on any column subset,
    so the coarse screen is a sound prefilter.
    """
    grid = _support_union(candidates)
    tails = np.vstack([
        _upper_partial_moments(c, grid) for c in candidates
    ])
    # Slack keyed on the dominated column, matching
    # second_order_dominates.
    slack = tol * np.maximum(tails[:, 0], 1.0)
    coarse = tails[:, _coarse_columns(tails.shape[1])]
    maybe = (
        coarse[:, None, :] <= coarse[None, :, :] + slack[None, :, None]
    ).all(axis=2)
    np.fill_diagonal(maybe, False)
    dominated = np.zeros(len(candidates), dtype=bool)
    # Champion pass, as in the FSD kernel: the candidate with the
    # lowest aggregate tail knocks out most dominated columns exactly.
    champion = int(np.argmin(tails.sum(axis=1)))
    diff = tails[champion] - tails
    dominated |= (diff.max(axis=1) <= slack) & (diff.min(axis=1) < -slack)
    maybe[:, dominated] = False
    rows, cols = np.nonzero(maybe)
    for begin in range(0, len(rows), _PAIR_BLOCK):
        i = rows[begin:begin + _PAIR_BLOCK]
        j = cols[begin:begin + _PAIR_BLOCK]
        diff = tails[i] - tails[j]
        # i dominates j: tail_i <= tail_j everywhere, strictly below
        # somewhere.
        hit = (diff.max(axis=1) <= slack[j]) & \
            (diff.min(axis=1) < -slack[j])
        dominated[j[hit]] = True
    return dominated


def _resolve_reduction(candidates, reduce_to, reduction):
    """The :class:`~repro.decision.reduction.Reduction` to prune
    through, or ``None`` when the full ensemble should be used.

    ``reduction=`` takes a precomputed (possibly memoized) reduction of
    exactly these candidates; ``reduce_to=k`` computes a fresh exact-W1
    forward selection here.  A reduction that would not shrink the
    ensemble is skipped entirely.
    """
    if reduction is not None:
        if reduction.n_input != len(candidates):
            raise ValueError(
                f"reduction was built for {reduction.n_input} "
                f"scenarios, got {len(candidates)} candidates")
        return reduction if reduction.n_reduced < len(candidates) else None
    if reduce_to is None or reduce_to >= len(candidates):
        return None
    from .reduction import reduce_scenarios

    return reduce_scenarios(candidates, reduce_to)


def dominance_prune(candidates, *, order=1, tol=1e-9, reduce_to=None,
                    reduction=None):
    """Indices of candidates not dominated by any other candidate.

    All k² dominance relations are decided by one matrix kernel on a
    shared union-support grid (see :func:`_dominated_mask_fsd` /
    :func:`_dominated_mask_ssd`) instead of k² independent pairwise
    calls — same verdicts, one to two orders of magnitude faster at
    fleet-scale candidate counts.

    Parameters
    ----------
    candidates:
        Sequence of cost :class:`Histogram` objects.
    order:
        1 (FSD: safe for all decreasing utilities) or 2 (SSD: safe for
        all risk-averse utilities; prunes more).
    tol:
        Comparison tolerance forwarded to the dominance criteria.
    reduce_to:
        Compress the ensemble to this many W1-representative members
        first (see :func:`repro.decision.reduction.reduce_scenarios`);
        dominance then runs over k instead of N candidates and the
        returned indices are drawn from the representatives.
    reduction:
        A precomputed :class:`~repro.decision.reduction.Reduction` of
        exactly these candidates, for callers that amortize the
        reduction across queries (overrides ``reduce_to``).

    Returns
    -------
    list of int
        Surviving candidate indices, in the original order.
    """
    if order not in (1, 2):
        raise ValueError(f"order must be 1 or 2, got {order!r}")
    candidates = list(candidates)
    for candidate in candidates:
        if not isinstance(candidate, Histogram):
            raise TypeError("candidates must be Histograms")
    if not candidates:
        return []
    chosen = _resolve_reduction(candidates, reduce_to, reduction)
    if chosen is not None:
        pool = [candidates[int(i)] for i in chosen.indices]
        dominated = (_dominated_mask_fsd(pool, tol) if order == 1
                     else _dominated_mask_ssd(pool, tol))
        survivors = [int(chosen.indices[p])
                     for p in np.flatnonzero(~dominated)]
        if not survivors:
            survivors = [int(i) for i in chosen.indices]
        return survivors
    dominated = (_dominated_mask_fsd(candidates, tol) if order == 1
                 else _dominated_mask_ssd(candidates, tol))
    survivors = [int(i) for i in np.flatnonzero(~dominated)]
    if not survivors:  # all mutually dominated within tolerance
        survivors = list(range(len(candidates)))
    return survivors


def _dominance_prune_pairwise(candidates, *, order=1, tol=1e-9):
    """Pre-kernel reference: k² independent pairwise dominance calls.

    Kept as the equivalence oracle for tests and the E26 benchmark.
    """
    dominates = (first_order_dominates if order == 1
                 else second_order_dominates)
    candidates = list(candidates)
    survivors = []
    for index, candidate in enumerate(candidates):
        dominated = False
        for other_index, other in enumerate(candidates):
            if other_index == index:
                continue
            if dominates(other, candidate, tol=tol):
                dominated = True
                break
        if not dominated:
            survivors.append(index)
    if not survivors:
        survivors = list(range(len(candidates)))
    return survivors


def select_best(candidates, utility, *, prune=True, order=1,
                reduce_to=None, reduction=None, refine=True):
    """The expected-utility-optimal candidate, optionally after pruning.

    Returns ``(best_index, best_utility, n_evaluated)`` —
    ``n_evaluated`` exposes the work saved by pruning for the E18
    benchmark (with reduction: utility evaluations actually performed,
    including the refinement pass).

    With ``reduce_to=k`` / ``reduction=``, pruning and the utility
    sweep run over the k W1-representatives only; the winning
    representative's assigned cluster (``Reduction.members``) is then
    re-evaluated under the utility (``refine=True``, the default), so
    the returned index ranges over the *full* candidate set at a cost
    of roughly ``k + N/k`` evaluations instead of N.
    """
    if not isinstance(utility, UtilityFunction):
        raise TypeError("utility must be a UtilityFunction")
    candidates = list(candidates)
    if not candidates:
        raise ValueError("candidates must not be empty")
    chosen = _resolve_reduction(candidates, reduce_to, reduction)
    if chosen is None:
        indices = (dominance_prune(candidates, order=order) if prune
                   else list(range(len(candidates))))
    elif prune:
        indices = dominance_prune(candidates, order=order,
                                  reduction=chosen)
    else:
        indices = [int(i) for i in chosen.indices]
    best_index, best_value = None, -np.inf
    for index in indices:
        value = utility.expected(candidates[index])
        if value > best_value:
            best_index, best_value = index, value
    n_evaluated = len(indices)
    if chosen is not None and refine:
        position = int(np.flatnonzero(
            chosen.indices == best_index)[0])
        for index in chosen.members(position):
            if index == best_index:
                continue
            value = utility.expected(candidates[index])
            n_evaluated += 1
            if value > best_value:
                best_index, best_value = index, value
    return best_index, best_value, n_evaluated
