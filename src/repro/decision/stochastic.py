"""Stochastic dominance and dominance-based pruning [51, 52, 53].

The paper covers "a novel pruning approach grounded in stochastic
dominance, enabling rapid identification of optimal choices across
utility functions that encode different risk profiles".  The mechanism:

* candidate A **first-order dominates** B (as a *cost*) when
  ``CDF_A(x) >= CDF_B(x)`` everywhere with strict inequality somewhere —
  every decreasing utility then prefers A;
* A **second-order dominates** B when the *integrated* CDF of A is
  everywhere at least B's — every decreasing *concave-disutility*
  (risk-averse) decision maker prefers A.

:func:`dominance_prune` removes every dominated candidate; the optimum
under *any* compatible utility provably survives, so expensive
expected-utility evaluation only runs on the (typically small) surviving
set.  That is exactly the speedup experiment E18 measures.
"""

from __future__ import annotations

import numpy as np

from ..governance.uncertainty import Histogram
from .utility import UtilityFunction

__all__ = [
    "first_order_dominates",
    "second_order_dominates",
    "dominance_prune",
    "select_best",
]


def _common_grid(first, second, n_grid=256):
    low = min(first.min(), second.min())
    high = max(first.max(), second.max())
    if high <= low:
        high = low + 1e-9
    return np.linspace(low, high, n_grid)


def first_order_dominates(first, second, *, tol=1e-9):
    """True when ``first`` is FSD-better than ``second`` as a cost.

    ``CDF_first >= CDF_second`` everywhere, strictly somewhere:
    ``first`` is stochastically *smaller* — every decision maker with a
    decreasing utility prefers it.  Both CDFs are step functions with
    jumps only at the histograms' support points, so comparing at the
    union of supports is *exact* (a uniform grid can miss crossings
    between its points and prune a candidate some utility prefers).
    """
    if not isinstance(first, Histogram) or not isinstance(second,
                                                          Histogram):
        raise TypeError("arguments must be Histograms")
    grid = np.union1d(first.support, second.support)
    cdf_first = first.cdf(grid)
    cdf_second = second.cdf(grid)
    if np.any(cdf_first < cdf_second - tol):
        return False
    return bool(np.any(cdf_first > cdf_second + tol))


def second_order_dominates(first, second, *, tol=1e-9):
    """True when ``first`` SSD-dominates ``second`` as a cost.

    For *costs* the second-order criterion compares upper partial
    expectations: ``first`` dominates when its expected excess above
    every threshold ``y`` — the right-tail integral of the survival
    function — never exceeds ``second``'s and is strictly smaller
    somewhere.  Every risk-averse (convex-disutility) decision maker
    then prefers ``first``.  FSD implies SSD.
    """
    if not isinstance(first, Histogram) or not isinstance(second,
                                                          Histogram):
        raise TypeError("arguments must be Histograms")
    grid = _common_grid(first, second)
    step = grid[1] - grid[0]
    # Right-tail integrals of the survival functions.
    tail_first = np.cumsum(first.sf(grid)[::-1])[::-1] * step
    tail_second = np.cumsum(second.sf(grid)[::-1])[::-1] * step
    scale = max(tail_second[0], 1.0)
    # The Riemann sums carry O(step) error; treat differences below one
    # grid step as ties.
    slack = step + tol * scale
    if np.any(tail_first > tail_second + slack):
        return False
    return bool(np.any(tail_first < tail_second - slack))


def dominance_prune(candidates, *, order=1):
    """Indices of candidates not dominated by any other candidate.

    Parameters
    ----------
    candidates:
        Sequence of cost :class:`Histogram` objects.
    order:
        1 (FSD: safe for all decreasing utilities) or 2 (SSD: safe for
        all risk-averse utilities; prunes more).

    Returns
    -------
    list of int
        Surviving candidate indices, in the original order.
    """
    if order == 1:
        dominates = first_order_dominates
    elif order == 2:
        dominates = second_order_dominates
    else:
        raise ValueError(f"order must be 1 or 2, got {order!r}")
    candidates = list(candidates)
    survivors = []
    for index, candidate in enumerate(candidates):
        dominated = False
        for other_index, other in enumerate(candidates):
            if other_index == index:
                continue
            if dominates(other, candidate):
                dominated = True
                break
        if not dominated:
            survivors.append(index)
    if not survivors:  # all mutually dominated within tolerance
        survivors = list(range(len(candidates)))
    return survivors


def select_best(candidates, utility, *, prune=True, order=1):
    """The expected-utility-optimal candidate, optionally after pruning.

    Returns ``(best_index, best_utility, n_evaluated)`` —
    ``n_evaluated`` exposes the work saved by pruning for the E18
    benchmark.
    """
    if not isinstance(utility, UtilityFunction):
        raise TypeError("utility must be a UtilityFunction")
    candidates = list(candidates)
    if not candidates:
        raise ValueError("candidates must not be empty")
    indices = (dominance_prune(candidates, order=order) if prune
               else list(range(len(candidates))))
    best_index, best_value = None, -np.inf
    for index in indices:
        value = utility.expected(candidates[index])
        if value > best_value:
            best_index, best_value = index, value
    return best_index, best_value, len(indices)
