"""Predictive maintenance decision policies (paper §II-D).

"Predictive maintenance aims to preempt equipment failure to ensure
uninterrupted operation."  The decision problem: given a degradation
signal (or an anomaly score stream from the analytics layer), choose
*when* to service the equipment, trading the cost of early (preventive)
service against the much larger cost of an in-service failure.

Three policies, compared by the maintenance example:

* :class:`RunToFailurePolicy` — never service proactively;
* :class:`PeriodicPolicy` — service on a fixed calendar;
* :class:`PredictivePolicy` — service when the smoothed health score
  crosses an alarm threshold (driven by any detector/forecaster score).

:func:`simulate_maintenance` replays a degradation process with
injected failures and reports the realized cost of a policy.
"""

from __future__ import annotations

import numpy as np

from .._validation import check_positive, ensure_rng

__all__ = [
    "degradation_process",
    "RunToFailurePolicy",
    "PeriodicPolicy",
    "PredictivePolicy",
    "simulate_maintenance",
]


def degradation_process(n_steps=2000, *, wear_rate=0.002, noise=0.01,
                        failure_level=1.0, rng=None):
    """Synthetic equipment health signal with stochastic wear.

    Health starts at 0 (new) and drifts toward ``failure_level``; each
    service resets it.  Returns the *wear increments*, which the
    simulator accumulates (so policies can reset the state).
    """
    check_positive(n_steps, "n_steps")
    rng = ensure_rng(rng)
    increments = np.maximum(
        rng.normal(wear_rate, noise, int(n_steps)), 0.0)
    # Occasional shock wear (rough handling, overload).
    shocks = rng.random(int(n_steps)) < 0.005
    increments[shocks] += rng.uniform(0.05, 0.15, shocks.sum())
    return increments


class RunToFailurePolicy:
    """Never service proactively."""

    def decide(self, health, step):
        return False


class PeriodicPolicy:
    """Service every ``interval`` steps regardless of condition."""

    def __init__(self, interval=300):
        self.interval = int(check_positive(interval, "interval"))
        self._last_service = 0

    def decide(self, health, step):
        if step - self._last_service >= self.interval:
            self._last_service = step
            return True
        return False


class PredictivePolicy:
    """Service when the (noisy) observed health crosses a threshold.

    Parameters
    ----------
    threshold:
        Alarm level as a fraction of the failure level.
    smoothing:
        EWMA factor applied to the observed health signal.
    """

    def __init__(self, threshold=0.8, *, smoothing=0.3):
        if not 0.0 < threshold < 1.0:
            raise ValueError("threshold must be in (0, 1)")
        self.threshold = float(threshold)
        self.smoothing = float(smoothing)
        self._smoothed = 0.0

    def decide(self, health, step):
        self._smoothed = (self.smoothing * health
                          + (1 - self.smoothing) * self._smoothed)
        if self._smoothed >= self.threshold:
            self._smoothed = 0.0
            return True
        return False


def simulate_maintenance(increments, policy, *, failure_level=1.0,
                         observation_noise=0.02, preventive_cost=1.0,
                         corrective_cost=10.0, downtime_cost=0.05,
                         rng=None):
    """Replay a wear process under a maintenance policy.

    The policy sees a *noisy* health observation each step and may
    trigger preventive service; if accumulated wear reaches the failure
    level first, a (much costlier) corrective repair happens.

    Returns
    -------
    dict
        ``failures``, ``services``, ``total_cost``, ``availability``.
    """
    increments = np.asarray(increments, dtype=float)
    rng = ensure_rng(rng)
    health = 0.0
    failures = 0
    services = 0
    downtime = 0
    for step, wear in enumerate(increments):
        health += float(wear)
        if health >= failure_level:
            failures += 1
            health = 0.0
            downtime += 1
            continue
        observed = health + float(rng.normal(0.0, observation_noise))
        observed = min(max(observed / failure_level, 0.0), 1.5)
        if policy.decide(observed, step):
            services += 1
            health = 0.0
    total_cost = (preventive_cost * services
                  + corrective_cost * failures
                  + downtime_cost * downtime)
    return {
        "failures": failures,
        "services": services,
        "total_cost": float(total_cost),
        "availability": 1.0 - downtime / len(increments),
    }
