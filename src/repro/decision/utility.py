"""Utility functions and risk preferences (paper §II-D).

"Different stakeholders may have different risk preferences ... By
employing utility functions, we can encode different risk preferences,
and then use expected utility to identify the most favorable options."

Utilities here are defined over *costs* (travel time, money, energy):
every utility is decreasing in cost, and higher expected utility is
better.  The three canonical risk profiles:

* **risk-neutral** — cares only about the mean cost;
* **risk-averse** — exponentially penalizes high-cost outcomes (a
  commuter who must not miss a flight);
* **risk-seeking** — rewards the chance of very low costs (a courier
  paid per fast delivery).

All utilities evaluate against the :class:`Histogram` distributions the
governance layer produces, via exact expectation over the support.
"""

from __future__ import annotations

import numpy as np

from .._validation import check_positive
from ..governance.uncertainty import Histogram

__all__ = [
    "UtilityFunction",
    "RiskNeutralUtility",
    "RiskAverseUtility",
    "RiskSeekingUtility",
    "DeadlineUtility",
    "expected_utility",
    "certainty_equivalent",
]


class UtilityFunction:
    """Base class: a decreasing map from cost to utility."""

    def __call__(self, costs):
        """Vectorized utility of ``costs``."""
        raise NotImplementedError

    def expected(self, distribution):
        """Expected utility under a cost :class:`Histogram`."""
        if not isinstance(distribution, Histogram):
            raise TypeError("distribution must be a Histogram")
        return distribution.expectation(self)


class RiskNeutralUtility(UtilityFunction):
    """``u(c) = -c``: ranks options by mean cost alone."""

    def __call__(self, costs):
        return -np.asarray(costs, dtype=float)


class RiskAverseUtility(UtilityFunction):
    """``u(c) = -exp(a c) / a``: high costs hurt superlinearly.

    Parameters
    ----------
    aversion:
        Absolute risk-aversion coefficient ``a > 0``; larger = more
        averse.
    scale:
        Cost normalization (utilities are computed on ``c / scale`` so
        the coefficient is dimension-free).
    """

    def __init__(self, aversion=1.0, scale=1.0):
        self.aversion = float(check_positive(aversion, "aversion"))
        self.scale = float(check_positive(scale, "scale"))

    def __call__(self, costs):
        normalized = np.asarray(costs, dtype=float) / self.scale
        return -np.exp(self.aversion * normalized) / self.aversion


class RiskSeekingUtility(UtilityFunction):
    """``u(c) = exp(-a c)``: the chance of very low costs dominates."""

    def __init__(self, seeking=1.0, scale=1.0):
        self.seeking = float(check_positive(seeking, "seeking"))
        self.scale = float(check_positive(scale, "scale"))

    def __call__(self, costs):
        normalized = np.asarray(costs, dtype=float) / self.scale
        return np.exp(-self.seeking * normalized)


class DeadlineUtility(UtilityFunction):
    """Step utility: 1 if the cost meets the deadline, 0 otherwise.

    Expected utility equals the probability of on-time arrival — the
    objective of the paper's flagship routing example ("favoring the
    route with the highest probability of an on-time arrival").
    """

    def __init__(self, deadline):
        self.deadline = float(deadline)

    def __call__(self, costs):
        return (np.asarray(costs, dtype=float)
                <= self.deadline).astype(float)


def expected_utility(distribution, utility):
    """Convenience wrapper: ``utility.expected(distribution)``."""
    if not isinstance(utility, UtilityFunction):
        raise TypeError("utility must be a UtilityFunction")
    return utility.expected(distribution)


def certainty_equivalent(distribution, utility, *, tol=1e-6):
    """The deterministic cost valued equally to the distribution.

    Solved by bisection on the (decreasing) utility; for a risk-averse
    utility the certainty equivalent exceeds the mean cost — the premium
    the decision maker would pay to remove the uncertainty.
    """
    def scalar_utility(cost):
        return float(np.asarray(utility(np.array([cost]))).ravel()[0])

    target = utility.expected(distribution)
    low, high = distribution.min(), distribution.max()
    if high - low < tol:
        return low
    u_low = scalar_utility(low)
    u_high = scalar_utility(high)
    if not u_low >= target >= u_high:
        # Clamp: the equivalent lies at a boundary (can happen with
        # degenerate distributions).
        return low if target > u_low else high
    while high - low > tol * max(1.0, abs(high)):
        middle = (low + high) / 2
        if scalar_utility(middle) >= target:
            low = middle
        else:
            high = middle
    return (low + high) / 2
