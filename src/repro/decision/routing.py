"""Stochastic routing: decision making under travel-time uncertainty.

The paper's running example (§I): an autonomous taxi picks the route
with the highest probability of on-time arrival, using the travel-time
distributions the governance layer quantified.  The router:

1. generates candidate paths (k-shortest by expected cost),
2. obtains each candidate's cost *distribution* from an uncertainty
   model (edge-centric or path-centric),
3. prunes dominated candidates (stochastic dominance),
4. picks the winner under the caller's utility — on-time probability,
   risk-averse expected utility, or plain expected cost.

``arrival_windows`` reproduces the qualitative finding of [53]: *which
path is optimal depends on the deadline* — tight deadlines favour
reliable paths, loose ones favour fast-on-average paths.
"""

from __future__ import annotations

import math
import threading
from collections import OrderedDict

import numpy as np

from .._validation import check_positive
from ..datatypes import RoadNetwork
from .stochastic import select_best
from .utility import DeadlineUtility, UtilityFunction

__all__ = ["StochasticRouter"]

#: Memo sentinel for paths the cost model cannot evaluate.
_UNCOVERED = object()


class StochasticRouter:
    """Distribution-aware route selection.

    **Thread-safety contract:** the query methods (:meth:`best_path`,
    :meth:`route_many`, :meth:`on_time_route`, …) are safe to call
    from many threads on one shared router; both serving memos and
    their hit/miss counters are lock-guarded.  Distribution lookups
    stay deterministic under concurrency as long as concurrent queries
    for the same departure *window* use the same departure minute (the
    memo caches the first caller's exact minute, as documented below).

    Parameters
    ----------
    network:
        The road network.
    cost_model:
        An uncertainty model exposing
        ``path_distribution(path, departure_minute)`` (either paradigm
        from :mod:`repro.governance.uncertainty`).
    n_candidates:
        Number of k-shortest candidate paths considered.
    weight:
        Edge attribute used by the candidate generator (defaults to
        geometric ``length``; pass e.g. ``"mean_time"`` after attaching
        expected travel times so fast-but-long corridors are in the
        pool).
    memo_size:
        Max entries in each serving memo (candidate paths per OD pair,
        path distributions per departure window).  ``0`` disables
        memoization entirely.
    memo_window_minutes:
        Width of the departure-time buckets keying the distribution
        memo: queries for the same path whose departures fall in the
        same window share one cached distribution (computed at the
        first query's exact departure minute).
    reduction:
        Compress each query's candidate ensemble to at most this many
        W1-representative members before dominance pruning and utility
        selection (``None`` disables).  The
        :class:`~repro.decision.reduction.Reduction` is memoized per
        ``(origin, destination, departure-window)`` alongside the
        other serving memos, so sustained traffic pays the O(N²)
        reduction once per key and every subsequent query runs over
        k ≪ N; the winning representative's cluster is re-evaluated
        under the utility (see :func:`repro.decision.select_best`), so
        the returned path still ranges over the full candidate pool.
    """

    def __init__(self, network, cost_model, *, n_candidates=8,
                 weight="length", memo_size=1024,
                 memo_window_minutes=5.0, reduction=None):
        if not isinstance(network, RoadNetwork):
            raise TypeError("network must be a RoadNetwork")
        if not hasattr(cost_model, "path_distribution"):
            raise TypeError(
                "cost_model must expose path_distribution(path, minute)"
            )
        self.network = network
        self.cost_model = cost_model
        self.n_candidates = int(check_positive(n_candidates,
                                               "n_candidates"))
        self.weight = str(weight)
        if memo_size < 0:
            raise ValueError(f"memo_size must be >= 0, got {memo_size}")
        self.memo_size = int(memo_size)
        self.memo_window_minutes = float(check_positive(
            memo_window_minutes, "memo_window_minutes"))
        self.reduction = (None if reduction is None
                          else int(check_positive(reduction,
                                                  "reduction")))
        self._memo_lock = threading.RLock()
        self._path_memo = OrderedDict()
        self._distribution_memo = OrderedDict()
        self._reduction_memo = OrderedDict()
        self._memo_hits = 0
        self._memo_misses = 0
        self._published_hits = 0
        self._published_misses = 0

    def __getstate__(self):
        """Pickle without the lock or the warm memos (rebuilt lazily)."""
        state = self.__dict__.copy()
        state.pop("_memo_lock", None)
        state["_path_memo"] = OrderedDict()
        state["_distribution_memo"] = OrderedDict()
        state["_reduction_memo"] = OrderedDict()
        state["_memo_hits"] = state["_memo_misses"] = 0
        state["_published_hits"] = state["_published_misses"] = 0
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._memo_lock = threading.RLock()

    # -- serving memos -----------------------------------------------------
    #
    # Probe / insert / evict and the hit/miss counters all run under
    # the memo lock; the expensive work on a miss (Yen's algorithm,
    # distribution fits) runs outside it, so concurrent misses on the
    # same key may duplicate compute but never corrupt the memo.

    def _memo_get(self, memo, key):
        if self.memo_size == 0:
            return None
        with self._memo_lock:
            value = memo.get(key)
            if value is not None:
                memo.move_to_end(key)
                self._memo_hits += 1
            else:
                self._memo_misses += 1
            return value

    def _memo_put(self, memo, key, value):
        if self.memo_size == 0:
            return
        with self._memo_lock:
            memo[key] = value
            memo.move_to_end(key)
            while len(memo) > self.memo_size:
                memo.popitem(last=False)

    def _publish_memo_metrics(self):
        """Flush memo hit/miss deltas to the global metrics registry.

        Called once per served query, not per memo probe, so serving
        at cache speed never pays for a labeled counter in the loop;
        the ``decision.router_memo_lookups_total`` series lags the
        in-flight query by at most one flush.
        """
        from ..observability.metrics import get_registry

        with self._memo_lock:
            hits = self._memo_hits - self._published_hits
            misses = self._memo_misses - self._published_misses
            if not hits and not misses:
                return
            self._published_hits = self._memo_hits
            self._published_misses = self._memo_misses
        counter = get_registry().counter(
            "decision.router_memo_lookups_total",
            "StochasticRouter serving-memo lookups by outcome")
        if hits:
            counter.inc(hits, outcome="hit")
        if misses:
            counter.inc(misses, outcome="miss")

    def cache_info(self):
        """Serving-memo observability: hits, misses and sizes."""
        self._publish_memo_metrics()
        with self._memo_lock:
            return {
                "hits": self._memo_hits,
                "misses": self._memo_misses,
                "path_memo_size": len(self._path_memo),
                "distribution_memo_size": len(self._distribution_memo),
                "reduction_memo_size": len(self._reduction_memo),
                "maxsize": self.memo_size,
            }

    def clear_cache(self):
        """Drop the memos (call after mutating network or cost model)."""
        self._publish_memo_metrics()
        with self._memo_lock:
            self._path_memo.clear()
            self._distribution_memo.clear()
            self._reduction_memo.clear()
            self._memo_hits = 0
            self._memo_misses = 0
            self._published_hits = 0
            self._published_misses = 0

    def _path_distribution(self, path, departure_minute):
        """Content-keyed, departure-windowed distribution lookup.

        Returns ``_UNCOVERED`` for paths the cost model cannot
        evaluate, so repeated queries for uncovered roads are also
        served from the memo.
        """
        window = int(math.floor(
            float(departure_minute) / self.memo_window_minutes))
        key = (tuple(path), window)
        cached = self._memo_get(self._distribution_memo, key)
        if cached is not None:
            return cached
        try:
            distribution = self.cost_model.path_distribution(
                path, departure_minute)
        except KeyError:
            distribution = _UNCOVERED
        self._memo_put(self._distribution_memo, key, distribution)
        return distribution

    def candidate_paths(self, origin, destination):
        """K-shortest simple paths by ``weight`` (the candidate pool).

        Memoized per ``(origin, destination)`` — Yen's algorithm is the
        most expensive part of a routing query, and fleet serving
        repeats OD pairs constantly.
        """
        key = (origin, destination)
        cached = self._memo_get(self._path_memo, key)
        if cached is None:
            cached = self.network.k_shortest_paths(origin, destination,
                                                   self.n_candidates,
                                                   weight=self.weight)
            self._memo_put(self._path_memo, key, cached)
        return cached

    def candidate_distributions(self, origin, destination,
                                departure_minute=0.0):
        """``(paths, distributions)`` for all *evaluable* candidates.

        Candidates whose edges were never observed by the cost model
        are skipped (a real fleet has uncovered roads).
        """
        paths = []
        distributions = []
        for path in self.candidate_paths(origin, destination):
            distribution = self._path_distribution(path,
                                                   departure_minute)
            if distribution is _UNCOVERED:
                continue
            paths.append(path)
            distributions.append(distribution)
        if not paths:
            raise ValueError(
                "no candidate path is covered by the cost model"
            )
        return paths, distributions

    def _ensemble_reduction(self, origin, destination,
                            departure_minute, distributions):
        """The memoized candidate-ensemble reduction for this query.

        Returns ``None`` when reduction is disabled or would not
        shrink the ensemble.  Keyed like the distribution memo —
        ``(origin, destination, departure-window)`` — so repeated
        traffic reuses one reduction per key; the expensive W1 forward
        selection runs outside the memo lock (concurrent misses may
        duplicate compute but never corrupt the memo).  A cached
        reduction whose input size no longer matches the live
        candidate pool (possible after memo eviction races) is
        recomputed rather than trusted.
        """
        if not self.reduction or len(distributions) <= self.reduction:
            return None
        window = int(math.floor(
            float(departure_minute) / self.memo_window_minutes))
        key = (origin, destination, window)
        cached = self._memo_get(self._reduction_memo, key)
        if cached is not None and cached.n_input == len(distributions):
            return cached
        from .reduction import reduce_scenarios

        reduction = reduce_scenarios(distributions, self.reduction)
        self._memo_put(self._reduction_memo, key, reduction)
        return reduction

    def best_path(self, origin, destination, utility, *,
                  departure_minute=0.0, prune=True):
        """The expected-utility-optimal path.

        Returns ``(path, distribution, expected_utility)``.  When the
        router was built with ``reduction=k``, pruning and the utility
        sweep run over the memoized k-representative ensemble (plus
        the winning cluster's refinement pass) instead of the full
        candidate pool.
        """
        if not isinstance(utility, UtilityFunction):
            raise TypeError("utility must be a UtilityFunction")
        paths, distributions = self.candidate_distributions(
            origin, destination, departure_minute)
        reduction = self._ensemble_reduction(
            origin, destination, departure_minute, distributions)
        best, value, _ = select_best(distributions, utility,
                                     prune=prune, reduction=reduction)
        self._publish_memo_metrics()
        return paths[best], distributions[best], value

    def route_many(self, queries, utility, *, prune=True):
        """Batch serving: answer ``(origin, destination, departure)``
        queries.

        Repeated OD pairs reuse the memoized candidate pool and
        repeated ``(path, departure-window)`` pairs reuse the memoized
        distributions, so sustained traffic with recurring queries is
        served at cache speed.  Each result is the :meth:`best_path`
        triple, or ``None`` when no candidate path is covered by the
        cost model.
        """
        results = []
        for origin, destination, departure_minute in queries:
            try:
                results.append(self.best_path(
                    origin, destination, utility,
                    departure_minute=departure_minute, prune=prune))
            except (ValueError, KeyError):
                results.append(None)
        return results

    def on_time_route(self, origin, destination, deadline, *,
                      departure_minute=0.0):
        """Maximize the probability of arriving within ``deadline``.

        Returns ``(path, on_time_probability)`` — the tutorial's
        flagship decision rule.
        """
        path, distribution, probability = self.best_path(
            origin, destination, DeadlineUtility(deadline),
            departure_minute=departure_minute)
        return path, probability

    def mean_cost_route(self, origin, destination, *,
                        departure_minute=0.0):
        """The baseline: minimize *expected* travel time only."""
        paths, distributions = self.candidate_distributions(
            origin, destination, departure_minute)
        best = int(np.argmin([d.mean() for d in distributions]))
        return paths[best], distributions[best]

    def best_departure(self, origin, destination, travel_budget,
                       candidate_departures):
        """When to leave: the departure time maximizing on-time arrival.

        Travel costs are time-varying ([51]: "time-varying, uncertain
        travel costs"), so the *same* trip has different risk at
        different departure times — leaving before the rush can beat
        leaving into it even with a later deadline.

        Parameters
        ----------
        travel_budget:
            Allowed travel time (the deadline is departure + budget).
        candidate_departures:
            Minutes-of-day to consider.

        Returns
        -------
        (float, list, float)
            Best departure minute, its optimal path, and the on-time
            probability.
        """
        check_positive(travel_budget, "travel_budget")
        best = None
        for departure in candidate_departures:
            try:
                path, probability = self.on_time_route(
                    origin, destination, travel_budget,
                    departure_minute=departure)
            except (ValueError, KeyError):
                continue
            if best is None or probability > best[2]:
                best = (float(departure), path, probability)
        if best is None:
            raise ValueError(
                "no candidate departure admits an evaluable route"
            )
        return best

    def arrival_windows(self, origin, destination, deadlines, *,
                        departure_minute=0.0):
        """Optimal path per deadline — the arrival-window view of [53].

        Returns a list of ``(deadline, path_index, probability)`` using
        a shared candidate indexing, so callers can see exactly where
        the optimal choice flips as the deadline tightens.
        """
        paths, distributions = self.candidate_distributions(
            origin, destination, departure_minute)
        results = []
        for deadline in deadlines:
            probabilities = [1.0 - d.sf(deadline) for d in distributions]
            best = int(np.argmax(probabilities))
            results.append((float(deadline), best, probabilities[best]))
        return results, paths
