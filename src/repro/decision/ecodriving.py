"""Eco-driving: emission-aware speed planning (paper §II-D).

"Eco-driving focuses on reducing emissions through informed driving
practices."  The decision problem: given a route's segments (lengths
and speed limits) and an arrival deadline, choose per-segment speeds
minimizing fuel/emissions.

Fuel use per distance follows the classical U-shaped curve

.. math::  f(v) = a / v + b + c \\, v^2

(idle-dominated at low speed, drag-dominated at high speed).  Total
fuel ``sum(d_i * f(v_i))`` is convex in the segment speeds, and the
deadline constraint ``sum(d_i / v_i) <= T`` is convex in ``1/v``, so
the optimum has a clean Lagrangian structure: every segment drives at
the *same* marginal trade-off between time and fuel.
:class:`EcoDrivingPlanner` solves it by bisecting the time-price
``lambda``.
"""

from __future__ import annotations

import numpy as np

from .._validation import check_positive

__all__ = ["FuelModel", "EcoDrivingPlanner"]


class FuelModel:
    """U-shaped fuel-per-distance curve ``f(v) = a/v + b + c v^2``.

    Parameters map to physical effects: ``a`` idle/accessory burn per
    time, ``b`` rolling resistance, ``c`` aerodynamic drag.  The
    unconstrained optimum is ``v* = (a / (2 c)) ** (1/3)``.
    """

    def __init__(self, a=90.0, b=3.0, c=0.002):
        self.a = float(check_positive(a, "a"))
        self.b = float(check_positive(b, "b"))
        self.c = float(check_positive(c, "c"))

    def per_distance(self, speed):
        """Fuel per unit distance at ``speed`` (vectorized)."""
        v = np.asarray(speed, dtype=float)
        if np.any(v <= 0):
            raise ValueError("speed must be positive")
        return self.a / v + self.b + self.c * v ** 2

    @property
    def optimal_speed(self):
        """The fuel-minimal cruising speed (no deadline pressure)."""
        return float((self.a / (2.0 * self.c)) ** (1.0 / 3.0))

    def speed_for_time_price(self, time_price):
        """The speed a rational driver picks when time costs
        ``time_price`` fuel-units per time-unit.

        Minimizes ``f(v) + time_price / v`` — the first-order condition
        is ``2 c v^3 = a + time_price``, solved in closed form.
        """
        if time_price < 0:
            raise ValueError("time_price must be >= 0")
        return float(((self.a + time_price) / (2.0 * self.c))
                     ** (1.0 / 3.0))


class EcoDrivingPlanner:
    """Deadline-constrained speed planning along a route.

    Parameters
    ----------
    fuel_model:
        The vehicle's consumption curve.
    """

    def __init__(self, fuel_model=None):
        self.fuel_model = fuel_model if fuel_model is not None \
            else FuelModel()

    def _clamped_speeds(self, time_price, limits):
        raw = self.fuel_model.speed_for_time_price(time_price)
        return np.minimum(raw, limits)

    def plan(self, segments, deadline=None, *, tol=1e-9):
        """Choose per-segment speeds.

        Parameters
        ----------
        segments:
            List of ``(length, speed_limit)`` pairs.
        deadline:
            Maximum total travel time; ``None`` means fuel-optimal
            cruising (subject to limits).

        Returns
        -------
        dict
            ``speeds`` (per segment), ``travel_time``, ``fuel``.

        Raises
        ------
        ValueError
            When the deadline is infeasible even at the speed limits.
        """
        if not segments:
            raise ValueError("need at least one segment")
        lengths = np.array([float(s[0]) for s in segments])
        limits = np.array([float(s[1]) for s in segments])
        if np.any(lengths <= 0) or np.any(limits <= 0):
            raise ValueError("lengths and limits must be positive")

        def totals(speeds):
            time = float((lengths / speeds).sum())
            fuel = float(
                (lengths * self.fuel_model.per_distance(speeds)).sum())
            return time, fuel

        # Unpressured plan: fuel-optimal speed, clamped to limits.
        relaxed = self._clamped_speeds(0.0, limits)
        relaxed_time, relaxed_fuel = totals(relaxed)
        if deadline is None or relaxed_time <= deadline:
            return {"speeds": relaxed, "travel_time": relaxed_time,
                    "fuel": relaxed_fuel}

        fastest_time, _ = totals(limits)
        if fastest_time > deadline + tol:
            raise ValueError(
                f"deadline {deadline} infeasible: even at the limits "
                f"the route takes {fastest_time:.3f}"
            )

        # Bisect the time price until the deadline binds.
        low, high = 0.0, 1.0
        while totals(self._clamped_speeds(high, limits))[0] > deadline:
            high *= 2.0
            if high > 1e12:
                raise RuntimeError("time-price bisection diverged")
        for _ in range(200):
            middle = 0.5 * (low + high)
            if totals(self._clamped_speeds(middle, limits))[0] > deadline:
                low = middle
            else:
                high = middle
            if high - low < tol * max(high, 1.0):
                break
        speeds = self._clamped_speeds(high, limits)
        time, fuel = totals(speeds)
        return {"speeds": speeds, "travel_time": time, "fuel": fuel}

    def baseline_at_limits(self, segments):
        """The hurried baseline: drive every segment at its limit."""
        lengths = np.array([float(s[0]) for s in segments])
        limits = np.array([float(s[1]) for s in segments])
        time = float((lengths / limits).sum())
        fuel = float(
            (lengths * self.fuel_model.per_distance(limits)).sum())
        return {"speeds": limits, "travel_time": time, "fuel": fuel}

    def savings(self, segments, deadline):
        """Fuel saved vs. driving at the limits, at equal punctuality.

        Returns ``(fraction_saved, plan, baseline)``.
        """
        plan = self.plan(segments, deadline)
        baseline = self.baseline_at_limits(segments)
        saved = 1.0 - plan["fuel"] / baseline["fuel"]
        return saved, plan, baseline
