"""Generative scenario sampling (paper §II-E, "generative model
potential").

The paper's research-directions section argues that generative models
can improve "temporal and spatio-temporal decision-making" via their
"precision in data generation".  The classical, assumption-light
generative device for time series is the **seasonal block bootstrap**:
resample contiguous blocks of the historical series — drawn from the
matching phase of the seasonal cycle — and stitch them into new,
never-observed but statistically faithful trajectories.

Decision layers consume the sampler for *scenario-based* evaluation:
instead of a single forecast, a policy (autoscaler, router) is stress-
tested against an ensemble of plausible futures.
"""

from __future__ import annotations

import numpy as np

from .._validation import check_positive, ensure_rng
from ..datatypes import TimeSeries

__all__ = ["BlockBootstrapGenerator"]


class BlockBootstrapGenerator:
    """Seasonal block-bootstrap sampler for univariate series.

    Parameters
    ----------
    block_length:
        Length of the resampled blocks (controls how much local dynamic
        structure is preserved).
    period:
        When given, blocks are drawn only from positions whose phase in
        the seasonal cycle matches the position being generated (within
        ``phase_tolerance``), so daily/weekly shapes survive resampling.
    phase_tolerance:
        Allowed phase mismatch, in steps.
    """

    def __init__(self, block_length=24, *, period=None,
                 phase_tolerance=2, rng=None):
        self.block_length = int(check_positive(block_length,
                                               "block_length"))
        self.period = (int(check_positive(period, "period"))
                       if period is not None else None)
        self.phase_tolerance = int(phase_tolerance)
        self._rng = ensure_rng(rng)
        self._fitted = False

    def fit(self, series):
        """Memorize the historical values (and their phases)."""
        if not isinstance(series, TimeSeries):
            raise TypeError("series must be a TimeSeries")
        if not series.is_complete():
            raise ValueError("generator requires complete data")
        values = series.values[:, 0]
        if len(values) < 2 * self.block_length:
            raise ValueError(
                "series must cover at least two block lengths"
            )
        self._values = values.copy()
        self._fitted = True
        return self

    def _candidate_starts(self, position):
        """Valid block-start indices for generating at ``position``."""
        last = len(self._values) - self.block_length
        starts = np.arange(last + 1)
        if self.period is None:
            return starts
        phase = position % self.period
        start_phases = starts % self.period
        gap = np.minimum((start_phases - phase) % self.period,
                         (phase - start_phases) % self.period)
        matching = starts[gap <= self.phase_tolerance]
        return matching if len(matching) else starts

    def sample(self, length, rng=None, *, start_phase=0):
        """Generate one synthetic trajectory of the given length.

        Consecutive blocks are level-adjusted at the seams (the new
        block is shifted so its first value continues the previous
        block's last value) to avoid bootstrap discontinuities.

        ``start_phase`` aligns the scenario with a continuation point:
        to generate futures following a history of length ``n``, pass
        ``start_phase = n % period`` so the seasonal cycle continues
        where the history left off.
        """
        if not self._fitted:
            raise RuntimeError("fit before sampling")
        check_positive(length, "length")
        length = int(length)
        rng = self._rng if rng is None else ensure_rng(rng)
        output = np.empty(length)
        position = 0
        previous_end = None
        while position < length:
            starts = self._candidate_starts(position + int(start_phase))
            start = int(starts[int(rng.integers(0, len(starts)))])
            block = self._values[start:start + self.block_length].copy()
            if previous_end is not None:
                # Blend the seam: half the jump is absorbed by shifting
                # the block, so levels stay continuous without flattening
                # genuine seasonal swings.
                block += 0.5 * (previous_end - block[0])
            take = min(self.block_length, length - position)
            output[position:position + take] = block[:take]
            previous_end = block[take - 1]
            position += take
        return output

    def sample_paths(self, length, n_paths, rng=None, *, start_phase=0):
        """Matrix of ``n_paths`` independent scenarios, shape
        ``(n_paths, length)``."""
        rng = self._rng if rng is None else ensure_rng(rng)
        return np.stack([
            self.sample(length, rng=rng, start_phase=start_phase)
            for _ in range(int(n_paths))
        ])

    def scenario_quantile(self, length, quantile, n_paths=200, rng=None,
                          *, start_phase=0):
        """Pointwise scenario quantile — e.g. the 95th-percentile demand
        trajectory a capacity planner should provision for."""
        paths = self.sample_paths(length, n_paths, rng=rng,
                                  start_phase=start_phase)
        return np.quantile(paths, quantile, axis=0)