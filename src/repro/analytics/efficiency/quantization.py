"""Uniform affine weight quantization (LightTS / QCore substrate).

The paper's resource-efficiency line (LightTS [47], QCore [48]) runs
models on edge devices by storing weights at low bit-widths.  This
module provides the quantizer those reproductions share:

* :func:`quantize_array` / :func:`dequantize_array` — uniform affine
  quantization of a float array to ``bits`` bits (symmetric range);
* :class:`QuantizedLinear` — a linear map stored in quantized form, with
  the scale factors exposed so QCore-style *continual calibration* can
  adjust them without touching the integer weights.
"""

from __future__ import annotations

import numpy as np

from ..._validation import as_float_array

__all__ = ["quantize_array", "dequantize_array", "QuantizedLinear",
           "model_size_bytes"]


def quantize_array(values, bits):
    """Quantize to signed integers of the given bit-width.

    Returns ``(codes, scale)`` with ``values ~= codes * scale``.  The
    scale maps the array's max absolute value to the top code.
    """
    if not 2 <= int(bits) <= 32:
        raise ValueError(f"bits must be in [2, 32], got {bits!r}")
    bits = int(bits)
    array = as_float_array(values, "values", allow_empty=False)
    top = 2 ** (bits - 1) - 1
    peak = np.abs(array).max()
    if peak == 0:
        return np.zeros_like(array, dtype=np.int64), 1.0
    scale = peak / top
    codes = np.clip(np.round(array / scale), -top - 1, top)
    return codes.astype(np.int64), float(scale)


def dequantize_array(codes, scale):
    """Reconstruct floats from ``(codes, scale)``."""
    return np.asarray(codes, dtype=float) * float(scale)


def model_size_bytes(n_parameters, bits):
    """Storage for ``n_parameters`` weights at ``bits`` bits (plus one
    float32 scale)."""
    return int(np.ceil(n_parameters * bits / 8)) + 4


class QuantizedLinear:
    """A linear layer ``y = x W + b`` stored at low precision.

    ``W`` is quantized per *column* (one scale per output), which keeps
    the quantization error of each output independent — and gives QCore
    a per-output calibration knob.
    """

    def __init__(self, weights, intercept, bits):
        weights = as_float_array(weights, "weights", ndim=2)
        intercept = as_float_array(intercept, "intercept", ndim=1)
        if intercept.shape[0] != weights.shape[1]:
            raise ValueError("intercept must have one entry per output")
        self.bits = int(bits)
        self.codes = np.zeros(weights.shape, dtype=np.int64)
        self.scales = np.zeros(weights.shape[1])
        for column in range(weights.shape[1]):
            codes, scale = quantize_array(weights[:, column], bits)
            self.codes[:, column] = codes
            self.scales[column] = scale
        self.intercept = intercept.copy()

    @property
    def weights(self):
        """The dequantized weight matrix."""
        return self.codes.astype(float) * self.scales[None, :]

    @property
    def size_bytes(self):
        """Storage: integer codes + one float scale per column + bias."""
        weight_bytes = int(np.ceil(self.codes.size * self.bits / 8))
        return weight_bytes + 4 * len(self.scales) + 4 * len(self.intercept)

    def predict(self, inputs):
        inputs = np.asarray(inputs, dtype=float)
        return inputs @ self.weights + self.intercept

    def calibrate(self, inputs, targets, *, learning_rate=0.1,
                  n_iterations=50):
        """QCore-style continual calibration [48].

        Adjusts only the per-column ``scales`` and the ``intercept`` (a
        handful of floats) to fit recent ``(inputs, targets)`` pairs by
        gradient descent, leaving the integer codes untouched — exactly
        the cheap on-device update QCore performs when the data
        distribution shifts.
        """
        inputs = np.asarray(inputs, dtype=float)
        targets = np.asarray(targets, dtype=float)
        if targets.ndim == 1:
            targets = targets[:, None]
        if inputs.shape[0] != targets.shape[0]:
            raise ValueError("inputs and targets must align")
        n = inputs.shape[0]
        base = inputs @ self.codes.astype(float)  # (n, outputs)
        for _ in range(int(n_iterations)):
            predicted = base * self.scales[None, :] + self.intercept
            error = predicted - targets
            gradient_scale = 2.0 * (error * base).mean(axis=0)
            gradient_bias = 2.0 * error.mean(axis=0)
            # Normalize the scale gradient so the step size is stable
            # across feature magnitudes.
            norm = np.abs(base).mean(axis=0) ** 2 + 1e-12
            self.scales -= learning_rate * gradient_scale / norm
            self.intercept -= learning_rate * gradient_bias
        return self
