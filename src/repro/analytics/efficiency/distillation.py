"""Knowledge distillation for forecasting models.

The regression-side counterpart of the LightTS classification pipeline:
a large teacher (typically an ensemble or a high-order model) labels the
training data with its *own* predictions, and a much smaller student is
fit to those predictions instead of the raw targets.  The student
inherits the teacher's smoothing of noise, which is why distilled
students routinely beat identically-sized models trained on raw data —
the effect experiment E16 quantifies.
"""

from __future__ import annotations

import numpy as np

from ..._validation import check_positive
from ..forecasting.base import Forecaster
from ..forecasting.linear import ridge_fit
from .quantization import QuantizedLinear

__all__ = ["DistilledForecaster"]


class DistilledForecaster(Forecaster):
    """A small (optionally quantized) AR student taught by any forecaster.

    Parameters
    ----------
    teacher:
        An unfitted forecaster used to produce the soft targets.
    n_lags:
        The student's (small) lag order.
    bits:
        When given, the student's weights are stored quantized at this
        bit-width (:class:`QuantizedLinear`), giving the edge-deployable
        artifact of the efficiency experiments.
    """

    def __init__(self, teacher, n_lags=4, *, alpha=1.0, bits=None):
        self.teacher = teacher
        self.n_lags = int(check_positive(n_lags, "n_lags"))
        self.alpha = float(alpha)
        self.bits = bits

    def fit(self, series):
        series = self._validate_series(series)
        values = series.values
        if len(values) <= self.n_lags + 2:
            raise ValueError("series too short for distillation")

        # Teacher produces one-step-ahead soft targets over the series'
        # second half (fit on an expanding prefix, in a coarse grid for
        # speed).
        half = len(series) // 2
        soft_inputs = []
        soft_targets = []
        step = max(1, (len(series) - half) // 60)
        for position in range(half, len(series) - 1, step):
            prefix = series.slice(0, position)
            try:
                prediction = self.teacher.forecast(prefix, 1)[0]
            except (ValueError, RuntimeError):
                continue
            lags = values[position - self.n_lags:position][::-1].ravel()
            soft_inputs.append(lags)
            soft_targets.append(prediction)
        if len(soft_inputs) < self.n_lags + 2:
            raise ValueError("teacher produced too few soft targets")
        features = np.stack(soft_inputs)
        targets = np.stack(soft_targets)

        weights, intercept = ridge_fit(features, targets, self.alpha)
        if self.bits is not None:
            self._linear = QuantizedLinear(weights, intercept, self.bits)
        else:
            self._linear = None
            self._weights, self._intercept = weights, intercept
        self._history = values.copy()
        self._fitted = True
        return self

    def _apply(self, lags):
        if self._linear is not None:
            return self._linear.predict(lags[None, :])[0]
        return lags @ self._weights + self._intercept

    def predict(self, horizon):
        self._check_fitted()
        horizon = self._validate_horizon(horizon)
        extended = self._history
        forecasts = np.zeros((horizon, extended.shape[1]))
        for step in range(horizon):
            lags = extended[-self.n_lags:][::-1].ravel()
            prediction = self._apply(lags)
            forecasts[step] = prediction
            extended = np.vstack([extended, prediction])
        return forecasts

    @property
    def size_bytes(self):
        """Storage of the student's parameters."""
        self._check_fitted()
        if self._linear is not None:
            return self._linear.size_bytes
        return 4 * int(self._weights.size + self._intercept.size)
