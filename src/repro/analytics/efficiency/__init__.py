"""Resource efficiency: quantization, continual calibration (QCore),
dataset condensation (TimeDC), and knowledge distillation."""

from .condensation import TimeSeriesCondenser
from .distillation import DistilledForecaster
from .quantization import (
    QuantizedLinear,
    dequantize_array,
    model_size_bytes,
    quantize_array,
)

__all__ = [
    "DistilledForecaster",
    "QuantizedLinear",
    "TimeSeriesCondenser",
    "dequantize_array",
    "model_size_bytes",
    "quantize_array",
]
