"""Time-series dataset condensation (TimeDC [49]).

"Less is more": compress a large training set of windows into a much
smaller synthetic set that trains models almost as well.  TimeDC
matches the condensed set to the original along two modalities — time-
domain shapes and frequency-domain spectra.  The reproduction keeps the
two-fold structure:

1. **initialization** — k-means picks ``n_condensed`` representative
   windows (shape coverage);
2. **two-fold refinement** — alternating steps move the synthetic
   windows to jointly match (a) the per-cluster mean shape in the time
   domain and (b) the per-cluster spectral envelope (log-band energies)
   in the frequency domain.  The frequency step restores the
   high-frequency content that k-means averaging washes out, which is
   what makes the condensed set train classifiers almost as well as the
   original.

``evaluate_utility`` measures the paper's headline metric: accuracy of
a model trained on the condensed set relative to one trained on
everything.
"""

from __future__ import annotations

import numpy as np

from ..._validation import check_positive, ensure_rng

__all__ = ["TimeSeriesCondenser"]


def _kmeans(windows, k, rng, n_iterations=25):
    """Plain k-means with k-means++ seeding; returns (centers, labels)."""
    n = len(windows)
    centers = [windows[int(rng.integers(0, n))]]
    for _ in range(k - 1):
        distances = np.min(
            [((windows - c) ** 2).sum(axis=1) for c in centers], axis=0
        )
        total = distances.sum()
        if total <= 0:
            centers.append(windows[int(rng.integers(0, n))])
            continue
        probabilities = distances / total
        centers.append(windows[int(rng.choice(n, p=probabilities))])
    centers = np.stack(centers)
    labels = np.zeros(n, dtype=int)
    for _ in range(n_iterations):
        distances = ((windows[:, None, :] - centers[None, :, :]) ** 2
                     ).sum(axis=2)
        labels = distances.argmin(axis=1)
        for index in range(k):
            members = windows[labels == index]
            if len(members):
                centers[index] = members.mean(axis=0)
    return centers, labels


class TimeSeriesCondenser:
    """Two-fold (time + frequency) dataset condensation.

    Parameters
    ----------
    n_condensed:
        Size of the synthetic set.
    frequency_weight:
        Relative weight of the spectral-matching term.
    """

    def __init__(self, n_condensed=20, *, frequency_weight=1.0,
                 n_iterations=30, learning_rate=0.1, n_bands=8, rng=None):
        self.n_condensed = int(check_positive(n_condensed, "n_condensed"))
        self.frequency_weight = float(frequency_weight)
        self.n_iterations = int(check_positive(n_iterations,
                                               "n_iterations"))
        self.learning_rate = float(learning_rate)
        self.n_bands = int(check_positive(n_bands, "n_bands"))
        self._rng = ensure_rng(rng)
        self._fitted = False

    def fit(self, windows):
        """Condense ``windows`` of shape ``(n, length)``."""
        windows = np.asarray(windows, dtype=float)
        if windows.ndim != 2:
            raise ValueError("windows must be 2-D")
        if len(windows) <= self.n_condensed:
            raise ValueError(
                "condensed size must be smaller than the dataset"
            )
        centers, labels = _kmeans(windows, self.n_condensed, self._rng)

        # Frequency-modality targets: per-cluster mean amplitude spectra.
        # k-means averaging washes out high-frequency content (noise
        # floor, sharp transitions); the frequency step restores it.
        length = windows.shape[1]
        spectra = np.abs(np.fft.rfft(windows, axis=1))
        n_bins = spectra.shape[1]
        cluster_spectra = np.stack([
            spectra[labels == index].mean(axis=0)
            if (labels == index).any() else spectra.mean(axis=0)
            for index in range(self.n_condensed)
        ])
        band_edges = np.unique(
            np.geomspace(1, max(n_bins - 1, 2),
                         self.n_bands + 1).astype(int))

        synthetic = centers.copy()
        self.losses_ = []
        for iteration in range(self.n_iterations):
            # Time-domain step: track the cluster's mean shape.
            synthetic -= self.learning_rate * 2.0 * (synthetic - centers)
            # Frequency-domain step: per log-spaced band, rescale each
            # window's spectral energy toward the cluster target.  Band-
            # level gains restore the spectral *envelope* without
            # imposing per-bin structure with incoherent phases.
            if self.frequency_weight > 0:
                spectrum = np.fft.rfft(synthetic, axis=1)
                amplitude = np.abs(spectrum)
                gains = np.ones_like(amplitude)
                for low, high in zip(band_edges, band_edges[1:]):
                    own = np.sqrt((amplitude[:, low:high] ** 2).sum(axis=1))
                    target = np.sqrt(
                        (cluster_spectra[:, low:high] ** 2).sum(axis=1))
                    ratio = np.where(own > 1e-9, target
                                     / np.maximum(own, 1e-9), 1.0)
                    step = ratio ** min(1.0, self.frequency_weight)
                    gains[:, low:high] = step[:, None]
                synthetic = np.fft.irfft(spectrum * gains, n=length,
                                         axis=1)
            time_loss = float(((synthetic - centers) ** 2).mean())
            amplitude = np.abs(np.fft.rfft(synthetic, axis=1))
            frequency_loss = float(
                ((amplitude - cluster_spectra) ** 2).mean()) / length
            self.losses_.append(time_loss
                                + self.frequency_weight * frequency_loss)
        self.synthetic_ = synthetic
        self._fitted = True
        return self

    def fit_labeled(self, windows, labels):
        """Condense a labeled dataset class-by-class.

        ``n_condensed`` windows are produced *per class*.  Returns the
        synthetic ``(X, y)`` pair ready to train a classifier on
        (experiment E17's protocol).
        """
        windows = np.asarray(windows, dtype=float)
        labels = np.asarray(labels)
        if len(windows) != len(labels):
            raise ValueError("windows and labels must align")
        synthetic_parts = []
        synthetic_labels = []
        for value in np.unique(labels):
            members = windows[labels == value]
            condenser = TimeSeriesCondenser(
                self.n_condensed,
                frequency_weight=self.frequency_weight,
                n_iterations=self.n_iterations,
                learning_rate=self.learning_rate,
                n_bands=self.n_bands,
                rng=self._rng,
            )
            condenser.fit(members)
            synthetic_parts.append(condenser.condensed)
            synthetic_labels.extend([value] * self.n_condensed)
        return np.vstack(synthetic_parts), np.asarray(synthetic_labels)

    @property
    def condensed(self):
        if not self._fitted:
            raise RuntimeError("fit before reading the condensed set")
        return self.synthetic_.copy()

    def compression_ratio(self, n_original):
        return float(n_original) / self.n_condensed

    @staticmethod
    def evaluate_utility(train_windows, condensed, probe_factory,
                         test_windows, test_labels, train_labels=None,
                         condensed_labels=None):
        """Train a probe on full vs condensed data; return both scores.

        ``probe_factory()`` must return an object with ``fit(X, y)`` and
        ``score(X, y)``.  For unlabeled settings, pass cluster indices
        or downstream pseudo-labels.
        """
        full = probe_factory()
        full.fit(train_windows, train_labels)
        small = probe_factory()
        small.fit(condensed, condensed_labels)
        return (full.score(test_windows, test_labels),
                small.score(test_windows, test_labels))
