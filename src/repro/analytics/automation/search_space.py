"""Joint architecture + hyperparameter search space (AutoCTS family).

The automation line of the paper ([24], [25], [27], [28]) frames model
design as search over a space of architectures *and* hyperparameters.
Here the "architectures" are the library's forecaster families and the
hyperparameters their knobs; a configuration is a plain dict, so search
algorithms can sample, mutate and compare them without special
machinery.

``build_forecaster`` is the factory that turns a configuration into a
ready-to-fit model — the single place where the space's semantics live.
"""

from __future__ import annotations

from ..._validation import ensure_rng
from ..forecasting import (
    ARForecaster,
    DriftForecaster,
    EnsembleForecaster,
    HoltForecaster,
    HoltWintersForecaster,
    NaiveForecaster,
    SeasonalNaiveForecaster,
    SimpleExponentialSmoothing,
    VARForecaster,
)

__all__ = ["SearchSpace", "build_forecaster"]

#: Families and the knobs each one exposes.
_FAMILIES = {
    "naive": (),
    "seasonal_naive": (),
    "drift": (),
    "ses": ("alpha_smooth",),
    "holt": ("alpha_smooth", "beta_smooth"),
    "holt_winters": ("alpha_smooth", "beta_smooth", "gamma_smooth"),
    "ar": ("n_lags", "ridge", "use_seasonal_lag"),
    "var": ("n_lags", "ridge"),
    "ensemble": ("n_lags", "ridge"),
}

_CHOICES = {
    "family": tuple(_FAMILIES),
    "n_lags": (2, 4, 8, 12, 24),
    "ridge": (0.1, 1.0, 10.0),
    "use_seasonal_lag": (False, True),
    "alpha_smooth": (0.1, 0.3, 0.5, 0.8),
    "beta_smooth": (0.05, 0.1, 0.3),
    "gamma_smooth": (0.05, 0.2, 0.4),
}


class SearchSpace:
    """The discrete configuration space of the automated search.

    Parameters
    ----------
    families:
        Subset of model families to include (default: all).
    """

    def __init__(self, families=None):
        if families is None:
            families = tuple(_FAMILIES)
        unknown = set(families) - set(_FAMILIES)
        if unknown:
            raise ValueError(f"unknown families: {sorted(unknown)}")
        if not families:
            raise ValueError("families must not be empty")
        self.families = tuple(families)

    def sample(self, rng=None):
        """Draw one random configuration."""
        rng = ensure_rng(rng)
        family = self.families[int(rng.integers(0, len(self.families)))]
        config = {"family": family}
        for knob in _FAMILIES[family]:
            choices = _CHOICES[knob]
            config[knob] = choices[int(rng.integers(0, len(choices)))]
        return config

    def neighbors(self, config):
        """All single-knob mutations of ``config`` (plus family swaps).

        Family swaps re-sample the new family's knobs at their default
        (middle) choice, so the neighbourhood stays small and valid.
        """
        results = []
        for knob in _FAMILIES[config["family"]]:
            for choice in _CHOICES[knob]:
                if choice != config[knob]:
                    mutated = dict(config)
                    mutated[knob] = choice
                    results.append(mutated)
        for family in self.families:
            if family == config["family"]:
                continue
            mutated = {"family": family}
            for knob in _FAMILIES[family]:
                choices = _CHOICES[knob]
                mutated[knob] = (config.get(knob)
                                 if config.get(knob) in choices
                                 else choices[len(choices) // 2])
            results.append(mutated)
        return results

    def mutate(self, config, rng=None):
        """One random neighbour (the evolutionary-search operator)."""
        rng = ensure_rng(rng)
        options = self.neighbors(config)
        return options[int(rng.integers(0, len(options)))]

    def size(self):
        """Total number of configurations in the space."""
        total = 0
        for family in self.families:
            count = 1
            for knob in _FAMILIES[family]:
                count *= len(_CHOICES[knob])
            total += count
        return total

    @staticmethod
    def encode(config):
        """Stable hashable key for deduplication."""
        return tuple(sorted(config.items()))


def build_forecaster(config, period):
    """Instantiate the forecaster a configuration describes.

    Parameters
    ----------
    config:
        A dict produced by :class:`SearchSpace`.
    period:
        The dataset's dominant seasonal period (configurations that use
        seasonality consume it).
    """
    family = config.get("family")
    if family == "naive":
        return NaiveForecaster()
    if family == "seasonal_naive":
        return SeasonalNaiveForecaster(period)
    if family == "drift":
        return DriftForecaster()
    if family == "ses":
        return SimpleExponentialSmoothing(alpha=config["alpha_smooth"])
    if family == "holt":
        return HoltForecaster(alpha=config["alpha_smooth"],
                              beta=config["beta_smooth"])
    if family == "holt_winters":
        return HoltWintersForecaster(
            period, alpha=config["alpha_smooth"],
            beta=config["beta_smooth"], gamma=config["gamma_smooth"])
    if family == "ar":
        return ARForecaster(
            n_lags=config["n_lags"], alpha=config["ridge"],
            seasonal_period=period if config["use_seasonal_lag"] else None)
    if family == "var":
        return VARForecaster(n_lags=config["n_lags"],
                             alpha=config["ridge"])
    if family == "ensemble":
        return EnsembleForecaster([
            SeasonalNaiveForecaster(period),
            ARForecaster(n_lags=config["n_lags"], alpha=config["ridge"],
                         seasonal_period=period),
            HoltWintersForecaster(period),
        ])
    raise ValueError(f"unknown family {family!r}")
