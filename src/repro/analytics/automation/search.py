"""Search algorithms over the forecasting configuration space.

The three strategies of the AutoCTS line, in increasing sophistication:

* :class:`RandomSearch` — the strong baseline every AutoML paper keeps;
* :class:`SuccessiveHalving` — evaluate many configurations cheaply (on
  a short data prefix), promote the best survivors to fuller budgets;
* :class:`EvolutionarySearch` — tournament selection + single-knob
  mutation over the space's neighbourhood structure.

All strategies optimize validation error under an optional **model-size
constraint** (``max_parameters``) — the paper highlights "the discovery
of optimal models that adhere to additional constraints, e.g., model
sizes" — and share a :class:`SearchResult` record so experiments can
compare them uniformly.
"""

from __future__ import annotations

import numpy as np

from ..._validation import check_positive, ensure_rng
from ..forecasting import rolling_origin_evaluation
from .search_space import SearchSpace, build_forecaster

__all__ = ["SearchResult", "evaluate_config", "RandomSearch",
           "SuccessiveHalving", "EvolutionarySearch"]


class SearchResult:
    """Outcome of one search run."""

    def __init__(self, best_config, best_score, history, n_evaluations):
        self.best_config = best_config
        self.best_score = best_score
        self.history = history  # list of (config, score)
        self.n_evaluations = n_evaluations

    def __repr__(self):
        return (
            f"SearchResult(best={self.best_config!r}, "
            f"score={self.best_score:.4f}, evals={self.n_evaluations})"
        )


def evaluate_config(config, series, period, *, horizon=12, n_origins=3,
                    max_parameters=None, data_fraction=1.0):
    """Validation score of one configuration (lower is better).

    Returns ``inf`` for configurations that cannot fit the data or that
    violate the parameter budget.
    """
    if data_fraction < 1.0:
        start = int(len(series) * (1.0 - data_fraction))
        start = min(start, len(series) - 2)
        series = series.slice(start, len(series))
    try:
        result = rolling_origin_evaluation(
            lambda: build_forecaster(config, period), series,
            horizon=horizon, n_origins=n_origins,
        )
    except (ValueError, RuntimeError, np.linalg.LinAlgError):
        return float("inf")
    if max_parameters is not None:
        model = build_forecaster(config, period)
        try:
            model.fit(series)
        except (ValueError, RuntimeError):
            return float("inf")
        n_parameters = getattr(model, "n_parameters", 0)
        if n_parameters > max_parameters:
            return float("inf")
    return result["score"]


class _BaseSearch:
    def __init__(self, space=None, *, horizon=12, n_origins=3,
                 max_parameters=None, rng=None):
        self.space = space if space is not None else SearchSpace()
        self.horizon = int(check_positive(horizon, "horizon"))
        self.n_origins = int(check_positive(n_origins, "n_origins"))
        self.max_parameters = max_parameters
        self._rng = ensure_rng(rng)

    def _score(self, config, series, period, data_fraction=1.0):
        return evaluate_config(
            config, series, period, horizon=self.horizon,
            n_origins=self.n_origins, max_parameters=self.max_parameters,
            data_fraction=data_fraction,
        )


class RandomSearch(_BaseSearch):
    """Sample ``budget`` random configurations, keep the best."""

    def search(self, series, period, budget=20):
        check_positive(budget, "budget")
        history = []
        seen = set()
        best_config, best_score = None, float("inf")
        evaluations = 0
        while evaluations < int(budget):
            config = self.space.sample(self._rng)
            key = SearchSpace.encode(config)
            if key in seen and len(seen) < self.space.size():
                continue
            seen.add(key)
            score = self._score(config, series, period)
            evaluations += 1
            history.append((config, score))
            if score < best_score:
                best_config, best_score = config, score
        return SearchResult(best_config, best_score, history, evaluations)


class SuccessiveHalving(_BaseSearch):
    """Multi-fidelity search: short prefixes first, survivors get more.

    Parameters
    ----------
    eta:
        Keep the top ``1/eta`` of each rung.
    min_fraction:
        Data fraction of the first rung.
    """

    def __init__(self, space=None, *, eta=3, min_fraction=0.3, **kwargs):
        super().__init__(space, **kwargs)
        if eta < 2:
            raise ValueError("eta must be >= 2")
        self.eta = int(eta)
        self.min_fraction = float(min_fraction)

    def search(self, series, period, budget=27):
        check_positive(budget, "budget")
        candidates = [self.space.sample(self._rng) for _ in range(int(budget))]
        fraction = self.min_fraction
        history = []
        evaluations = 0
        scored = []
        while True:
            scored = []
            for config in candidates:
                score = self._score(config, series, period,
                                    data_fraction=fraction)
                evaluations += 1
                history.append((config, score))
                scored.append((score, config))
            scored.sort(key=lambda pair: pair[0])
            if len(candidates) <= 1 or fraction >= 1.0:
                break
            keep = max(1, len(candidates) // self.eta)
            candidates = [config for _, config in scored[:keep]]
            fraction = min(1.0, fraction * self.eta)
        best_score, best_config = scored[0]
        # Final score on full data for comparability.
        if fraction < 1.0:
            best_score = self._score(best_config, series, period)
            evaluations += 1
        return SearchResult(best_config, best_score, history, evaluations)


class EvolutionarySearch(_BaseSearch):
    """Regularized evolution: tournament parent, one-knob mutation."""

    def __init__(self, space=None, *, population_size=8,
                 tournament_size=3, **kwargs):
        super().__init__(space, **kwargs)
        self.population_size = int(check_positive(population_size,
                                                  "population_size"))
        self.tournament_size = int(check_positive(tournament_size,
                                                  "tournament_size"))

    def search(self, series, period, budget=30):
        check_positive(budget, "budget")
        budget = int(budget)
        history = []
        population = []  # list of (score, config), newest last
        evaluations = 0

        def admit(config):
            nonlocal evaluations
            score = self._score(config, series, period)
            evaluations += 1
            history.append((config, score))
            population.append((score, config))

        for _ in range(min(self.population_size, budget)):
            admit(self.space.sample(self._rng))
        while evaluations < budget:
            contenders = [
                population[int(self._rng.integers(0, len(population)))]
                for _ in range(self.tournament_size)
            ]
            parent = min(contenders, key=lambda pair: pair[0])[1]
            child = self.space.mutate(parent, self._rng)
            admit(child)
            if len(population) > self.population_size:
                population.pop(0)  # age-based removal (regularized)
        best_config, best_score = None, float("inf")
        for config, score in history:
            if score < best_score:
                best_config, best_score = config, score
        return SearchResult(best_config, best_score, history, evaluations)
