"""Zero-shot configuration transfer (AutoCTS++ [27], [28]).

Running a full search for every new dataset is expensive; AutoCTS++
learns a mapping from *dataset characteristics* to good configurations
so a new dataset gets a strong model "in minutes" with **zero** search
evaluations.  The reproduction:

* :func:`dataset_meta_features` — an 8-dimensional fingerprint of a
  series (length, dimensionality, trend/seasonal strength,
  autocorrelations, noise, skew);
* :class:`ZeroShotSelector` — stores ``(fingerprint, best_config)``
  pairs from datasets where a search *was* run, and recommends the
  stored configuration of the nearest fingerprint for unseen datasets.
"""

from __future__ import annotations

import numpy as np

from ..._validation import check_positive
from .search import RandomSearch

__all__ = ["dataset_meta_features", "ZeroShotSelector"]


def _autocorrelation(values, lag):
    if lag >= len(values):
        return 0.0
    a = values[:-lag]
    b = values[lag:]
    if a.std() == 0 or b.std() == 0:
        return 0.0
    return float(np.corrcoef(a, b)[0, 1])


def dataset_meta_features(series, period):
    """Fingerprint a series for config transfer.

    Components (all scale-free where possible): log length, number of
    channels, trend strength, seasonal strength, lag-1 and lag-period
    autocorrelation, noise ratio, and skewness — the classic STL-style
    meta-features of the forecasting-meta-learning literature.
    """
    check_positive(period, "period")
    period = int(period)
    values = series.values[:, 0]
    n = len(values)

    # Trend strength: R^2 of a linear fit.
    x = np.arange(n)
    slope, intercept = np.polyfit(x, values, 1)
    trend = slope * x + intercept
    residual_trend = values - trend
    total_var = values.var() if values.var() > 0 else 1.0
    trend_strength = max(0.0, 1.0 - residual_trend.var() / total_var)

    # Seasonal strength: variance explained by the per-phase means of
    # the detrended series.
    phases = np.arange(n) % period
    seasonal = np.zeros(period)
    for phase in range(period):
        rows = phases == phase
        if rows.any():
            seasonal[phase] = residual_trend[rows].mean()
    deseasoned = residual_trend - seasonal[phases]
    base_var = residual_trend.var() if residual_trend.var() > 0 else 1.0
    seasonal_strength = max(0.0, 1.0 - deseasoned.var() / base_var)

    # Noise ratio: variance of first differences vs the series.
    noise_ratio = float(np.diff(values).var() / (2.0 * total_var))

    centered = values - values.mean()
    scale = values.std() if values.std() > 0 else 1.0
    skew = float((centered ** 3).mean() / scale ** 3)

    return np.array([
        np.log10(max(n, 1)),
        float(series.n_channels),
        trend_strength,
        seasonal_strength,
        _autocorrelation(values, 1),
        _autocorrelation(values, period),
        min(noise_ratio, 2.0),
        np.clip(skew, -3.0, 3.0),
    ])


class ZeroShotSelector:
    """Nearest-fingerprint configuration recommendation.

    Parameters
    ----------
    searcher:
        The search strategy used to find each training dataset's best
        configuration (defaults to a 20-evaluation random search).
    """

    def __init__(self, searcher=None, *, search_budget=20):
        self.searcher = searcher if searcher is not None else RandomSearch()
        self.search_budget = int(check_positive(search_budget,
                                                "search_budget"))
        self._fingerprints = []
        self._configs = []
        self._scores = []

    @property
    def n_datasets(self):
        return len(self._configs)

    def add_dataset(self, series, period):
        """Run the search on a training dataset and memorize the result."""
        result = self.searcher.search(series, period,
                                      budget=self.search_budget)
        self.add_known(dataset_meta_features(series, period),
                       result.best_config, result.best_score)
        return result

    def add_known(self, fingerprint, config, score=float("nan")):
        """Memorize a pre-computed ``(fingerprint, config)`` pair."""
        fingerprint = np.asarray(fingerprint, dtype=float)
        if fingerprint.ndim != 1:
            raise ValueError("fingerprint must be 1-D")
        if self._fingerprints and (
                len(fingerprint) != len(self._fingerprints[0])):
            raise ValueError("fingerprint dimensionality mismatch")
        self._fingerprints.append(fingerprint)
        self._configs.append(dict(config))
        self._scores.append(float(score))
        return self

    def _distances(self, series, period):
        query = dataset_meta_features(series, period)
        matrix = np.stack(self._fingerprints)
        mean = matrix.mean(axis=0)
        scale = matrix.std(axis=0)
        scale[scale == 0] = 1.0
        return np.linalg.norm(
            (matrix - mean) / scale - (query - mean) / scale, axis=1
        )

    def recommend(self, series, period):
        """Zero-shot: the stored config of the nearest fingerprint.

        Distances are computed on z-scored fingerprint dimensions so no
        single feature dominates.
        """
        if not self._configs:
            raise RuntimeError("no training datasets; call add_dataset first")
        distances = self._distances(series, period)
        return dict(self._configs[int(np.argmin(distances))])

    def recommend_top(self, series, period, k=3):
        """A shortlist of the ``k`` nearest datasets' configurations.

        The practical zero-shot protocol: hand the shortlist to a tiny
        validation pass (k evaluations instead of a full search).
        Duplicate configurations are collapsed.
        """
        if not self._configs:
            raise RuntimeError("no training datasets; call add_dataset first")
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        distances = self._distances(series, period)
        shortlist = []
        seen = set()
        for index in np.argsort(distances):
            key = tuple(sorted(self._configs[index].items()))
            if key in seen:
                continue
            seen.add(key)
            shortlist.append(dict(self._configs[index]))
            if len(shortlist) == k:
                break
        return shortlist
