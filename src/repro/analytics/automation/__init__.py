"""Automated model selection: the AutoCTS family reproduced as search
over a joint architecture/hyperparameter space."""

from .search import (
    EvolutionarySearch,
    RandomSearch,
    SearchResult,
    SuccessiveHalving,
    evaluate_config,
)
from .search_space import SearchSpace, build_forecaster
from .zero_shot import ZeroShotSelector, dataset_meta_features

__all__ = [
    "EvolutionarySearch",
    "RandomSearch",
    "SearchResult",
    "SearchSpace",
    "SuccessiveHalving",
    "ZeroShotSelector",
    "build_forecaster",
    "dataset_meta_features",
    "evaluate_config",
]
