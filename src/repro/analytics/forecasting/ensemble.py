"""Forecast combination.

Ensemble strategies appear twice in the paper: as a robustness device
("ensemble learning strategies ... adaptively selecting and combining
multiple scales" [41, 42]) and inside the automated-search toolbox.
:class:`EnsembleForecaster` combines heterogeneous member forecasters
with equal, inverse-error, or softmax validation weights.
"""

from __future__ import annotations

import numpy as np

from ..._validation import check_fraction
from ..metrics import mae
from .base import Forecaster

__all__ = ["EnsembleForecaster"]


class EnsembleForecaster(Forecaster):
    """Weighted combination of member forecasters.

    Parameters
    ----------
    members:
        A list of *unfitted* forecasters.
    weighting:
        ``"uniform"``, ``"inverse_error"`` or ``"softmax"``.  The latter
        two hold out the tail of the training series, score each member
        on it, and weight accordingly — the "adaptive selection" the
        paper attributes to ensemble methods.
    holdout_fraction:
        Share of the training series used for validation weighting.
    """

    _WEIGHTINGS = ("uniform", "inverse_error", "softmax")

    def __init__(self, members, weighting="inverse_error",
                 holdout_fraction=0.2):
        if not members:
            raise ValueError("ensemble needs at least one member")
        if weighting not in self._WEIGHTINGS:
            raise ValueError(
                f"weighting must be one of {self._WEIGHTINGS}, "
                f"got {weighting!r}"
            )
        self.members = list(members)
        self.weighting = weighting
        self.holdout_fraction = check_fraction(
            holdout_fraction, "holdout_fraction",
            inclusive_low=False, inclusive_high=False,
        )

    def fit(self, series):
        series = self._validate_series(series)
        if self.weighting == "uniform" or len(self.members) == 1:
            self.weights_ = np.full(len(self.members),
                                    1.0 / len(self.members))
        else:
            train, holdout = series.split(1.0 - self.holdout_fraction)
            errors = []
            for member in self.members:
                try:
                    predicted = member.forecast(train, len(holdout))
                    errors.append(mae(holdout.values, predicted))
                except (ValueError, RuntimeError):
                    errors.append(np.inf)  # member unusable on this data
            errors = np.asarray(errors)
            if np.isinf(errors).all():
                raise ValueError("no ensemble member could fit the data")
            if self.weighting == "inverse_error":
                inverse = np.where(np.isinf(errors), 0.0,
                                   1.0 / np.maximum(errors, 1e-12))
                self.weights_ = inverse / inverse.sum()
            else:  # softmax over negative normalized errors
                finite = errors[~np.isinf(errors)]
                scale = finite.std() if finite.std() > 0 else 1.0
                logits = np.where(np.isinf(errors), -np.inf,
                                  -errors / scale)
                logits -= logits[~np.isinf(logits)].max()
                weights = np.exp(logits)
                self.weights_ = weights / weights.sum()

        # Refit every usable member on the full series.
        self._usable = []
        for index, member in enumerate(self.members):
            if self.weights_[index] <= 0:
                continue
            member.fit(series)
            self._usable.append(index)
        self._fitted = True
        return self

    def predict(self, horizon):
        self._check_fitted()
        horizon = self._validate_horizon(horizon)
        total = None
        weight_sum = 0.0
        for index in self._usable:
            prediction = np.asarray(self.members[index].predict(horizon),
                                    dtype=float)
            weighted = self.weights_[index] * prediction
            total = weighted if total is None else total + weighted
            weight_sum += self.weights_[index]
        return total / weight_sum
