"""Classical statistical forecasters.

The hand-crafted baselines the paper's automated methods (§II-C,
"Automation") are compared against, and the reference points of every
forecasting experiment: naive carriers, drift extrapolation, and the
exponential-smoothing family up to Holt-Winters.
"""

from __future__ import annotations

import numpy as np

from ..._validation import check_fraction, check_positive
from .base import Forecaster

__all__ = [
    "NaiveForecaster",
    "SeasonalNaiveForecaster",
    "DriftForecaster",
    "SimpleExponentialSmoothing",
    "HoltForecaster",
    "HoltWintersForecaster",
]


class NaiveForecaster(Forecaster):
    """Repeat the last observed value (the "persistence" baseline)."""

    def fit(self, series):
        series = self._validate_series(series)
        self._last = series.values[-1]
        self._fitted = True
        return self

    def predict(self, horizon):
        self._check_fitted()
        horizon = self._validate_horizon(horizon)
        return np.tile(self._last, (horizon, 1))


class SeasonalNaiveForecaster(Forecaster):
    """Repeat the value from one season ago."""

    def __init__(self, period):
        self.period = int(check_positive(period, "period"))

    def fit(self, series):
        series = self._validate_series(series)
        if len(series) < self.period:
            raise ValueError(
                f"need at least one full period ({self.period}) of data"
            )
        self._season = series.values[-self.period:]
        self._fitted = True
        return self

    def predict(self, horizon):
        self._check_fitted()
        horizon = self._validate_horizon(horizon)
        indices = np.arange(horizon) % self.period
        return self._season[indices]


class DriftForecaster(Forecaster):
    """Extrapolate the straight line between first and last observation."""

    def fit(self, series):
        series = self._validate_series(series)
        values = series.values
        self._last = values[-1]
        if len(values) > 1:
            self._slope = (values[-1] - values[0]) / (len(values) - 1)
        else:
            self._slope = np.zeros_like(values[-1])
        self._fitted = True
        return self

    def predict(self, horizon):
        self._check_fitted()
        horizon = self._validate_horizon(horizon)
        steps = np.arange(1, horizon + 1)[:, None]
        return self._last[None, :] + steps * self._slope[None, :]


class SimpleExponentialSmoothing(Forecaster):
    """Level-only exponential smoothing (flat forecasts)."""

    def __init__(self, alpha=0.3):
        self.alpha = check_fraction(alpha, "alpha", inclusive_low=False)

    def fit(self, series):
        series = self._validate_series(series)
        values = series.values
        level = values[0].copy()
        for row in values[1:]:
            level = self.alpha * row + (1 - self.alpha) * level
        self._level = level
        self._fitted = True
        return self

    def predict(self, horizon):
        self._check_fitted()
        horizon = self._validate_horizon(horizon)
        return np.tile(self._level, (horizon, 1))


class HoltForecaster(Forecaster):
    """Holt's linear trend method (level + trend smoothing)."""

    def __init__(self, alpha=0.3, beta=0.1):
        self.alpha = check_fraction(alpha, "alpha", inclusive_low=False)
        self.beta = check_fraction(beta, "beta", inclusive_low=False)

    def fit(self, series):
        series = self._validate_series(series)
        values = series.values
        if len(values) < 2:
            raise ValueError("Holt needs at least two observations")
        level = values[0].copy()
        trend = values[1] - values[0]
        for row in values[1:]:
            previous_level = level
            level = self.alpha * row + (1 - self.alpha) * (level + trend)
            trend = (self.beta * (level - previous_level)
                     + (1 - self.beta) * trend)
        self._level, self._trend = level, trend
        self._fitted = True
        return self

    def predict(self, horizon):
        self._check_fitted()
        horizon = self._validate_horizon(horizon)
        steps = np.arange(1, horizon + 1)[:, None]
        return self._level[None, :] + steps * self._trend[None, :]


class HoltWintersForecaster(Forecaster):
    """Additive Holt-Winters: level, trend and seasonal components."""

    def __init__(self, period, alpha=0.3, beta=0.05, gamma=0.2):
        self.period = int(check_positive(period, "period"))
        self.alpha = check_fraction(alpha, "alpha", inclusive_low=False)
        self.beta = check_fraction(beta, "beta", inclusive_low=False)
        self.gamma = check_fraction(gamma, "gamma", inclusive_low=False)

    def fit(self, series):
        series = self._validate_series(series)
        values = series.values
        period = self.period
        if len(values) < 2 * period:
            raise ValueError(
                f"need at least two periods ({2 * period}) of data"
            )
        # Initialization: first-period mean level, per-phase offsets.
        level = values[:period].mean(axis=0)
        trend = (values[period:2 * period].mean(axis=0) - level) / period
        seasonal = values[:period] - level

        for index in range(period, len(values)):
            row = values[index]
            phase = index % period
            previous_level = level
            level = (self.alpha * (row - seasonal[phase])
                     + (1 - self.alpha) * (level + trend))
            trend = (self.beta * (level - previous_level)
                     + (1 - self.beta) * trend)
            seasonal[phase] = (self.gamma * (row - level)
                               + (1 - self.gamma) * seasonal[phase])
        self._level, self._trend = level, trend
        self._seasonal = seasonal
        self._n_seen = len(values)
        self._fitted = True
        return self

    def predict(self, horizon):
        self._check_fitted()
        horizon = self._validate_horizon(horizon)
        forecasts = np.zeros((horizon, self._level.shape[0]))
        for step in range(1, horizon + 1):
            phase = (self._n_seen + step - 1) % self.period
            forecasts[step - 1] = (
                self._level + step * self._trend + self._seasonal[phase]
            )
        return forecasts
