"""Direct multi-horizon forecasting.

The recursive strategy (every other forecaster here) feeds its own
predictions back as inputs, which compounds one-step errors over long
horizons.  The **direct** strategy fits one regression *per lead time*:
lead-``h``'s model maps today's lags straight to the value ``h`` steps
ahead, so no prediction is ever fed back.

The trade-off is classical (and ablated in
``benchmarks/bench_a04_direct_vs_recursive.py``): direct models avoid
error feedback on long horizons but each lead sees fewer effective
training pairs and no cross-lead coherence.
"""

from __future__ import annotations

import numpy as np

from ..._validation import check_non_negative, check_positive
from .base import Forecaster
from .linear import ridge_fit

__all__ = ["DirectForecaster"]


class DirectForecaster(Forecaster):
    """One ridge regression per lead time (direct strategy).

    Parameters
    ----------
    n_lags:
        Input window length.
    horizon:
        Maximum lead time trained for; ``predict`` may ask for any
        horizon up to this.
    alpha:
        Ridge strength.
    seasonal_period:
        Optional seasonal lag appended to the inputs.
    """

    def __init__(self, n_lags=12, horizon=24, alpha=1.0,
                 seasonal_period=None):
        self.n_lags = int(check_positive(n_lags, "n_lags"))
        self.horizon = int(check_positive(horizon, "horizon"))
        self.alpha = float(check_non_negative(alpha, "alpha"))
        self.seasonal_period = (
            int(check_positive(seasonal_period, "seasonal_period"))
            if seasonal_period is not None else None
        )

    def _features_for(self, history, position):
        recent = history[position - self.n_lags:position][::-1]
        parts = [recent.ravel()]
        if self.seasonal_period is not None:
            parts.append(history[position - self.seasonal_period].ravel())
        return np.concatenate(parts)

    def fit(self, series):
        series = self._validate_series(series)
        values = series.values
        needed = self.n_lags
        if self.seasonal_period is not None:
            needed = max(needed, self.seasonal_period)
        if len(values) <= needed + self.horizon + 1:
            raise ValueError(
                f"series of length {len(values)} too short for horizon "
                f"{self.horizon} with {needed} lags"
            )
        origins = range(needed, len(values) - self.horizon)
        features = np.stack([
            self._features_for(values, origin) for origin in origins
        ])
        self._models = []
        for lead in range(1, self.horizon + 1):
            targets = np.stack([
                values[origin + lead - 1] for origin in origins
            ])
            self._models.append(ridge_fit(features, targets, self.alpha))
        self._history = values.copy()
        self._fitted = True
        return self

    def predict(self, horizon):
        self._check_fitted()
        horizon = self._validate_horizon(horizon)
        if horizon > self.horizon:
            raise ValueError(
                f"asked for horizon {horizon} but trained up to "
                f"{self.horizon}"
            )
        features = self._features_for(self._history, len(self._history))
        forecasts = np.zeros((horizon, self._history.shape[1]))
        for lead in range(horizon):
            weights, intercept = self._models[lead]
            forecasts[lead] = features @ weights + intercept
        return forecasts

    @property
    def n_parameters(self):
        self._check_fitted()
        return int(sum(w.size + b.size for w, b in self._models))
