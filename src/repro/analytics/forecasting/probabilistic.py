"""Probabilistic forecasters: distributions instead of points.

Decision making under uncertainty (paper §II-D) needs *predictive
distributions* — "spatio-temporal analysis methods, such as predictive
models, inherently capture uncertainty, typically using confidence
intervals and probability distributions".  Two complementary providers:

* :class:`GaussianForecaster` — an AR point forecast plus an empirical
  residual model, yielding a :class:`Histogram` per step whose spread
  grows with the horizon (residuals are convolved);
* :class:`QuantileForecaster` — direct quantile regression on lag
  features (pinball-loss subgradient descent), yielding calibrated
  quantile bands without a distributional assumption.

Both power the autoscaling decision layer (E23) and the CRPS columns of
the benchmarking harness.
"""

from __future__ import annotations

import numpy as np

from ..._validation import check_non_negative, check_positive, ensure_rng
from ...governance.uncertainty import Histogram
from .base import Forecaster
from .linear import ridge_fit

__all__ = ["GaussianForecaster", "QuantileForecaster"]


class GaussianForecaster(Forecaster):
    """AR point forecasts with an empirical residual distribution.

    ``predict_distribution(horizon)`` returns one :class:`Histogram` per
    step; step ``h``'s distribution is the point forecast shifted by the
    ``h``-fold convolution of the one-step residual histogram, so
    uncertainty compounds with lead time the way it does for real
    iterated forecasts.

    Only univariate targets are supported (channel 0 of the series).
    """

    def __init__(self, n_lags=12, alpha=1.0, n_bins=30,
                 seasonal_period=None):
        self.n_lags = int(check_positive(n_lags, "n_lags"))
        self.alpha = float(check_non_negative(alpha, "alpha"))
        self.n_bins = int(check_positive(n_bins, "n_bins"))
        self.seasonal_period = seasonal_period

    def fit(self, series):
        from .linear import ARForecaster

        series = self._validate_series(series)
        self._inner = ARForecaster(
            n_lags=self.n_lags, alpha=self.alpha,
            seasonal_period=self.seasonal_period,
        ).fit(series)
        # One-step in-sample residuals for channel 0.
        values = series.values[:, 0]
        needed = self.n_lags
        if self.seasonal_period is not None:
            needed = max(needed, int(self.seasonal_period))
        history = series.values
        residuals = []
        for position in range(needed, len(values)):
            features = self._inner._features_for(history, position)
            predicted = (features @ self._inner._weights
                         + self._inner._intercept)[0]
            residuals.append(values[position] - predicted)
        residuals = np.asarray(residuals)
        spread = residuals.std()
        bounds = None
        if spread == 0:
            bounds = (residuals[0] - 1e-6, residuals[0] + 1e-6)
        self._residual = Histogram.from_samples(residuals,
                                                n_bins=self.n_bins,
                                                bounds=bounds)
        self._fitted = True
        return self

    def predict(self, horizon):
        self._check_fitted()
        return self._inner.predict(horizon)[:, :1]

    def predict_distribution(self, horizon):
        """One :class:`Histogram` per forecast step (channel 0)."""
        self._check_fitted()
        horizon = self._validate_horizon(horizon)
        points = self._inner.predict(horizon)[:, 0]
        distributions = []
        compounded = self._residual
        for step in range(horizon):
            distributions.append(compounded.shift(points[step]))
            if step + 1 < horizon:
                compounded = compounded.convolve(self._residual)
        return distributions

    def sample_paths(self, horizon, n_paths, rng=None):
        """Monte-Carlo future trajectories, shape ``(n_paths, horizon)``.

        Residuals are drawn independently per step and accumulated onto
        the point forecast — the sampler MagicScaler-style schedulers
        consume.
        """
        self._check_fitted()
        horizon = self._validate_horizon(horizon)
        rng = ensure_rng(rng)
        points = self._inner.predict(horizon)[:, 0]
        noise = np.stack([
            self._residual.sample(horizon, rng=rng)
            for _ in range(int(n_paths))
        ])
        return points[None, :] + np.cumsum(noise, axis=1) / np.sqrt(
            np.arange(1, horizon + 1))


class QuantileForecaster(Forecaster):
    """Direct quantile regression on lag features.

    One linear model per requested quantile, trained with pinball-loss
    subgradient descent; predicted quantiles are sorted per step so the
    bands never cross.  Univariate (channel 0).
    """

    def __init__(self, quantiles=(0.1, 0.5, 0.9), n_lags=12,
                 learning_rate=0.05, n_epochs=200, rng=None):
        quantiles = tuple(float(q) for q in quantiles)
        if not quantiles:
            raise ValueError("need at least one quantile")
        for q in quantiles:
            if not 0.0 < q < 1.0:
                raise ValueError(f"quantile {q} outside (0, 1)")
        self.quantiles = quantiles
        self.n_lags = int(check_positive(n_lags, "n_lags"))
        self.learning_rate = float(check_positive(learning_rate,
                                                  "learning_rate"))
        self.n_epochs = int(check_positive(n_epochs, "n_epochs"))
        self._rng = ensure_rng(rng)

    def fit(self, series):
        series = self._validate_series(series)
        values = series.values[:, 0]
        if len(values) <= self.n_lags + 1:
            raise ValueError("series too short for the chosen n_lags")
        features = np.stack([
            values[position - self.n_lags:position][::-1]
            for position in range(self.n_lags, len(values))
        ])
        targets = values[self.n_lags:]

        # Standardize features for stable subgradient steps.
        self._mean = features.mean(axis=0)
        self._scale = features.std(axis=0)
        self._scale[self._scale == 0] = 1.0
        standardized = (features - self._mean) / self._scale

        # Warm start every quantile at the ridge solution.
        ridge_weights, ridge_intercept = ridge_fit(standardized, targets,
                                                   1.0)
        self._weights = {}
        self._intercepts = {}
        n = len(targets)
        for quantile in self.quantiles:
            weights = ridge_weights[:, 0].copy()
            intercept = float(ridge_intercept[0])
            rate = self.learning_rate
            for epoch in range(self.n_epochs):
                predicted = standardized @ weights + intercept
                # Pinball subgradient: -q where under, (1-q) where over.
                gradient_sign = np.where(targets > predicted,
                                         -quantile, 1.0 - quantile)
                weights -= rate * (standardized.T @ gradient_sign) / n
                intercept -= rate * gradient_sign.mean()
                rate *= 0.995
            self._weights[quantile] = weights
            self._intercepts[quantile] = intercept

        self._history = values.copy()
        self._fitted = True
        return self

    def predict(self, horizon):
        """Median (or mid-quantile) point forecast, shape (horizon, 1)."""
        bands = self.predict_quantiles(horizon)
        middle = len(self.quantiles) // 2
        return bands[:, middle:middle + 1]

    def predict_quantiles(self, horizon):
        """Quantile bands, shape ``(horizon, len(quantiles))``.

        Iterates forward feeding the *median* band back as history.
        """
        self._check_fitted()
        horizon = self._validate_horizon(horizon)
        middle_index = len(self.quantiles) // 2
        history = self._history.copy()
        results = np.zeros((horizon, len(self.quantiles)))
        for step in range(horizon):
            lags = history[-self.n_lags:][::-1]
            standardized = (lags - self._mean) / self._scale
            row = np.array([
                standardized @ self._weights[q] + self._intercepts[q]
                for q in self.quantiles
            ])
            row.sort()  # enforce non-crossing bands
            results[step] = row
            history = np.append(history, row[middle_index])
        return results

    def coverage(self, series, lower_index=0, upper_index=-1):
        """Empirical coverage of the (lower, upper) band on in-sample
        one-step predictions over ``series``; a calibration check."""
        self._check_fitted()
        values = series.values[:, 0]
        hits = []
        for position in range(self.n_lags, len(values)):
            lags = values[position - self.n_lags:position][::-1]
            standardized = (lags - self._mean) / self._scale
            row = np.array([
                standardized @ self._weights[q] + self._intercepts[q]
                for q in self.quantiles
            ])
            row.sort()
            hits.append(row[lower_index] <= values[position]
                        <= row[upper_index])
        return float(np.mean(hits))
