"""Forecaster interface and evaluation utilities.

Every forecaster in the library follows the same two-step contract:

* ``fit(series)`` — learn from a (complete) :class:`TimeSeries`;
* ``predict(horizon)`` — forecast the ``horizon`` steps following the
  training window, returning an array of shape ``(horizon, C)``.

``forecast(series, horizon)`` composes the two.  The module also
implements rolling-origin evaluation — the standard backtesting
protocol used by every forecasting experiment and the benchmarking
harness.
"""

from __future__ import annotations

import abc

import numpy as np

from ..._validation import check_positive
from ...datatypes import TimeSeries

__all__ = ["Forecaster", "rolling_origin_evaluation"]


class Forecaster(abc.ABC):
    """Abstract base for point forecasters."""

    #: Set by fit();
    _fitted = False

    @abc.abstractmethod
    def fit(self, series):
        """Learn from ``series``; returns ``self``."""

    @abc.abstractmethod
    def predict(self, horizon):
        """Forecast ``horizon`` steps past the training window.

        Returns an array of shape ``(horizon, C)``.
        """

    def forecast(self, series, horizon):
        """Fit on ``series`` and predict ``horizon`` steps."""
        return self.fit(series).predict(horizon)

    # -- shared helpers for subclasses -----------------------------------

    @staticmethod
    def _validate_series(series):
        if not isinstance(series, TimeSeries):
            raise TypeError(
                f"expected a TimeSeries, got {type(series).__name__}"
            )
        if not series.is_complete():
            raise ValueError(
                "forecasters require complete data; run governance "
                "imputation first (this is the pipeline's job)"
            )
        return series

    @staticmethod
    def _validate_horizon(horizon):
        check_positive(horizon, "horizon")
        return int(horizon)

    def _check_fitted(self):
        if not self._fitted:
            raise RuntimeError(
                f"{type(self).__name__} must be fit before predicting"
            )


def rolling_origin_evaluation(forecaster_factory, series, *, horizon=12,
                              n_origins=5, min_train_fraction=0.5,
                              metric=None):
    """Backtest a forecaster with expanding training windows.

    Parameters
    ----------
    forecaster_factory:
        Zero-argument callable returning a fresh forecaster (so state
        never leaks between origins).
    series:
        The full evaluation series.
    horizon:
        Forecast length at each origin.
    n_origins:
        Number of evenly spaced forecast origins.
    min_train_fraction:
        Earliest origin, as a fraction of the series length.
    metric:
        Callable ``metric(y_true, y_pred) -> float``; defaults to MAE.

    Returns
    -------
    dict
        ``{"score": mean metric, "per_origin": list, "horizon": horizon}``.
    """
    from ..metrics import mae

    if metric is None:
        metric = mae
    check_positive(horizon, "horizon")
    check_positive(n_origins, "n_origins")
    horizon = int(horizon)
    n_origins = int(n_origins)

    length = len(series)
    first = int(min_train_fraction * length)
    last = length - horizon
    if last <= first:
        raise ValueError(
            f"series too short: length {length} cannot host {n_origins} "
            f"origins with horizon {horizon}"
        )
    origins = np.unique(
        np.linspace(first, last, n_origins).astype(int)
    )

    scores = []
    for origin in origins:
        train = series.slice(0, int(origin))
        actual = series.slice(int(origin), int(origin) + horizon).values
        model = forecaster_factory()
        predicted = model.forecast(train, horizon)
        predicted = np.asarray(predicted, dtype=float)
        if predicted.shape != actual.shape:
            raise ValueError(
                f"forecaster returned shape {predicted.shape}, "
                f"expected {actual.shape}"
            )
        scores.append(float(metric(actual, predicted)))
    return {
        "score": float(np.mean(scores)),
        "per_origin": scores,
        "horizon": horizon,
    }
