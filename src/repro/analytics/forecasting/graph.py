"""Spatio-temporal graph-filter forecasting for correlated time series.

The NumPy analogue of the diffusion-convolutional recurrent
architectures the tutorial's automation line searches over ([24]-[28]):
each sensor's next value is regressed on

* its own recent lags (temporal term), and
* graph-diffused lags ``A^k X`` for ``k = 1..n_hops`` (spatial term),
  where ``A`` is the symmetrically normalized sensor graph.

Weights are *shared across sensors* (as in graph convolutions), so the
model has few parameters, exploits the sensor graph, and generalizes
across the network — which is exactly why it beats purely temporal
models on correlated data (experiment E8's hand-crafted reference, and
the backbone of the automated search space).
"""

from __future__ import annotations

import numpy as np

from ..._validation import check_non_negative, check_positive
from ...datatypes import CorrelatedTimeSeries
from .linear import ridge_fit

__all__ = ["GraphFilterForecaster"]


class GraphFilterForecaster:
    """Shared-weight spatio-temporal regression on a sensor graph.

    Parameters
    ----------
    n_lags:
        Temporal receptive field.
    n_hops:
        Spatial receptive field (powers of the normalized adjacency).
    alpha:
        Ridge strength.
    """

    def __init__(self, n_lags=6, n_hops=2, alpha=1.0):
        self.n_lags = int(check_positive(n_lags, "n_lags"))
        self.n_hops = int(check_non_negative(n_hops, "n_hops"))
        self.alpha = float(check_non_negative(alpha, "alpha"))
        self._fitted = False

    def _diffused_stack(self, values):
        """Stack ``[X, A X, ..., A^h X]`` along a new leading axis."""
        stack = [values]
        current = values
        for _ in range(self.n_hops):
            current = current @ self._adjacency.T
            stack.append(current)
        return np.stack(stack, axis=0)  # (hops+1, M, N)

    def _design(self, diffused, position):
        """Feature vector for every sensor to predict ``position``.

        Returns shape ``(N, (hops+1) * n_lags)``: for each sensor, its
        own and its diffused lags (most recent first).
        """
        lags = diffused[:, position - self.n_lags:position, :][:, ::-1, :]
        # (hops+1, n_lags, N) -> (N, (hops+1)*n_lags)
        return lags.transpose(2, 0, 1).reshape(lags.shape[2], -1)

    def fit(self, dataset):
        """Fit from a :class:`CorrelatedTimeSeries` (must be complete)."""
        if not isinstance(dataset, CorrelatedTimeSeries):
            raise TypeError("dataset must be a CorrelatedTimeSeries")
        if dataset.missing_fraction() > 0:
            raise ValueError(
                "graph forecaster requires complete data; impute first"
            )
        raw = dataset.values
        if len(raw) <= self.n_lags + 1:
            raise ValueError("series too short for the chosen n_lags")
        self._adjacency = dataset.normalized_adjacency()
        # Standardize per sensor: keeps the shared-weight regression
        # scale-free and the multi-step recursion stable.
        self._mean = raw.mean(axis=0)
        self._scale = raw.std(axis=0)
        self._scale[self._scale == 0] = 1.0
        values = (raw - self._mean) / self._scale
        diffused = self._diffused_stack(values)

        features = []
        targets = []
        for position in range(self.n_lags, len(values)):
            features.append(self._design(diffused, position))
            targets.append(values[position])
        features = np.concatenate(features, axis=0)
        targets = np.concatenate(targets, axis=0)
        # Diffused lags are highly collinear with raw lags; scaling the
        # ridge penalty with the sample count keeps the learned filter
        # stable under recursive multi-step prediction.
        penalty = self.alpha * max(1.0, len(features) / 100.0)
        self._weights, self._intercept = ridge_fit(features, targets,
                                                   penalty)
        self._history = values.copy()
        self._low = values.min(axis=0)
        self._high = values.max(axis=0)
        self._fitted = True
        return self

    def predict(self, horizon):
        """Forecast all sensors ``horizon`` steps ahead, shape
        ``(horizon, N)``."""
        if not self._fitted:
            raise RuntimeError("fit before predict")
        check_positive(horizon, "horizon")
        horizon = int(horizon)
        extended = self._history
        forecasts = np.zeros((horizon, extended.shape[1]))
        for step in range(horizon):
            diffused = self._diffused_stack(extended[-self.n_lags:])
            features = self._design(diffused, self.n_lags)
            prediction = (features @ self._weights
                          + self._intercept).ravel()
            # Keep the recursion inside the envelope the model was
            # trained on; without this, feedback can drift unboundedly.
            prediction = np.clip(prediction, self._low, self._high)
            forecasts[step] = prediction
            extended = np.vstack([extended, prediction])
        return forecasts * self._scale + self._mean

    def forecast(self, dataset, horizon):
        return self.fit(dataset).predict(horizon)

    @property
    def n_parameters(self):
        """Learned coefficient count (shared across sensors)."""
        if not self._fitted:
            raise RuntimeError("fit before inspecting parameters")
        return int(self._weights.size + self._intercept.size)
