"""Forecasting: classical, linear, graph, probabilistic, ensembles."""

from .base import Forecaster, rolling_origin_evaluation
from .classical import (
    DriftForecaster,
    HoltForecaster,
    HoltWintersForecaster,
    NaiveForecaster,
    SeasonalNaiveForecaster,
    SimpleExponentialSmoothing,
)
from .direct import DirectForecaster
from .ensemble import EnsembleForecaster
from .graph import GraphFilterForecaster
from .linear import ARForecaster, ExogenousForecaster, VARForecaster, ridge_fit
from .probabilistic import GaussianForecaster, QuantileForecaster

__all__ = [
    "ARForecaster",
    "DirectForecaster",
    "DriftForecaster",
    "EnsembleForecaster",
    "ExogenousForecaster",
    "Forecaster",
    "GaussianForecaster",
    "GraphFilterForecaster",
    "HoltForecaster",
    "HoltWintersForecaster",
    "NaiveForecaster",
    "QuantileForecaster",
    "SeasonalNaiveForecaster",
    "SimpleExponentialSmoothing",
    "VARForecaster",
    "ridge_fit",
    "rolling_origin_evaluation",
]
