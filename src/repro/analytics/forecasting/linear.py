"""Linear autoregressive forecasters (ridge-regularized least squares).

The workhorse models of the analytics layer: fast, deterministic, and
strong on the synthetic workloads.  They also serve as the *search
space ingredients* of the automation experiments (lag order, ridge
strength, seasonal features are exactly the hyperparameters AutoCTS-style
search tunes).

* :class:`ARForecaster` — per-channel autoregression on ``n_lags`` own
  lags (plus optional seasonal lag and time features);
* :class:`VARForecaster` — vector autoregression: every channel
  regresses on the lags of *all* channels;
* :class:`ExogenousForecaster` — ARX: target channels regress on their
  own lags plus aligned exogenous covariates (the fusion experiments'
  consumer).
"""

from __future__ import annotations

import numpy as np

from ..._validation import check_non_negative, check_positive
from .base import Forecaster

__all__ = ["ARForecaster", "VARForecaster", "ExogenousForecaster",
           "ridge_fit"]


def ridge_fit(features, targets, alpha):
    """Closed-form ridge regression with intercept.

    Returns ``(weights, intercept)`` with ``weights`` of shape
    ``(n_features, n_targets)``.
    """
    features = np.asarray(features, dtype=float)
    targets = np.asarray(targets, dtype=float)
    if targets.ndim == 1:
        targets = targets[:, None]
    mean_x = features.mean(axis=0)
    mean_y = targets.mean(axis=0)
    xc = features - mean_x
    yc = targets - mean_y
    gram = xc.T @ xc + alpha * np.eye(features.shape[1])
    weights = np.linalg.solve(gram, xc.T @ yc)
    intercept = mean_y - mean_x @ weights
    return weights, intercept


def _lag_matrix(values, n_lags):
    """Design matrix of shape ``(M - n_lags, n_lags * C)`` plus targets.

    Row ``t`` holds ``[x_{t+n_lags-1}, ..., x_t]`` flattened channel-major
    (most recent lag first).
    """
    n_rows, n_cols = values.shape
    if n_rows <= n_lags:
        raise ValueError(
            f"series of length {n_rows} too short for {n_lags} lags"
        )
    windows = np.stack([
        values[n_lags - lag - 1:n_rows - lag - 1]
        for lag in range(n_lags)
    ], axis=1)  # (samples, n_lags, C), lag 0 = most recent
    features = windows.reshape(windows.shape[0], -1)
    targets = values[n_lags:]
    return features, targets


class ARForecaster(Forecaster):
    """Per-channel autoregression with ridge regularization.

    Parameters
    ----------
    n_lags:
        Autoregressive order.
    alpha:
        Ridge strength.
    seasonal_period:
        When given, the value one period back is appended as an extra
        regressor (a cheap seasonal term).
    """

    def __init__(self, n_lags=8, alpha=1.0, seasonal_period=None):
        self.n_lags = int(check_positive(n_lags, "n_lags"))
        self.alpha = float(check_non_negative(alpha, "alpha"))
        self.seasonal_period = (
            int(check_positive(seasonal_period, "seasonal_period"))
            if seasonal_period is not None else None
        )

    def _features_for(self, history, position):
        """Regressors to predict the value at ``position`` of ``history``."""
        recent = history[position - self.n_lags:position][::-1]
        parts = [recent.ravel()]
        if self.seasonal_period is not None:
            seasonal_position = position - self.seasonal_period
            parts.append(history[seasonal_position].ravel())
        return np.concatenate(parts)

    def fit(self, series):
        series = self._validate_series(series)
        values = series.values
        needed = self.n_lags
        if self.seasonal_period is not None:
            needed = max(needed, self.seasonal_period)
        if len(values) <= needed + 1:
            raise ValueError(
                f"series of length {len(values)} too short "
                f"(needs > {needed + 1})"
            )
        rows = range(needed, len(values))
        features = np.stack([self._features_for(values, r) for r in rows])
        targets = values[needed:]
        self._weights, self._intercept = ridge_fit(features, targets,
                                                   self.alpha)
        self._history = values.copy()
        self._fitted = True
        return self

    def predict(self, horizon):
        self._check_fitted()
        horizon = self._validate_horizon(horizon)
        history = self._history
        forecasts = np.zeros((horizon, history.shape[1]))
        extended = history
        for step in range(horizon):
            features = self._features_for(extended, len(extended))
            prediction = features @ self._weights + self._intercept
            forecasts[step] = prediction
            extended = np.vstack([extended, prediction])
        return forecasts

    def predict_from(self, history, horizon):
        """Forecast with the *fitted weights* but a caller-supplied
        history.

        The continual-learning evaluation needs this: it measures what
        the current parameters know about an *old* regime by feeding
        that regime's recent window as context, without refitting.
        """
        self._check_fitted()
        horizon = self._validate_horizon(horizon)
        extended = np.asarray(history, dtype=float)
        if extended.ndim == 1:
            extended = extended[:, None]
        needed = self.n_lags
        if self.seasonal_period is not None:
            needed = max(needed, self.seasonal_period)
        if len(extended) < needed:
            raise ValueError(
                f"history must cover at least {needed} steps"
            )
        forecasts = np.zeros((horizon, extended.shape[1]))
        for step in range(horizon):
            features = self._features_for(extended, len(extended))
            prediction = features @ self._weights + self._intercept
            forecasts[step] = prediction
            extended = np.vstack([extended, prediction])
        return forecasts

    @property
    def n_parameters(self):
        """Number of learned coefficients (used by size-constrained NAS)."""
        self._check_fitted()
        return int(self._weights.size + self._intercept.size)


class VARForecaster(Forecaster):
    """Vector autoregression: channels predict each other jointly."""

    def __init__(self, n_lags=4, alpha=1.0):
        self.n_lags = int(check_positive(n_lags, "n_lags"))
        self.alpha = float(check_non_negative(alpha, "alpha"))

    def fit(self, series):
        series = self._validate_series(series)
        values = series.values
        features, targets = _lag_matrix(values, self.n_lags)
        self._weights, self._intercept = ridge_fit(features, targets,
                                                   self.alpha)
        self._history = values.copy()
        self._fitted = True
        return self

    def predict(self, horizon):
        self._check_fitted()
        horizon = self._validate_horizon(horizon)
        extended = self._history
        forecasts = np.zeros((horizon, extended.shape[1]))
        for step in range(horizon):
            recent = extended[-self.n_lags:][::-1].ravel()
            prediction = recent @ self._weights + self._intercept
            forecasts[step] = prediction
            extended = np.vstack([extended, prediction])
        return forecasts


class ExogenousForecaster(Forecaster):
    """ARX: autoregression plus exogenous covariates (fusion consumer).

    The fused covariates (weather, POI intensity, calendar encodings)
    enter as *contemporaneous-lag* regressors: the covariate values at
    the ``n_lags`` most recent steps.  During multi-step prediction the
    future covariates must be supplied (they are known inputs: weather
    forecasts, fixed POI maps, the calendar).

    Parameters
    ----------
    target_channels:
        Indices of the channels to forecast; the rest are covariates.
    """

    def __init__(self, target_channels, n_lags=8, alpha=1.0):
        if not target_channels:
            raise ValueError("target_channels must not be empty")
        self.target_channels = list(target_channels)
        self.n_lags = int(check_positive(n_lags, "n_lags"))
        self.alpha = float(check_non_negative(alpha, "alpha"))

    def fit(self, series):
        series = self._validate_series(series)
        values = series.values
        for channel in self.target_channels:
            if not 0 <= channel < values.shape[1]:
                raise ValueError(f"target channel {channel} out of range")
        features, all_targets = _lag_matrix(values, self.n_lags)
        targets = all_targets[:, self.target_channels]
        self._weights, self._intercept = ridge_fit(features, targets,
                                                   self.alpha)
        self._history = values.copy()
        self._fitted = True
        return self

    def predict(self, horizon, future_covariates=None):
        """Forecast the target channels.

        Parameters
        ----------
        horizon:
            Steps ahead.
        future_covariates:
            Array ``(horizon, C)`` supplying the non-target channels for
            the forecast window (target columns are ignored).  Without
            it, covariates are frozen at their last observed values.
        """
        self._check_fitted()
        horizon = self._validate_horizon(horizon)
        n_channels = self._history.shape[1]
        if future_covariates is not None:
            future_covariates = np.asarray(future_covariates, dtype=float)
            if future_covariates.shape != (horizon, n_channels):
                raise ValueError(
                    f"future_covariates must have shape "
                    f"({horizon}, {n_channels})"
                )
        extended = self._history
        forecasts = np.zeros((horizon, len(self.target_channels)))
        for step in range(horizon):
            recent = extended[-self.n_lags:][::-1].ravel()
            prediction = recent @ self._weights + self._intercept
            forecasts[step] = prediction
            next_row = (future_covariates[step].copy()
                        if future_covariates is not None
                        else extended[-1].copy())
            next_row[self.target_channels] = prediction
            extended = np.vstack([extended, next_row])
        return forecasts

    def forecast(self, series, horizon, future_covariates=None):
        return self.fit(series).predict(horizon, future_covariates)
