"""Feature importance and interpretable surrogates [43].

The second explainability device of §II-C: "leverage neural networks
for feature extraction and integrate extracted features with
interpretable models".

* :func:`permutation_importance` — model-agnostic: shuffle one input
  column at a time and measure how much the model's error grows;
* :class:`SparseSurrogate` — a sparse linear model (iterative hard
  thresholding on top of ridge) fit to *mimic a black-box model's
  predictions*; its ``fidelity`` (R² against the black box) quantifies
  how faithfully the interpretable view represents the model, and its
  few non-zero coefficients are the explanation.
"""

from __future__ import annotations

import numpy as np

from ..._validation import as_float_array, check_positive, ensure_rng
from ..forecasting.linear import ridge_fit

__all__ = ["permutation_importance", "SparseSurrogate"]


def permutation_importance(predict, X, y, *, metric=None, n_repeats=3,
                           rng=None):
    """Per-column importance of inputs to a fitted predictor.

    Parameters
    ----------
    predict:
        Callable mapping an ``(n, d)`` array to predictions.
    X / y:
        Validation inputs and targets.
    metric:
        ``metric(y_true, y_pred) -> float`` (lower better); defaults to
        MAE.
    n_repeats:
        Shuffles per column (averaged).

    Returns
    -------
    numpy.ndarray
        Shape ``(d,)``: mean metric increase when the column is
        destroyed.  Near-zero means the model ignores the feature.
    """
    from ..metrics import mae

    if metric is None:
        metric = mae
    X = as_float_array(X, "X", ndim=2)
    y = np.asarray(y, dtype=float)
    rng = ensure_rng(rng)
    baseline = metric(y, predict(X))
    importances = np.zeros(X.shape[1])
    for column in range(X.shape[1]):
        increases = []
        for _ in range(int(n_repeats)):
            shuffled = X.copy()
            shuffled[:, column] = rng.permutation(shuffled[:, column])
            increases.append(metric(y, predict(shuffled)) - baseline)
        importances[column] = float(np.mean(increases))
    return importances


class SparseSurrogate:
    """Sparse linear mimic of a black-box predictor.

    Parameters
    ----------
    n_features:
        Number of non-zero coefficients to keep.
    """

    def __init__(self, n_features=5, *, alpha=1.0, n_iterations=10):
        self.n_features = int(check_positive(n_features, "n_features"))
        self.alpha = float(alpha)
        self.n_iterations = int(n_iterations)
        self._fitted = False

    def fit(self, X, black_box_predictions):
        """Fit the surrogate to the *model's* outputs, not the truth."""
        X = as_float_array(X, "X", ndim=2)
        targets = np.asarray(black_box_predictions, dtype=float).ravel()
        if len(X) != len(targets):
            raise ValueError("X and predictions must align")
        self._mean = X.mean(axis=0)
        self._scale = X.std(axis=0)
        self._scale[self._scale == 0] = 1.0
        z = (X - self._mean) / self._scale

        support = np.arange(X.shape[1])
        keep = min(self.n_features, X.shape[1])
        for _ in range(self.n_iterations):
            weights, intercept = ridge_fit(z[:, support],
                                           targets[:, None], self.alpha)
            magnitudes = np.abs(weights[:, 0])
            order = np.argsort(-magnitudes)[:keep]
            new_support = np.sort(support[order])
            if np.array_equal(new_support, support):
                support = new_support
                break
            support = new_support
        weights, intercept = ridge_fit(z[:, support], targets[:, None],
                                       self.alpha)
        self.support_ = support
        self.coefficients_ = weights[:, 0]
        self.intercept_ = float(intercept[0])
        self._targets = targets
        self._fitted = True
        return self

    def predict(self, X):
        if not self._fitted:
            raise RuntimeError("fit before predict")
        X = as_float_array(X, "X", ndim=2)
        z = (X - self._mean) / self._scale
        return z[:, self.support_] @ self.coefficients_ + self.intercept_

    def fidelity(self, X, black_box_predictions):
        """R² of the surrogate against the black box (1 = faithful)."""
        predictions = self.predict(X)
        targets = np.asarray(black_box_predictions, dtype=float).ravel()
        total = ((targets - targets.mean()) ** 2).sum()
        if total == 0:
            return 1.0
        residual = ((targets - predictions) ** 2).sum()
        return float(1.0 - residual / total)

    def explanation(self, feature_names=None):
        """The surrogate as ``[(name, coefficient), ...]``, largest first."""
        if not self._fitted:
            raise RuntimeError("fit before explaining")
        if feature_names is None:
            feature_names = [f"x{i}" for i in range(len(self._mean))]
        pairs = [
            (feature_names[index], float(coefficient))
            for index, coefficient in zip(self.support_, self.coefficients_)
        ]
        return sorted(pairs, key=lambda pair: -abs(pair[1]))
