"""Explainability: post-hoc localization metrics, feature importance,
interpretable surrogates, and temporal association graphs."""

from .associations import granger_matrix, lagged_correlation_graph
from .importance import SparseSurrogate, permutation_importance
from .posthoc import explanation_accuracy, inject_channel_anomalies

__all__ = [
    "SparseSurrogate",
    "explanation_accuracy",
    "granger_matrix",
    "inject_channel_anomalies",
    "lagged_correlation_graph",
    "permutation_importance",
]
