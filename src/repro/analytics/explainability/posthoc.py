"""Post-hoc explainability metric for anomaly detectors [35].

The paper asks "how to quantify the explainability of different
methods".  For autoencoder detectors the answer of [35] is: a detection
is *explainable* when the model's per-feature reconstruction errors
point at the features (channels, timesteps) that are actually
anomalous, so an operator can see *why* an alarm fired.

:func:`explanation_accuracy` scores that localization: the ROC-AUC of
the per-(timestep, channel) error map against the ground-truth
anomalous-cell mask — 1.0 means errors perfectly identify the corrupted
cells, 0.5 means the "explanation" is noise even if the detection
itself is accurate.
"""

from __future__ import annotations

import numpy as np

from ..._validation import ensure_rng
from ...datatypes import TimeSeries
from ..metrics import roc_auc

__all__ = ["explanation_accuracy", "inject_channel_anomalies"]


def inject_channel_anomalies(series, contamination=0.05, *, magnitude=4.0,
                             rng=None):
    """Corrupt single random channels at random timestamps.

    Unlike :func:`repro.datasets.inject_anomalies` (which corrupts whole
    timestamps), each event here touches exactly one channel — producing
    the cell-level ground truth the explainability metric needs.

    Returns
    -------
    (TimeSeries, numpy.ndarray)
        The corrupted series and a boolean mask of shape ``(M, C)``
        marking the corrupted cells.
    """
    if not isinstance(series, TimeSeries):
        raise TypeError("series must be a TimeSeries")
    if not 0.0 <= contamination < 1.0:
        raise ValueError("contamination must be in [0, 1)")
    rng = ensure_rng(rng)
    values = series.values
    n_steps, n_channels = values.shape
    scale = np.nanstd(values, axis=0)
    scale[scale == 0] = 1.0
    cells = np.zeros((n_steps, n_channels), dtype=bool)
    target = int(round(contamination * n_steps))
    guard = 0
    while cells.any(axis=1).sum() < target and guard < 50 * n_steps:
        guard += 1
        step = int(rng.integers(0, n_steps))
        channel = int(rng.integers(0, n_channels))
        if cells[step, channel]:
            continue
        sign = 1.0 if rng.random() < 0.5 else -1.0
        values[step, channel] += sign * magnitude * scale[channel]
        cells[step, channel] = True
    return series.with_values(values), cells


def explanation_accuracy(feature_errors, anomalous_cells):
    """ROC-AUC of the error map against the anomalous-cell mask.

    Parameters
    ----------
    feature_errors:
        Array ``(M, C)`` of per-timestep, per-channel detector errors
        (e.g. :meth:`AutoencoderDetector.feature_errors`).
    anomalous_cells:
        Boolean ground truth of the same shape.
    """
    errors = np.asarray(feature_errors, dtype=float)
    cells = np.asarray(anomalous_cells, dtype=bool)
    if errors.shape != cells.shape:
        raise ValueError(
            f"shape mismatch: {errors.shape} vs {cells.shape}"
        )
    return roc_auc(cells.ravel(), errors.ravel())
