"""Temporal associations among time series [44, 45, 46].

The paper's third explainability device: "tracking temporal
associations among time series and employing causal models to predict
future correlations".  Two classical instruments:

* :func:`lagged_correlation_graph` — for every sensor pair, the lag
  and strength of their maximal cross-correlation: which sensor *leads*
  which, and by how much;
* :func:`granger_matrix` — predictive (Granger-style) influence: how
  much sensor ``j``'s lags improve the autoregressive prediction of
  sensor ``i``, yielding a directed influence graph that explains *what
  drives what* in a correlated collection.
"""

from __future__ import annotations

import numpy as np

from ..._validation import check_positive
from ...datatypes import CorrelatedTimeSeries
from ..forecasting.linear import ridge_fit

__all__ = ["lagged_correlation_graph", "granger_matrix"]


def _cross_correlation(a, b, lag):
    """Correlation of a[t] with b[t + lag] (positive lag: a leads b)."""
    if lag > 0:
        a, b = a[:-lag], b[lag:]
    elif lag < 0:
        a, b = a[-lag:], b[:lag]
    if len(a) < 3 or a.std() == 0 or b.std() == 0:
        return 0.0
    return float(np.corrcoef(a, b)[0, 1])


def lagged_correlation_graph(dataset, max_lag=6):
    """Strongest cross-correlation and its lag for every sensor pair.

    Returns
    -------
    (numpy.ndarray, numpy.ndarray)
        ``strength[i, j]`` — the maximal absolute cross-correlation of
        sensors i and j over lags in ``[-max_lag, max_lag]``, and
        ``lead[i, j]`` — the lag achieving it (positive: i leads j).
        Diagonals are zero.
    """
    if not isinstance(dataset, CorrelatedTimeSeries):
        raise TypeError("dataset must be a CorrelatedTimeSeries")
    check_positive(max_lag, "max_lag")
    max_lag = int(max_lag)
    values = dataset.values
    n = dataset.n_sensors
    strength = np.zeros((n, n))
    lead = np.zeros((n, n), dtype=int)
    lags = range(-max_lag, max_lag + 1)
    for i in range(n):
        for j in range(i + 1, n):
            best, best_lag = 0.0, 0
            for lag in lags:
                rho = abs(_cross_correlation(values[:, i], values[:, j],
                                             lag))
                if rho > best:
                    best, best_lag = rho, lag
            strength[i, j] = strength[j, i] = best
            lead[i, j] = best_lag
            lead[j, i] = -best_lag
    return strength, lead


def granger_matrix(dataset, n_lags=4, *, alpha=1.0):
    """Directed predictive-influence matrix.

    ``influence[j, i]`` is the relative reduction in sensor ``i``'s
    one-step prediction error when sensor ``j``'s lags are added to
    ``i``'s own lags (clipped at zero).  Rows that matter are
    "explanations": sensor j materially drives sensor i.
    """
    if not isinstance(dataset, CorrelatedTimeSeries):
        raise TypeError("dataset must be a CorrelatedTimeSeries")
    check_positive(n_lags, "n_lags")
    n_lags = int(n_lags)
    values = dataset.values
    n_steps, n_sensors = values.shape
    if n_steps <= 2 * n_lags + 2:
        raise ValueError("series too short for the chosen n_lags")

    def lag_block(column):
        return np.stack([
            values[n_lags - lag - 1:n_steps - lag - 1, column]
            for lag in range(n_lags)
        ], axis=1)

    influence = np.zeros((n_sensors, n_sensors))
    for i in range(n_sensors):
        own = lag_block(i)
        target = values[n_lags:, i][:, None]
        weights, intercept = ridge_fit(own, target, alpha)
        base_error = float(
            ((own @ weights + intercept - target) ** 2).mean())
        if base_error == 0:
            continue
        for j in range(n_sensors):
            if i == j:
                continue
            joint = np.hstack([own, lag_block(j)])
            weights, intercept = ridge_fit(joint, target, alpha)
            joint_error = float(
                ((joint @ weights + intercept - target) ** 2).mean())
            influence[j, i] = max(0.0, 1.0 - joint_error / base_error)
    return influence
