"""Replay-based continual learning for streaming data [37, 38].

When the data distribution shifts (new roads, changed demand), a model
must learn the new regime *without forgetting* the old ones — naive
fine-tuning on recent data alone causes catastrophic forgetting, and
full retraining on everything is too expensive for streams.  The
replay strategy of [37] keeps a bounded buffer of past samples and
always trains on ``current regime + replayed past``.

:class:`ReplayContinualForecaster` wraps any forecaster factory with
that protocol; :func:`evaluate_forgetting` computes the standard
continual-learning score matrix (performance on every past regime after
each update).
"""

from __future__ import annotations

import numpy as np

from ..._validation import check_positive, ensure_rng
from ...datatypes import TimeSeries
from ..metrics import mae

__all__ = ["ReplayContinualForecaster", "evaluate_forgetting"]


class ReplayContinualForecaster:
    """Continual forecasting with reservoir replay.

    Parameters
    ----------
    forecaster_factory:
        Zero-argument callable returning a fresh forecaster.
    buffer_size:
        Maximum number of past *segments* retained (reservoir sampling,
        so every past regime stays represented).
    segment_length:
        Length of the chunks stored in the buffer.
    strategy:
        ``"replay"`` — train on buffer + new data (the method);
        ``"finetune"`` — train on new data only (the forgetting
        baseline); ``"retrain"`` — train on *everything seen* (the
        upper bound the paper calls too expensive).
    """

    _STRATEGIES = ("replay", "finetune", "retrain")

    def __init__(self, forecaster_factory, *, buffer_size=8,
                 segment_length=128, strategy="replay", rng=None):
        if strategy not in self._STRATEGIES:
            raise ValueError(
                f"strategy must be one of {self._STRATEGIES}, "
                f"got {strategy!r}"
            )
        self.forecaster_factory = forecaster_factory
        self.buffer_size = int(check_positive(buffer_size, "buffer_size"))
        self.segment_length = int(check_positive(segment_length,
                                                 "segment_length"))
        self.strategy = strategy
        self._rng = ensure_rng(rng)
        self._buffer = []
        self._seen = 0
        self._everything = []
        self.model_ = None

    def _reservoir_add(self, segment):
        self._seen += 1
        if len(self._buffer) < self.buffer_size:
            self._buffer.append(segment)
        else:
            slot = int(self._rng.integers(0, self._seen))
            if slot < self.buffer_size:
                self._buffer[slot] = segment

    def observe(self, series):
        """Ingest a new stream chunk and update the model."""
        if not isinstance(series, TimeSeries):
            raise TypeError("series must be a TimeSeries")
        values = series.values
        self._everything.append(values)
        for start in range(0, max(len(values) - self.segment_length, 0) + 1,
                           self.segment_length):
            segment = values[start:start + self.segment_length]
            if len(segment) >= 2:
                self._reservoir_add(segment)

        if self.strategy == "finetune":
            train = values
        elif self.strategy == "retrain":
            train = np.vstack(self._everything)
        else:  # replay
            parts = list(self._buffer) + [values]
            train = np.vstack(parts)
        self.model_ = self.forecaster_factory()
        self.model_.fit(TimeSeries(train))
        return self

    def predict(self, horizon):
        if self.model_ is None:
            raise RuntimeError("observe data before predicting")
        return self.model_.predict(horizon)

    def evaluate(self, series, horizon=12):
        """MAE of the *current parameters* on a regime's held-out data.

        The regime's own context window is fed to the fitted model (via
        ``predict_from``) but the parameters are NOT refit — the measure
        of what the learner still knows about that regime.
        """
        if self.model_ is None:
            raise RuntimeError("observe data before evaluating")
        if len(series) <= horizon:
            raise ValueError("series shorter than the horizon")
        context = series.values[:len(series) - horizon]
        future = series.values[len(series) - horizon:]
        if not hasattr(self.model_, "predict_from"):
            raise TypeError(
                "the wrapped forecaster must expose predict_from(history, "
                "horizon) for continual evaluation"
            )
        predicted = self.model_.predict_from(context, horizon)
        return mae(future, predicted)


def evaluate_forgetting(strategy_factory, regimes, *, horizon=12):
    """Continual-learning score matrix over sequential regimes.

    Parameters
    ----------
    strategy_factory:
        Callable returning a fresh :class:`ReplayContinualForecaster`.
    regimes:
        List of ``(train_series, test_series)`` pairs presented in
        order.

    Returns
    -------
    numpy.ndarray
        ``scores[k, r]`` — MAE on regime ``r``'s test data after
        training through regime ``k`` (``nan`` for r > k).  Forgetting
        of regime r is ``scores[-1, r] - scores[r, r]``.
    """
    learner = strategy_factory()
    n = len(regimes)
    scores = np.full((n, n), np.nan)
    for k, (train, _) in enumerate(regimes):
        learner.observe(train)
        for r in range(k + 1):
            scores[k, r] = learner.evaluate(regimes[r][1], horizon=horizon)
    return scores
