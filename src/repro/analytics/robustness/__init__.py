"""Robustness: drift detection, replay-based continual learning,
importance-weighted domain adaptation, and multi-scale pathways."""

from .adaptation import (
    DomainAdaptedRegressor,
    density_ratio_weights,
    weighted_ridge,
)
from .continual import ReplayContinualForecaster, evaluate_forgetting
from .drift import DriftTriggeredRefit, KsDriftDetector, PageHinkleyDetector
from .multiscale import MultiScalePathwaysForecaster

__all__ = [
    "DomainAdaptedRegressor",
    "DriftTriggeredRefit",
    "KsDriftDetector",
    "MultiScalePathwaysForecaster",
    "PageHinkleyDetector",
    "ReplayContinualForecaster",
    "density_ratio_weights",
    "evaluate_forgetting",
    "weighted_ridge",
]
