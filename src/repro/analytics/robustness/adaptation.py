"""Importance-weighted domain adaptation for imbalanced data [36].

The paper covers adapting models "despite data size discrepancies": a
large *source* domain and a small, differently-distributed *target*
domain.  The classical mechanism the reproduction uses is covariate-
shift correction: estimate the density ratio ``p_target / p_source``
with a logistic discriminator between the domains, then fit the model
on source data *re-weighted* by that ratio (plus the few target
examples), so source samples that look like the target dominate.
"""

from __future__ import annotations

import numpy as np

from ..._validation import as_float_array, check_positive

__all__ = ["density_ratio_weights", "weighted_ridge",
           "DomainAdaptedRegressor"]


def density_ratio_weights(source, target, *, n_epochs=300,
                          learning_rate=0.5, clip=10.0):
    """Estimate ``p_target(x) / p_source(x)`` for every source row.

    A logistic discriminator is trained to tell target (label 1) from
    source (label 0); by Bayes' rule the odds ratio of its output is the
    density ratio (up to the class prior, which is normalized away).
    Weights are clipped to limit variance.
    """
    source = as_float_array(source, "source", ndim=2)
    target = as_float_array(target, "target", ndim=2)
    if source.shape[1] != target.shape[1]:
        raise ValueError("source and target must share feature count")
    inputs = np.vstack([source, target])
    labels = np.concatenate([np.zeros(len(source)), np.ones(len(target))])

    mean = inputs.mean(axis=0)
    scale = inputs.std(axis=0)
    scale[scale == 0] = 1.0
    z = (inputs - mean) / scale

    weights = np.zeros(z.shape[1])
    intercept = 0.0
    n = len(labels)
    for _ in range(int(n_epochs)):
        logits = z @ weights + intercept
        proba = 1.0 / (1.0 + np.exp(-logits))
        gradient = (proba - labels) / n
        weights -= learning_rate * (z.T @ gradient)
        intercept -= learning_rate * gradient.sum()

    source_z = (source - mean) / scale
    logits = source_z @ weights + intercept
    prior = len(target) / len(source)
    ratio = np.exp(logits) / prior
    ratio = np.clip(ratio, 1.0 / clip, clip)
    return ratio / ratio.mean()


def weighted_ridge(features, targets, sample_weight, alpha=1.0):
    """Closed-form ridge with per-sample weights."""
    features = as_float_array(features, "features", ndim=2)
    targets = np.asarray(targets, dtype=float)
    if targets.ndim == 1:
        targets = targets[:, None]
    sample_weight = np.asarray(sample_weight, dtype=float)
    if sample_weight.shape != (len(features),):
        raise ValueError("sample_weight must be 1-D of length n")
    if np.any(sample_weight < 0):
        raise ValueError("sample_weight must be non-negative")
    total = sample_weight.sum()
    if total <= 0:
        raise ValueError("sample_weight must have positive sum")
    w = sample_weight / total
    mean_x = w @ features
    mean_y = w @ targets
    xc = features - mean_x
    yc = targets - mean_y
    gram = (xc * w[:, None]).T @ xc + alpha * np.eye(features.shape[1]) \
        / len(features)
    coefficients = np.linalg.solve(gram, (xc * w[:, None]).T @ yc)
    intercept = mean_y - mean_x @ coefficients
    return coefficients, intercept


class DomainAdaptedRegressor:
    """Lag regression adapted from a large source to a small target.

    Parameters
    ----------
    n_lags:
        Autoregressive order of the underlying lag model.
    target_boost:
        Extra weight multiplier for the (few) target examples.
    """

    def __init__(self, n_lags=8, *, alpha=1.0, target_boost=3.0):
        self.n_lags = int(check_positive(n_lags, "n_lags"))
        self.alpha = float(alpha)
        self.target_boost = float(check_positive(target_boost,
                                                 "target_boost"))
        self._fitted = False

    def _lag_features(self, values):
        features = np.stack([
            values[position - self.n_lags:position][::-1]
            for position in range(self.n_lags, len(values))
        ])
        return features, values[self.n_lags:]

    def fit(self, source_values, target_values, *, adapt=True):
        """Fit on source + target with optional density-ratio weighting.

        ``adapt=False`` gives the unweighted pooled baseline the
        adaptation is compared against (experiment-facing switch).
        """
        source_values = np.asarray(source_values, dtype=float).ravel()
        target_values = np.asarray(target_values, dtype=float).ravel()
        xs, ys = self._lag_features(source_values)
        xt, yt = self._lag_features(target_values)
        ratio = (density_ratio_weights(xs, xt) if adapt
                 else np.ones(len(xs)))
        features = np.vstack([xs, xt])
        targets = np.concatenate([ys, yt])
        weight = np.concatenate([
            ratio, np.full(len(xt), self.target_boost)
        ])
        coefficients, intercept = weighted_ridge(features, targets, weight,
                                                 self.alpha)
        self._coefficients = coefficients[:, 0]
        self._intercept = float(intercept[0])
        self._fitted = True
        return self

    def predict_one_step(self, values):
        """One-step-ahead predictions along ``values``."""
        if not self._fitted:
            raise RuntimeError("fit before predict")
        values = np.asarray(values, dtype=float).ravel()
        features, targets = self._lag_features(values)
        return features @ self._coefficients + self._intercept, targets
