"""Distribution-shift detection for streaming series (§II-C robustness).

Distribution shifts — new roads, demand growth, regime changes — break
models trained on yesterday's distribution.  Detecting the shift is the
trigger for the continual-learning and recalibration machinery
(:mod:`.continual`, QCore).  Two standard detectors:

* :class:`KsDriftDetector` — two-sample Kolmogorov-Smirnov between a
  reference window and the recent window (distributional change of any
  kind);
* :class:`PageHinkleyDetector` — sequential mean-shift detection with
  O(1) state, the classic streaming change-point test.

:class:`DriftTriggeredRefit` turns a detector into the streaming
re-fit gate incremental pipelines need (see ``docs/STREAMING.md``):
feed it forecast residuals tick by tick and it invokes a re-fit
callback — rate-limited by a cooldown — exactly when the detector
alarms, publishing ``analytics.drift_refits_total`` so re-training
churn is visible next to the engine metrics.
"""

from __future__ import annotations

import numpy as np
from scipy import stats

from ..._validation import check_positive

__all__ = ["DriftTriggeredRefit", "KsDriftDetector",
           "PageHinkleyDetector"]


class KsDriftDetector:
    """Two-sample KS test between reference and recent data.

    Parameters
    ----------
    reference:
        Sample from the training distribution.
    p_threshold:
        Drift is flagged when the KS p-value drops below this.
    """

    def __init__(self, reference, p_threshold=0.01):
        reference = np.asarray(reference, dtype=float).ravel()
        if len(reference) < 5:
            raise ValueError("reference needs at least 5 observations")
        if not 0.0 < p_threshold < 1.0:
            raise ValueError("p_threshold must be in (0, 1)")
        self.reference = reference
        self.p_threshold = float(p_threshold)

    def check(self, recent):
        """Test a recent sample; returns ``(drifted, p_value)``."""
        recent = np.asarray(recent, dtype=float).ravel()
        if len(recent) < 5:
            raise ValueError("recent needs at least 5 observations")
        statistic = stats.ks_2samp(self.reference, recent)
        return bool(statistic.pvalue < self.p_threshold), float(
            statistic.pvalue)


class PageHinkleyDetector:
    """Sequential Page-Hinkley mean-shift detector.

    Parameters
    ----------
    delta:
        Magnitude of tolerated fluctuation (in target units).
    threshold:
        Alarm level of the cumulative statistic.
    """

    def __init__(self, delta=0.05, threshold=5.0):
        self.delta = float(check_positive(delta, "delta"))
        self.threshold = float(check_positive(threshold, "threshold"))
        self.reset()

    def reset(self):
        self._count = 0
        self._mean = 0.0
        self._cumulative = 0.0
        self._minimum = 0.0

    def update(self, value):
        """Feed one observation; returns True when a shift is detected.

        The detector resets itself after each alarm so it can flag
        subsequent shifts.
        """
        value = float(value)
        self._count += 1
        self._mean += (value - self._mean) / self._count
        self._cumulative += value - self._mean - self.delta
        self._minimum = min(self._minimum, self._cumulative)
        if self._cumulative - self._minimum > self.threshold:
            self.reset()
            return True
        return False

    def scan(self, values):
        """Run over a sequence; returns the indices of detected shifts."""
        alarms = []
        for index, value in enumerate(np.asarray(values, dtype=float)):
            if self.update(value):
                alarms.append(index)
        return alarms


class DriftTriggeredRefit:
    """Streaming re-fit gate: alarm from a detector triggers a re-fit.

    Feed forecast residuals (or any monitored scalar) with
    :meth:`observe` / :meth:`observe_many`; when the wrapped detector
    alarms — and at least ``cooldown`` observations have passed since
    the last re-fit — the gate calls ``refit()`` (when given) and
    reports the trigger.  State is O(1) and plain data, so the gate
    can live in an incremental stage's carried delta.

    Parameters
    ----------
    detector:
        Any object with a ``update(value) -> bool`` method; default a
        fresh :class:`PageHinkleyDetector`.
    refit:
        Optional zero-argument callable invoked on each trigger (a
        model's re-fit closure).  Exceptions propagate — a failing
        re-fit is a real failure, not something to swallow.
    cooldown:
        Minimum observations between two triggers; alarms inside the
        cooldown window are suppressed (the detector has already
        self-reset).  Default 0: every alarm triggers.
    """

    def __init__(self, detector=None, *, refit=None, cooldown=0):
        if detector is None:
            detector = PageHinkleyDetector()
        if not callable(getattr(detector, "update", None)):
            raise TypeError(
                "detector must expose update(value) -> bool")
        if refit is not None and not callable(refit):
            raise TypeError("refit must be callable or None")
        cooldown = int(cooldown)
        if cooldown < 0:
            raise ValueError("cooldown must be >= 0")
        self.detector = detector
        self.refit = refit
        self.cooldown = cooldown
        self.observed = 0
        self.refits = 0
        self.suppressed = 0
        self._last_trigger = None

    @staticmethod
    def _count_refit():
        from ...observability.metrics import get_registry

        get_registry().counter(
            "analytics.drift_refits_total",
            "Model re-fits triggered by drift detection").inc()

    def observe(self, value):
        """Feed one observation; returns True when a re-fit fired."""
        self.observed += 1
        if not self.detector.update(value):
            return False
        if (self._last_trigger is not None
                and self.observed - self._last_trigger < self.cooldown):
            self.suppressed += 1
            return False
        self._last_trigger = self.observed
        self.refits += 1
        self._count_refit()
        if self.refit is not None:
            self.refit()
        return True

    def observe_many(self, values):
        """Feed a sequence; returns indices that triggered a re-fit."""
        triggers = []
        for index, value in enumerate(np.asarray(values, dtype=float)):
            if self.observe(value):
                triggers.append(index)
        return triggers

    def __repr__(self):
        return (f"DriftTriggeredRefit(observed={self.observed}, "
                f"refits={self.refits}, cooldown={self.cooldown})")
