"""Distribution-shift detection for streaming series (§II-C robustness).

Distribution shifts — new roads, demand growth, regime changes — break
models trained on yesterday's distribution.  Detecting the shift is the
trigger for the continual-learning and recalibration machinery
(:mod:`.continual`, QCore).  Two standard detectors:

* :class:`KsDriftDetector` — two-sample Kolmogorov-Smirnov between a
  reference window and the recent window (distributional change of any
  kind);
* :class:`PageHinkleyDetector` — sequential mean-shift detection with
  O(1) state, the classic streaming change-point test.
"""

from __future__ import annotations

import numpy as np
from scipy import stats

from ..._validation import check_positive

__all__ = ["KsDriftDetector", "PageHinkleyDetector"]


class KsDriftDetector:
    """Two-sample KS test between reference and recent data.

    Parameters
    ----------
    reference:
        Sample from the training distribution.
    p_threshold:
        Drift is flagged when the KS p-value drops below this.
    """

    def __init__(self, reference, p_threshold=0.01):
        reference = np.asarray(reference, dtype=float).ravel()
        if len(reference) < 5:
            raise ValueError("reference needs at least 5 observations")
        if not 0.0 < p_threshold < 1.0:
            raise ValueError("p_threshold must be in (0, 1)")
        self.reference = reference
        self.p_threshold = float(p_threshold)

    def check(self, recent):
        """Test a recent sample; returns ``(drifted, p_value)``."""
        recent = np.asarray(recent, dtype=float).ravel()
        if len(recent) < 5:
            raise ValueError("recent needs at least 5 observations")
        statistic = stats.ks_2samp(self.reference, recent)
        return bool(statistic.pvalue < self.p_threshold), float(
            statistic.pvalue)


class PageHinkleyDetector:
    """Sequential Page-Hinkley mean-shift detector.

    Parameters
    ----------
    delta:
        Magnitude of tolerated fluctuation (in target units).
    threshold:
        Alarm level of the cumulative statistic.
    """

    def __init__(self, delta=0.05, threshold=5.0):
        self.delta = float(check_positive(delta, "delta"))
        self.threshold = float(check_positive(threshold, "threshold"))
        self.reset()

    def reset(self):
        self._count = 0
        self._mean = 0.0
        self._cumulative = 0.0
        self._minimum = 0.0

    def update(self, value):
        """Feed one observation; returns True when a shift is detected.

        The detector resets itself after each alarm so it can flag
        subsequent shifts.
        """
        value = float(value)
        self._count += 1
        self._mean += (value - self._mean) / self._count
        self._cumulative += value - self._mean - self.delta
        self._minimum = min(self._minimum, self._cumulative)
        if self._cumulative - self._minimum > self.threshold:
            self.reset()
            return True
        return False

    def scan(self, values):
        """Run over a sequence; returns the indices of detected shifts."""
        alarms = []
        for index, value in enumerate(np.asarray(values, dtype=float)):
            if self.update(value):
                alarms.append(index)
        return alarms
