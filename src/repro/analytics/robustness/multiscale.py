"""Multi-scale pathways forecasting (Pathformer-style [40]).

Real series mix dynamics at several temporal resolutions (15-minute
noise, daily cycles, weekly drift).  A single-resolution model must
compromise; the pathways idea is to model each scale with its own
branch and *adaptively select/weight* the branches per dataset.

:class:`MultiScalePathwaysForecaster`:

1. decomposes the series with a cascade of moving averages into
   additive components (finest residual ... coarsest trend) — the
   decomposition telescopes, so the components sum exactly to the
   series;
2. forecasts each component with its own lag model whose receptive
   field matches the scale;
3. learns per-pathway weights on a validation tail (the adaptive
   routing), so irrelevant scales are switched off.
"""

from __future__ import annotations

import numpy as np

from ..._validation import check_non_negative
from ...datatypes import TimeSeries
from ..forecasting.base import Forecaster
from ..forecasting.linear import ARForecaster
from ..metrics import mae

__all__ = ["MultiScalePathwaysForecaster"]


def _moving_average(values, width):
    """Centered moving average with edge padding, per column."""
    if width <= 1:
        return values.copy()
    kernel = np.ones(width) / width
    padded = np.pad(values, ((width // 2, width - 1 - width // 2), (0, 0)),
                    mode="edge")
    return np.stack([
        np.convolve(padded[:, column], kernel, mode="valid")
        for column in range(values.shape[1])
    ], axis=1)


class MultiScalePathwaysForecaster(Forecaster):
    """Adaptive multi-resolution decomposition forecasting.

    Parameters
    ----------
    scales:
        Moving-average widths, increasing; each adjacent pair defines a
        band-pass component and the last defines the trend component.
    holdout_fraction:
        Validation share used to learn the pathway weights.
    adaptive:
        When False, pathways are equally weighted (the ablation
        baseline of experiment E14).
    """

    def __init__(self, scales=(4, 24, 96), *, n_lags=8, alpha=1.0,
                 holdout_fraction=0.2, adaptive=True):
        scales = tuple(int(s) for s in scales)
        if not scales or any(s < 2 for s in scales):
            raise ValueError("scales must be >= 2")
        if list(scales) != sorted(set(scales)):
            raise ValueError("scales must be strictly increasing")
        self.scales = scales
        self.n_lags = int(n_lags)
        self.alpha = float(check_non_negative(alpha, "alpha"))
        self.holdout_fraction = float(holdout_fraction)
        self.adaptive = bool(adaptive)

    def _decompose(self, values):
        """Additive components, finest first; they sum to ``values``."""
        components = []
        remainder = values
        for width in self.scales:
            smooth = _moving_average(remainder, width)
            components.append(remainder - smooth)
            remainder = smooth
        components.append(remainder)  # the trend pathway
        return components

    def _pathway_model(self, index):
        if index >= len(self.scales):
            # The trend pathway is smooth by construction; Holt's linear
            # extrapolation is the right inductive bias there.
            from ..forecasting.classical import HoltForecaster

            return HoltForecaster(alpha=0.2, beta=0.05)
        # Band pathways are near-periodic at their scale: give each an
        # autoregression whose receptive field covers roughly one cycle
        # of the band.
        scale = self.scales[index]
        n_lags = max(2, min(2 * scale, 96))
        return ARForecaster(n_lags=n_lags, alpha=self.alpha)

    def fit(self, series):
        series = self._validate_series(series)
        values = series.values
        n_paths = len(self.scales) + 1

        # Adaptive routing: the decomposition is *additive*, so every
        # pathway must contribute exactly once — the adaptive choice is
        # whether a pathway's forecast comes from its model or from its
        # safe fallback (the component's training mean; for zero-mean
        # band components that is ~zero).  A pathway whose model loses
        # to the fallback on the validation tail is switched off.
        if self.adaptive:
            holdout = max(4, int(self.holdout_fraction * len(values)))
            if holdout >= len(values) - 4:
                raise ValueError("series too short for the holdout")
            # Decompose once and split each component — decomposing the
            # truncated series separately would make train and
            # validation inconsistent near the boundary (the centered
            # moving average pads edges).
            components = self._decompose(values)
            use_model = []
            for index, component in enumerate(components):
                head = component[:-holdout]
                actual = component[-holdout:]
                fallback = np.tile(head.mean(axis=0), (holdout, 1))
                fallback_error = mae(actual, fallback)
                model = self._pathway_model(index)
                try:
                    model.fit(TimeSeries(head))
                    model_error = mae(actual, model.predict(holdout))
                except (ValueError, RuntimeError):
                    model_error = float("inf")
                use_model.append(model_error <= fallback_error)
            self.pathway_uses_model_ = use_model
        else:
            self.pathway_uses_model_ = [True] * n_paths
        self.pathway_weights_ = np.ones(n_paths)

        # Final fit on the full series.
        self._models = []
        self._fallbacks = []
        components = self._decompose(values)
        for index, component in enumerate(components):
            self._fallbacks.append(component.mean(axis=0))
            if not self.pathway_uses_model_[index]:
                self._models.append(None)
                continue
            model = self._pathway_model(index)
            try:
                model.fit(TimeSeries(component))
                self._models.append(model)
            except (ValueError, RuntimeError):
                self._models.append(None)
                self.pathway_uses_model_[index] = False
        self._n_channels = values.shape[1]
        self._fitted = True
        return self

    def predict(self, horizon):
        self._check_fitted()
        horizon = self._validate_horizon(horizon)
        total = np.zeros((horizon, self._n_channels))
        for model, fallback in zip(self._models, self._fallbacks):
            if model is not None:
                total += model.predict(horizon)
            else:
                total += fallback[None, :]
        return total

    def evaluate_pathways(self, series, horizon):
        """Per-pathway holdout MAE (diagnostic for the experiments)."""
        self._check_fitted()
        train, test = series.split(1.0 - self.holdout_fraction)
        components = self._decompose(train.values)
        test_components = self._decompose(series.values)
        results = []
        offset = len(train)
        for index, component in enumerate(components):
            model = self._pathway_model(index)
            try:
                model.fit(TimeSeries(component))
                predicted = model.predict(min(horizon, len(series) - offset))
                actual = test_components[index][
                    offset:offset + predicted.shape[0]]
                results.append(mae(actual, predicted))
            except (ValueError, RuntimeError):
                results.append(float("nan"))
        return results
