"""Masked-autoencoder pretraining (LightPath-style [32]).

The second generality mechanism of §II-C: hide random spans of each
window and train an encoder/decoder to reconstruct them.  What the
encoder must learn to fill the gaps — local shape, phase, level — is
exactly what downstream classifiers need, so a linear probe on the
frozen embedding rivals fully supervised training with far fewer labels
(experiment E10).

The network is the shared :class:`~repro.analytics._mlp.Mlp`; masking is
span-based (contiguous chunks), matching how trajectory/path pretraining
masks sub-paths rather than isolated points.
"""

from __future__ import annotations

import numpy as np

from ..._validation import check_fraction, check_positive, ensure_rng
from .._mlp import Mlp

__all__ = ["MaskedAutoencoderPretrainer", "LinearProbe"]


class MaskedAutoencoderPretrainer:
    """Span-masked reconstruction pretraining.

    Parameters
    ----------
    n_components:
        Bottleneck (= embedding) dimensionality.
    mask_fraction:
        Share of each window hidden during pretraining.
    span:
        Length of each masked chunk.
    """

    def __init__(self, n_components=8, *, n_hidden=32, mask_fraction=0.3,
                 span=8, n_epochs=80, learning_rate=0.005, rng=None):
        self.n_components = int(check_positive(n_components,
                                               "n_components"))
        self.n_hidden = int(check_positive(n_hidden, "n_hidden"))
        self.mask_fraction = check_fraction(mask_fraction, "mask_fraction",
                                            inclusive_low=False,
                                            inclusive_high=False)
        self.span = int(check_positive(span, "span"))
        self.n_epochs = int(check_positive(n_epochs, "n_epochs"))
        self.learning_rate = float(learning_rate)
        self._rng = ensure_rng(rng)
        self._fitted = False

    def _mask(self, standardized):
        masked = standardized.copy()
        n, length = standardized.shape
        n_spans = max(1, int(self.mask_fraction * length / self.span))
        for row in range(n):
            for _ in range(n_spans):
                start = int(self._rng.integers(0, max(1, length - self.span)))
                masked[row, start:start + self.span] = 0.0
        return masked

    def fit(self, windows):
        """Pre-train on unlabeled windows of shape ``(n, length)``."""
        windows = np.asarray(windows, dtype=float)
        if windows.ndim != 2:
            raise ValueError("windows must be 2-D")
        n, length = windows.shape
        self._mean = windows.mean(axis=0)
        self._scale = windows.std(axis=0)
        self._scale[self._scale == 0] = 1.0
        standardized = (windows - self._mean) / self._scale

        self._network = Mlp(
            [length, self.n_hidden, self.n_components, self.n_hidden,
             length],
            learning_rate=self.learning_rate, n_epochs=1,
            batch_size=32, rng=self._rng,
        )
        for _ in range(self.n_epochs):
            corrupted = self._mask(standardized)
            self._network.fit(corrupted, standardized)
        self._fitted = True
        return self

    def transform(self, windows):
        """Frozen-encoder embeddings, shape ``(n, n_components)``."""
        if not self._fitted:
            raise RuntimeError("fit before transform")
        windows = np.asarray(windows, dtype=float)
        if windows.ndim == 1:
            windows = windows[None, :]
        standardized = (windows - self._mean) / self._scale
        _, activations = self._network.forward(standardized)
        return activations[2]  # output of the bottleneck layer

    def reconstruction_error(self, windows):
        """Mean reconstruction MSE (a pretraining quality probe)."""
        if not self._fitted:
            raise RuntimeError("fit before scoring")
        windows = np.asarray(windows, dtype=float)
        standardized = (windows - self._mean) / self._scale
        predicted = self._network.predict(standardized)
        return float(((predicted - standardized) ** 2).mean())


class LinearProbe:
    """Multinomial logistic regression on frozen embeddings.

    The standard protocol for judging representation quality: if a
    linear model on the embedding classifies well from few labels, the
    representation generalizes.
    """

    def __init__(self, *, n_epochs=300, learning_rate=0.5):
        self.n_epochs = int(check_positive(n_epochs, "n_epochs"))
        self.learning_rate = float(learning_rate)
        self._fitted = False

    def fit(self, embeddings, labels):
        embeddings = np.asarray(embeddings, dtype=float)
        labels = np.asarray(labels)
        if len(embeddings) != len(labels):
            raise ValueError("embeddings and labels must align")
        self.classes_ = np.unique(labels)
        if len(self.classes_) < 2:
            raise ValueError("need at least two classes")
        self._mean = embeddings.mean(axis=0)
        self._scale = embeddings.std(axis=0)
        self._scale[self._scale == 0] = 1.0
        z = (embeddings - self._mean) / self._scale
        targets = (labels[:, None] == self.classes_[None, :]).astype(float)

        n, d = z.shape
        k = len(self.classes_)
        weights = np.zeros((d, k))
        intercept = np.zeros(k)
        for _ in range(self.n_epochs):
            logits = z @ weights + intercept
            logits -= logits.max(axis=1, keepdims=True)
            proba = np.exp(logits)
            proba /= proba.sum(axis=1, keepdims=True)
            gradient = (proba - targets) / n
            weights -= self.learning_rate * (z.T @ gradient)
            intercept -= self.learning_rate * gradient.sum(axis=0)
        self._weights, self._intercept = weights, intercept
        self._fitted = True
        return self

    def predict(self, embeddings):
        if not self._fitted:
            raise RuntimeError("fit before predict")
        z = (np.asarray(embeddings, dtype=float) - self._mean) / self._scale
        return self.classes_[np.argmax(z @ self._weights + self._intercept,
                                       axis=1)]

    def score(self, embeddings, labels):
        return float(np.mean(self.predict(embeddings) == np.asarray(labels)))
