"""Path representation learning on road networks ([29], [30], [32]).

The paper's generality references are mostly about *paths*: unsupervised
path representation with curriculum negatives [30], weakly-supervised
temporal paths [31], lightweight path pretraining (LightPath [32]) and
multi-modal paths (MM-Path [23]).  This module provides the road-network
counterpart of the window encoders:

* edge embeddings trained skip-gram style on random walks (and/or
  observed trajectories): edges that co-occur on trips end up close;
* a path embedding = length-weighted mean of its edge embeddings,
  which downstream rankers/classifiers consume.

Training is a NumPy skip-gram with negative sampling (the standard
word2vec objective with edges as tokens and walks as sentences).
"""

from __future__ import annotations

import numpy as np

from ..._validation import check_positive, ensure_rng
from ...datatypes import RoadNetwork

__all__ = ["PathEncoder"]


class PathEncoder:
    """Skip-gram edge embeddings with path pooling.

    Parameters
    ----------
    network:
        The road network whose edges are embedded.
    n_components:
        Embedding dimensionality.
    window:
        Skip-gram context radius along a walk.
    n_negatives:
        Negative samples per positive pair.
    """

    def __init__(self, network, n_components=16, *, window=3,
                 n_negatives=4, n_epochs=3, learning_rate=0.05,
                 rng=None):
        if not isinstance(network, RoadNetwork):
            raise TypeError("network must be a RoadNetwork")
        self.network = network
        self.n_components = int(check_positive(n_components,
                                               "n_components"))
        self.window = int(check_positive(window, "window"))
        self.n_negatives = int(check_positive(n_negatives,
                                              "n_negatives"))
        self.n_epochs = int(check_positive(n_epochs, "n_epochs"))
        self.learning_rate = float(learning_rate)
        self._rng = ensure_rng(rng)
        self._edges = network.edges()
        self._index = {edge: i for i, edge in enumerate(self._edges)}
        self._fitted = False

    # -- corpus ------------------------------------------------------------

    def random_walks(self, n_walks=200, walk_length=12):
        """Generate random-walk node paths as a training corpus.

        Used when no trajectory data exists; observed trajectories can
        be passed to :meth:`fit` directly instead (or in addition).
        """
        nodes = self.network.nodes()
        walks = []
        for _ in range(int(n_walks)):
            current = nodes[int(self._rng.integers(0, len(nodes)))]
            walk = [current]
            for _ in range(int(walk_length)):
                successors = self.network.successors(current)
                if not successors:
                    break
                current = successors[int(self._rng.integers(
                    0, len(successors)))]
                walk.append(current)
            if len(walk) >= 2:
                walks.append(walk)
        return walks

    # -- training -----------------------------------------------------------

    def fit(self, paths=None, *, n_walks=300, walk_length=12):
        """Train edge embeddings from node paths.

        Parameters
        ----------
        paths:
            Iterable of node paths (expert trajectories).  When omitted,
            random walks over the network are used.
        """
        if paths is None:
            paths = self.random_walks(n_walks, walk_length)
        sentences = []
        for path in paths:
            edge_ids = [
                self._index[edge]
                for edge in self.network.path_edges(list(path))
            ]
            if len(edge_ids) >= 2:
                sentences.append(edge_ids)
        if not sentences:
            raise ValueError("no usable paths (need >= 2 edges each)")

        n_edges = len(self._edges)
        d = self.n_components
        rng = self._rng
        # Input (center) and output (context) embedding tables.
        centers = rng.normal(0, 1.0 / np.sqrt(d), size=(n_edges, d))
        contexts = rng.normal(0, 1.0 / np.sqrt(d), size=(n_edges, d))

        def sigmoid(x):
            return 1.0 / (1.0 + np.exp(-np.clip(x, -30, 30)))

        rate = self.learning_rate
        for _ in range(self.n_epochs):
            order = rng.permutation(len(sentences))
            for sentence_index in order:
                sentence = sentences[sentence_index]
                for position, center_id in enumerate(sentence):
                    low = max(0, position - self.window)
                    high = min(len(sentence), position + self.window + 1)
                    for context_position in range(low, high):
                        if context_position == position:
                            continue
                        context_id = sentence[context_position]
                        negatives = rng.integers(0, n_edges,
                                                 self.n_negatives)
                        ids = np.concatenate([[context_id], negatives])
                        labels = np.zeros(len(ids))
                        labels[0] = 1.0
                        vectors = contexts[ids]
                        scores = sigmoid(vectors @ centers[center_id])
                        gradient = (scores - labels)[:, None]
                        grad_center = (gradient * vectors).sum(axis=0)
                        contexts[ids] -= rate * gradient \
                            * centers[center_id][None, :]
                        centers[center_id] -= rate * grad_center
            rate *= 0.8
        self._embeddings = centers
        self._fitted = True
        return self

    # -- queries ---------------------------------------------------------------

    def edge_embedding(self, u, v):
        if not self._fitted:
            raise RuntimeError("fit before querying embeddings")
        return self._embeddings[self._index[(u, v)]].copy()

    def path_embedding(self, path, *, pooling="mean"):
        """Pool the path's edge embeddings into one vector.

        ``pooling="mean"`` (length-weighted average) suits *similarity*
        tasks — two paths through the same corridor embed close
        regardless of length.  ``pooling="sum"`` (length-weighted sum)
        preserves additive structure and is the right choice for
        *additive-cost* downstream tasks such as travel-time estimation
        (LightPath's evaluation task).
        """
        if pooling not in ("mean", "sum"):
            raise ValueError(
                f"pooling must be 'mean' or 'sum', got {pooling!r}"
            )
        if not self._fitted:
            raise RuntimeError("fit before querying embeddings")
        edges = self.network.path_edges(list(path))
        weights = np.array([
            self.network.edge_length(u, v) for u, v in edges
        ])
        vectors = np.stack([
            self._embeddings[self._index[edge]] for edge in edges
        ])
        total = (weights[:, None] * vectors).sum(axis=0)
        if pooling == "sum":
            return total
        return total / weights.sum()

    def similarity(self, path_a, path_b):
        """Cosine similarity of two path embeddings."""
        a = self.path_embedding(path_a)
        b = self.path_embedding(path_b)
        denominator = max(np.linalg.norm(a) * np.linalg.norm(b), 1e-12)
        return float(a @ b / denominator)