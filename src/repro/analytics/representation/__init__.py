"""Generality: pretrained representations (contrastive + masked) with
linear probing."""

from .contrastive import ContrastiveEncoder
from .masked import LinearProbe, MaskedAutoencoderPretrainer
from .path2vec import PathEncoder

__all__ = ["ContrastiveEncoder", "LinearProbe",
           "MaskedAutoencoderPretrainer", "PathEncoder"]
