"""Unsupervised contrastive representation learning with curriculum
negative sampling [30].

The generality story of the paper (§II-C): pre-train an encoder on
abundant *unlabeled* windows so that downstream tasks need only a
handful of labels.  The mechanism reproduced here is InfoNCE with the
curriculum of [30]:

* **positives** — two overlapping random crops of the same window agree;
* **negatives** — crops of other windows must disagree;
* **curriculum** — early epochs use the *easiest* negatives (most
  dissimilar); harder negatives are mixed in as training progresses,
  which stabilizes the embedding before it is sharpened.

The encoder is a single linear map trained with the exact InfoNCE
gradient (derived for dot-product similarity), so training is fast and
deterministic.
"""

from __future__ import annotations

import numpy as np

from ..._validation import check_fraction, check_positive, ensure_rng

__all__ = ["ContrastiveEncoder"]


class ContrastiveEncoder:
    """Linear InfoNCE encoder with curriculum negative sampling.

    Parameters
    ----------
    n_components:
        Embedding dimensionality.
    crop_fraction:
        Length of random crops relative to the window (two crops of the
        same window form the positive pair).
    temperature:
        InfoNCE temperature.
    curriculum:
        When True, negatives are introduced easiest-first.
    """

    def __init__(self, n_components=8, *, crop_fraction=0.8,
                 temperature=0.5, n_epochs=60, learning_rate=0.02,
                 batch_size=32, curriculum=True, rng=None):
        self.n_components = int(check_positive(n_components,
                                               "n_components"))
        self.crop_fraction = check_fraction(crop_fraction, "crop_fraction",
                                            inclusive_low=False)
        self.temperature = float(check_positive(temperature, "temperature"))
        self.n_epochs = int(check_positive(n_epochs, "n_epochs"))
        self.learning_rate = float(learning_rate)
        self.batch_size = int(batch_size)
        self.curriculum = bool(curriculum)
        self._rng = ensure_rng(rng)
        self._fitted = False
        self.training_losses = []

    def _crop(self, window):
        length = len(window)
        crop_length = max(2, int(self.crop_fraction * length))
        start = int(self._rng.integers(0, length - crop_length + 1))
        crop = np.zeros(length)
        crop[:crop_length] = window[start:start + crop_length]
        return crop

    def fit(self, windows, weak_labels=None):
        """Pre-train on windows of shape ``(n, length)``.

        Parameters
        ----------
        windows:
            The (unlabeled) training pool.
        weak_labels:
            Optional coarse labels of shape ``(n,)`` — the
            weakly-supervised variant of [31]: when given, the positive
            view of an anchor is a crop of a *different window with the
            same label* (not just of the anchor itself), so the encoder
            targets label-level rather than instance-level invariance.

            Note: with this *linear* encoder, cross-window positives are
            often too hard to align and instance-level positives train
            better (measured in tests/test_representation.py); the
            option reproduces [31]'s mechanism, not a guaranteed win.
        """
        windows = np.asarray(windows, dtype=float)
        if windows.ndim != 2:
            raise ValueError("windows must be 2-D")
        n, length = windows.shape
        if n < 4:
            raise ValueError("need at least 4 windows")
        if weak_labels is not None:
            weak_labels = np.asarray(weak_labels)
            if weak_labels.shape != (n,):
                raise ValueError("weak_labels must have one entry per "
                                 "window")
            self._label_pools = {
                value: np.flatnonzero(weak_labels == value)
                for value in np.unique(weak_labels)
            }
        else:
            self._label_pools = None
        self._weak_labels = weak_labels
        self._mean = windows.mean(axis=0)
        self._scale = windows.std(axis=0)
        self._scale[self._scale == 0] = 1.0
        standardized = (windows - self._mean) / self._scale

        d = self.n_components
        weights = self._rng.normal(0, 1.0 / np.sqrt(length),
                                   size=(length, d))
        self.training_losses = []
        for epoch in range(self.n_epochs):
            order = self._rng.permutation(n)
            epoch_loss, n_batches = 0.0, 0
            # Curriculum: the fraction of hardest negatives admitted
            # grows linearly from 30% to 100%.
            difficulty = (1.0 if not self.curriculum
                          else 0.3 + 0.7 * epoch / max(self.n_epochs - 1, 1))
            for start in range(0, n - 1, self.batch_size):
                batch = order[start:start + self.batch_size]
                if len(batch) < 2:
                    continue
                views_a = np.stack([
                    self._crop(standardized[i]) for i in batch])
                if self._label_pools is not None:
                    partners = [
                        int(self._rng.choice(
                            self._label_pools[self._weak_labels[i]]))
                        for i in batch
                    ]
                    views_b = np.stack([
                        self._crop(standardized[j]) for j in partners])
                else:
                    views_b = np.stack([
                        self._crop(standardized[i]) for i in batch])
                za = views_a @ weights
                zb = views_b @ weights
                logits = za @ zb.T / self.temperature
                if self.curriculum and difficulty < 1.0:
                    # Mask the hardest negatives (largest logits among
                    # off-diagonal entries) early in training.
                    b = len(batch)
                    off = logits.copy()
                    np.fill_diagonal(off, -np.inf)
                    n_keep = max(1, int(difficulty * (b - 1)))
                    for row in range(b):
                        candidates = np.argsort(off[row])  # ascending
                        hard = candidates[n_keep:]
                        hard = hard[hard != row]
                        logits[row, hard] = -np.inf
                logits -= logits.max(axis=1, keepdims=True)
                exp = np.exp(logits)
                softmax = exp / exp.sum(axis=1, keepdims=True)
                b = len(batch)
                targets = np.eye(b)
                epoch_loss += float(
                    -np.log(np.clip(np.diag(softmax), 1e-12, None)).mean())
                n_batches += 1
                # InfoNCE gradient for dot-product similarity.
                delta = (softmax - targets) / (self.temperature * b)
                grad_za = delta @ zb
                grad_zb = delta.T @ za
                gradient = views_a.T @ grad_za + views_b.T @ grad_zb
                weights -= self.learning_rate * gradient
            self.training_losses.append(epoch_loss / max(n_batches, 1))
        self._weights = weights
        self._fitted = True
        return self

    def transform(self, windows):
        """Embed windows, shape ``(n, n_components)``."""
        if not self._fitted:
            raise RuntimeError("fit before transform")
        windows = np.asarray(windows, dtype=float)
        if windows.ndim == 1:
            windows = windows[None, :]
        standardized = (windows - self._mean) / self._scale
        return standardized @ self._weights
