"""Data analytics (paper Sec. II-C): forecasting, anomaly detection and
classification, organized around the five desired characteristics --
automation, generality, robustness, explainability, and resource
efficiency."""

from . import (
    anomaly,
    generative,
    automation,
    classification,
    efficiency,
    explainability,
    forecasting,
    metrics,
    representation,
    robustness,
)

__all__ = [
    "anomaly",
    "generative",
    "automation",
    "classification",
    "efficiency",
    "explainability",
    "forecasting",
    "metrics",
    "representation",
    "robustness",
]
