"""A small fully-connected network with manual backpropagation.

This is the shared neural substrate of the analytics layer: the
autoencoder detectors, the masked pretrainer, and the distillation
students are all instances of this class.  It deliberately supports the
features those consumers need and nothing more:

* arbitrary layer sizes with ``tanh`` hidden activations and a linear
  output,
* mini-batch SGD with momentum,
* **per-sample weights** — the hook the robust detectors use to
  down-weight suspected anomalies during training,
* deterministic behaviour under an explicit ``rng``.
"""

from __future__ import annotations

import numpy as np

from .._validation import check_positive, ensure_rng

__all__ = ["Mlp"]


class Mlp:
    """Multi-layer perceptron trained with squared error.

    Parameters
    ----------
    layer_sizes:
        ``[input, hidden..., output]`` — at least two entries.
    learning_rate / momentum / n_epochs / batch_size:
        SGD hyperparameters.
    rng:
        Seed or generator for weight init and batch shuffling.
    """

    def __init__(self, layer_sizes, *, learning_rate=0.01, momentum=0.9,
                 n_epochs=100, batch_size=64, rng=None):
        sizes = [int(s) for s in layer_sizes]
        if len(sizes) < 2 or any(s < 1 for s in sizes):
            raise ValueError(f"invalid layer sizes {layer_sizes!r}")
        self.layer_sizes = sizes
        self.learning_rate = float(check_positive(learning_rate,
                                                  "learning_rate"))
        self.momentum = float(momentum)
        self.n_epochs = int(check_positive(n_epochs, "n_epochs"))
        self.batch_size = int(check_positive(batch_size, "batch_size"))
        self._rng = ensure_rng(rng)

        self.weights = []
        self.biases = []
        for fan_in, fan_out in zip(sizes, sizes[1:]):
            scale = np.sqrt(2.0 / (fan_in + fan_out))
            self.weights.append(self._rng.normal(0.0, scale,
                                                 size=(fan_in, fan_out)))
            self.biases.append(np.zeros(fan_out))
        self._velocity_w = [np.zeros_like(w) for w in self.weights]
        self._velocity_b = [np.zeros_like(b) for b in self.biases]
        self.training_losses = []

    @property
    def n_parameters(self):
        return int(sum(w.size for w in self.weights)
                   + sum(b.size for b in self.biases))

    # -- forward / backward ------------------------------------------------

    def forward(self, inputs):
        """Forward pass; returns (output, per-layer activations)."""
        activations = [np.asarray(inputs, dtype=float)]
        current = activations[0]
        last = len(self.weights) - 1
        for index, (w, b) in enumerate(zip(self.weights, self.biases)):
            pre = current @ w + b
            current = pre if index == last else np.tanh(pre)
            activations.append(current)
        return current, activations

    def predict(self, inputs):
        """Forward pass returning only the output."""
        output, _ = self.forward(inputs)
        return output

    def _backward(self, activations, output_gradient):
        """Accumulate gradients given d(loss)/d(output)."""
        gradients_w = [None] * len(self.weights)
        gradients_b = [None] * len(self.biases)
        delta = output_gradient
        for index in range(len(self.weights) - 1, -1, -1):
            gradients_w[index] = activations[index].T @ delta
            gradients_b[index] = delta.sum(axis=0)
            if index > 0:
                delta = delta @ self.weights[index].T
                delta = delta * (1.0 - activations[index] ** 2)  # tanh'
        return gradients_w, gradients_b

    # -- training ---------------------------------------------------------------

    def fit(self, inputs, targets, sample_weight=None):
        """Train with (weighted) mean squared error.

        Parameters
        ----------
        inputs / targets:
            Arrays of shape ``(n, input_dim)`` / ``(n, output_dim)``.
        sample_weight:
            Optional non-negative per-sample weights (robust training
            sets suspected outliers to zero).
        """
        inputs = np.asarray(inputs, dtype=float)
        targets = np.asarray(targets, dtype=float)
        if inputs.ndim != 2 or targets.ndim != 2:
            raise ValueError("inputs and targets must be 2-D")
        if inputs.shape[0] != targets.shape[0]:
            raise ValueError("inputs and targets must have the same rows")
        n = inputs.shape[0]
        if sample_weight is None:
            sample_weight = np.ones(n)
        else:
            sample_weight = np.asarray(sample_weight, dtype=float)
            if sample_weight.shape != (n,):
                raise ValueError("sample_weight must be 1-D of length n")
            if np.any(sample_weight < 0):
                raise ValueError("sample_weight must be non-negative")

        for _ in range(self.n_epochs):
            order = self._rng.permutation(n)
            epoch_loss = 0.0
            for start in range(0, n, self.batch_size):
                batch = order[start:start + self.batch_size]
                x = inputs[batch]
                y = targets[batch]
                w = sample_weight[batch]
                output, activations = self.forward(x)
                error = output - y
                weighted = error * w[:, None]
                batch_weight = max(w.sum(), 1e-12)
                epoch_loss += float((weighted * error).sum())
                gradient = 2.0 * weighted / batch_weight
                gradients_w, gradients_b = self._backward(activations,
                                                          gradient)
                for index in range(len(self.weights)):
                    self._velocity_w[index] = (
                        self.momentum * self._velocity_w[index]
                        - self.learning_rate * gradients_w[index]
                    )
                    self._velocity_b[index] = (
                        self.momentum * self._velocity_b[index]
                        - self.learning_rate * gradients_b[index]
                    )
                    self.weights[index] += self._velocity_w[index]
                    self.biases[index] += self._velocity_b[index]
            total_weight = max(sample_weight.sum(), 1e-12)
            self.training_losses.append(epoch_loss / total_weight)
        return self
