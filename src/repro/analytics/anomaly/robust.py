"""Robust autoencoder detection on contaminated training data [34, 35].

Classical unsupervised detectors implicitly assume clean training data;
the paper stresses that this "is rarely available in practice" and
covers detectors that stay effective when the training series already
contains anomalies.  :class:`RobustAutoencoderDetector` implements the
trimming mechanism those works share: during training, the windows with
the largest current reconstruction error — the likely anomalies — are
excluded (or down-weighted) from the gradient, so the model learns the
*normal* pattern instead of memorizing the outliers.

A short warm-up phase trains on everything (errors are uninformative at
initialization); trimming then tightens linearly to the target rate.
"""

from __future__ import annotations

import numpy as np

from ..._validation import check_fraction
from .autoencoder import AutoencoderDetector

__all__ = ["RobustAutoencoderDetector"]


class RobustAutoencoderDetector(AutoencoderDetector):
    """Trimmed-loss autoencoder for noisy training data.

    Parameters
    ----------
    trim_fraction:
        *Ceiling* on the fraction of windows excluded per epoch; set at
        or above the expected contamination rate.  The actual exclusion
        is adaptive (see ``mad_threshold``), so clean data is left
        almost untouched.
    mad_threshold:
        A window is trimmed when its error exceeds
        ``median + mad_threshold * MAD`` of the epoch's error
        distribution — a robust outlyingness test that trims heavily on
        contaminated data and barely at all on clean data.
    warmup_epochs:
        Epochs of untrimmed training before trimming starts (errors are
        uninformative at initialization).
    soft:
        When True, down-weight trimmed windows to ``soft_weight``
        instead of excluding them outright.
    """

    def __init__(self, window=24, n_hidden=32, n_latent=4, *,
                 trim_fraction=0.25, mad_threshold=3.5, warmup_epochs=5,
                 soft=False, soft_weight=0.1, **kwargs):
        super().__init__(window, n_hidden, n_latent, **kwargs)
        self.trim_fraction = check_fraction(trim_fraction, "trim_fraction",
                                            inclusive_high=False)
        self.mad_threshold = float(mad_threshold)
        self.warmup_epochs = int(warmup_epochs)
        self.soft = bool(soft)
        self.soft_weight = check_fraction(soft_weight, "soft_weight")

    def _sample_weights(self, flat, epoch):
        n = flat.shape[0]
        if epoch < self.warmup_epochs or self.trim_fraction == 0:
            return np.ones(n)
        reconstruction = self._network.predict(flat)
        errors = ((reconstruction - flat) ** 2).mean(axis=1)
        median = np.median(errors)
        mad = np.median(np.abs(errors - median))
        if mad <= 0:
            return np.ones(n)
        cutoff = median + self.mad_threshold * mad
        trimmed = errors > cutoff
        # Never trim more than the configured ceiling.
        max_trim = int(self.trim_fraction * n)
        if trimmed.sum() > max_trim and max_trim > 0:
            order = np.argsort(-errors)
            trimmed = np.zeros(n, dtype=bool)
            trimmed[order[:max_trim]] = True
        weights = np.ones(n)
        weights[trimmed] = self.soft_weight if self.soft else 0.0
        return weights
