"""Spectral-residual anomaly detection (the fast classical baseline).

A training-free detector used as the reference point in the detection
experiments: the log-amplitude spectrum of the series is compared to its
local average; what remains (the *spectral residual*) highlights salient
— i.e. anomalous — time points after transforming back.
"""

from __future__ import annotations

import numpy as np

from ..._validation import check_positive
from ...datatypes import TimeSeries

__all__ = ["SpectralResidualDetector"]


class SpectralResidualDetector:
    """Saliency scores via the spectral-residual transform.

    Parameters
    ----------
    window:
        Width of the moving average applied to the log spectrum.
    score_window:
        Width of the local mean used to normalize output saliency.
    """

    def __init__(self, window=21, score_window=21):
        self.window = int(check_positive(window, "window"))
        self.score_window = int(check_positive(score_window,
                                               "score_window"))

    def _saliency(self, values):
        n = len(values)
        spectrum = np.fft.fft(values)
        amplitude = np.abs(spectrum)
        amplitude[amplitude == 0] = 1e-12
        log_amplitude = np.log(amplitude)
        kernel = np.ones(self.window) / self.window
        averaged = np.convolve(log_amplitude, kernel, mode="same")
        residual = log_amplitude - averaged
        phase = spectrum / amplitude
        saliency = np.abs(np.fft.ifft(np.exp(residual) * phase))
        return saliency[:n]

    def score(self, series):
        """Per-timestep saliency, max-aggregated over channels."""
        if not isinstance(series, TimeSeries):
            raise TypeError("series must be a TimeSeries")
        if not series.is_complete():
            raise ValueError("detector requires complete data")
        values = series.values
        scores = np.zeros(len(series))
        for channel in range(values.shape[1]):
            saliency = self._saliency(values[:, channel])
            kernel = np.ones(self.score_window) / self.score_window
            local_mean = np.convolve(saliency, kernel, mode="same")
            local_mean[local_mean == 0] = 1e-12
            normalized = (saliency - local_mean) / local_mean
            scores = np.maximum(scores, normalized)
        return scores

    def fit(self, series):
        """No-op (training-free); present for API symmetry."""
        return self
