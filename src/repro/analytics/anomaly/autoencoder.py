"""Autoencoder-based time-series anomaly detection.

The base detector of the paper's robustness line ([34, 35, 41, 42]):
slide fixed-length windows over the series, train an autoencoder to
reconstruct them, and score each timestep by the reconstruction error of
the windows covering it.  Anomalies reconstruct poorly because the
bottleneck only has capacity for the dominant (normal) patterns.
"""

from __future__ import annotations

import numpy as np

from ..._validation import check_positive, ensure_rng
from ...datatypes import TimeSeries
from .._mlp import Mlp

__all__ = ["AutoencoderDetector"]


class AutoencoderDetector:
    """Window autoencoder with reconstruction-error scoring.

    Parameters
    ----------
    window:
        Window length (timesteps per training example).
    n_hidden / n_latent:
        Sizes of the hidden and bottleneck layers.
    stride:
        Window stride during training (scoring always uses stride 1).
    include_differences:
        Append the window's first differences to the feature vector.
        Level anomalies show up in the raw values; *shape* anomalies
        (flatlines, level shifts) show up in the differences — with both
        present, all three anomaly kinds of the experiments are visible
        to the reconstruction error.
    """

    def __init__(self, window=24, n_hidden=32, n_latent=4, *, stride=1,
                 n_epochs=60, learning_rate=0.005, batch_size=64,
                 include_differences=True, rng=None):
        self.include_differences = bool(include_differences)
        self.window = int(check_positive(window, "window"))
        self.n_hidden = int(check_positive(n_hidden, "n_hidden"))
        self.n_latent = int(check_positive(n_latent, "n_latent"))
        self.stride = int(check_positive(stride, "stride"))
        self.n_epochs = int(check_positive(n_epochs, "n_epochs"))
        self.learning_rate = float(learning_rate)
        self.batch_size = int(batch_size)
        self._rng = ensure_rng(rng)
        self._fitted = False

    # -- helpers -----------------------------------------------------------

    def _window_matrix(self, series, stride):
        matrix = series.window_matrix(self.window, stride)
        flat = matrix.reshape(matrix.shape[0], -1)
        if self.include_differences:
            differences = np.diff(matrix, axis=1)
            flat = np.concatenate(
                [flat, differences.reshape(matrix.shape[0], -1)], axis=1
            )
        return flat

    def feature_count(self, n_channels):
        """Length of the window feature vector for ``n_channels`` data."""
        count = self.window * n_channels
        if self.include_differences:
            count += (self.window - 1) * n_channels
        return count

    def _standardize(self, flat):
        return (flat - self._mean) / self._scale

    def _build_network(self, n_inputs):
        return Mlp(
            [n_inputs, self.n_hidden, self.n_latent, self.n_hidden,
             n_inputs],
            learning_rate=self.learning_rate,
            n_epochs=1,  # epochs are driven by the outer loop
            batch_size=self.batch_size,
            rng=self._rng,
        )

    def _sample_weights(self, flat, epoch):
        """Per-window training weights; the robust subclass overrides."""
        return np.ones(flat.shape[0])

    # -- API ------------------------------------------------------------------

    def fit(self, series):
        """Train the autoencoder on (possibly contaminated) data."""
        if not isinstance(series, TimeSeries):
            raise TypeError("series must be a TimeSeries")
        if not series.is_complete():
            raise ValueError("detector requires complete data; impute first")
        if len(series) < self.window + 1:
            raise ValueError(
                f"series of length {len(series)} shorter than window "
                f"{self.window}"
            )
        flat = self._window_matrix(series, self.stride)
        self._mean = flat.mean(axis=0)
        self._scale = flat.std(axis=0)
        self._scale[self._scale == 0] = 1.0
        standardized = self._standardize(flat)

        self._network = self._build_network(standardized.shape[1])
        for epoch in range(self.n_epochs):
            weights = self._sample_weights(standardized, epoch)
            self._network.fit(standardized, standardized,
                              sample_weight=weights)
        self._n_channels = series.n_channels
        self._fitted = True
        return self

    def window_errors(self, series):
        """Per-window reconstruction MSE (stride 1)."""
        if not self._fitted:
            raise RuntimeError("fit before scoring")
        flat = self._standardize(self._window_matrix(series, 1))
        reconstruction = self._network.predict(flat)
        return ((reconstruction - flat) ** 2).mean(axis=1)

    def score(self, series):
        """Per-timestep anomaly score.

        Uses the *position-aware* reconstruction error: the error a
        timestep receives is the error of its own position inside each
        covering window (averaged over windows and summed over channels
        and, when enabled, the difference features touching it).  This
        localizes anomalies instead of smearing a spike's error across
        the whole window.
        """
        return self.feature_errors(series).sum(axis=1)

    def feature_errors(self, series):
        """Per-timestep, per-channel reconstruction error.

        The input to the post-hoc explainability metric of [35]: a
        detector is explainable when high errors localize on the
        channels/timesteps that are actually anomalous.
        """
        if not self._fitted:
            raise RuntimeError("fit before scoring")
        flat = self._standardize(self._window_matrix(series, 1))
        reconstruction = self._network.predict(flat)
        squared = (reconstruction - flat) ** 2
        n_raw = self.window * self._n_channels
        per_step = squared[:, :n_raw].reshape(
            squared.shape[0], self.window, self._n_channels)
        if self.include_differences:
            # A difference feature at window position i involves the
            # timesteps i and i+1; attribute its error to both.
            diff_block = squared[:, n_raw:].reshape(
                squared.shape[0], self.window - 1, self._n_channels)
            per_step = per_step.copy()
            per_step[:, :-1] += 0.5 * diff_block
            per_step[:, 1:] += 0.5 * diff_block
        n = len(series)
        totals = np.zeros((n, self._n_channels))
        counts = np.zeros(n)
        for start in range(per_step.shape[0]):
            totals[start:start + self.window] += per_step[start]
            counts[start:start + self.window] += 1
        counts[counts == 0] = 1
        return totals / counts[:, None]
