"""Spatio-temporal anomaly detection on correlated sensors.

A purely temporal detector cannot catch a sensor whose readings are
*individually plausible but spatially inconsistent* — a radar reporting
free flow while every neighbouring sensor sits in a jam.  The
spatio-temporal detector scores each sensor against the **consensus of
its graph neighbours**:

1. per sensor, fit a ridge regression predicting its value from its
   neighbours' simultaneous values (on clean training data);
2. at test time, the anomaly score is the standardized deviation
   between the sensor's reading and its neighbour-predicted value.

Combined (maximum) with any temporal detector's score, this covers both
failure axes the paper's robustness discussion cares about.
"""

from __future__ import annotations

import numpy as np

from ..._validation import check_non_negative
from ...datatypes import CorrelatedTimeSeries
from ..forecasting.linear import ridge_fit

__all__ = ["GraphDeviationDetector"]


class GraphDeviationDetector:
    """Neighbour-consensus anomaly scoring on a sensor graph.

    Parameters
    ----------
    alpha:
        Ridge strength of the per-sensor neighbour regressions.
    min_neighbors:
        Sensors with fewer neighbours fall back to the network-wide
        mean as their consensus predictor.
    """

    def __init__(self, alpha=1.0, *, min_neighbors=1):
        self.alpha = float(check_non_negative(alpha, "alpha"))
        self.min_neighbors = int(min_neighbors)
        self._fitted = False

    def fit(self, dataset):
        """Learn each sensor's neighbour-consensus model."""
        if not isinstance(dataset, CorrelatedTimeSeries):
            raise TypeError("dataset must be a CorrelatedTimeSeries")
        if dataset.missing_fraction() > 0:
            raise ValueError("detector requires complete data; impute "
                             "first")
        values = dataset.values
        n_sensors = dataset.n_sensors
        self._models = []
        self._neighbors = []
        self._residual_scale = np.ones(n_sensors)
        for sensor in range(n_sensors):
            neighbors = dataset.neighbors(sensor)
            self._neighbors.append(neighbors)
            if len(neighbors) < self.min_neighbors:
                mean = values[:, sensor].mean()
                self._models.append(("mean", mean))
                residuals = values[:, sensor] - mean
            else:
                features = values[:, neighbors]
                target = values[:, sensor][:, None]
                weights, intercept = ridge_fit(features, target,
                                               self.alpha)
                self._models.append(("ridge", (weights, intercept)))
                residuals = (values[:, sensor]
                             - (features @ weights + intercept)[:, 0])
            scale = residuals.std()
            self._residual_scale[sensor] = scale if scale > 0 else 1.0
        self._fitted = True
        return self

    def _predict_sensor(self, values, sensor):
        kind, model = self._models[sensor]
        if kind == "mean":
            return np.full(len(values), model)
        weights, intercept = model
        return (values[:, self._neighbors[sensor]] @ weights
                + intercept)[:, 0]

    def score_matrix(self, dataset):
        """Per-(timestep, sensor) standardized deviation scores."""
        if not self._fitted:
            raise RuntimeError("fit before scoring")
        if not isinstance(dataset, CorrelatedTimeSeries):
            raise TypeError("dataset must be a CorrelatedTimeSeries")
        values = dataset.values
        if values.shape[1] != len(self._models):
            raise ValueError("sensor count differs from training data")
        scores = np.zeros_like(values)
        for sensor in range(values.shape[1]):
            predicted = self._predict_sensor(values, sensor)
            scores[:, sensor] = np.abs(
                values[:, sensor] - predicted
            ) / self._residual_scale[sensor]
        return scores

    def score(self, dataset):
        """Per-timestep score: the worst sensor deviation at each step."""
        return self.score_matrix(dataset).max(axis=1)

    def flag_sensors(self, dataset, threshold=4.0):
        """Sensors whose *median* deviation exceeds the threshold —
        persistent faults (miscalibration, stuck values), as opposed to
        transient events that move all neighbours together.

        A faulty sensor also breaks its neighbours' consensus models
        (they regress on it), so blame is attributed by *local argmax*:
        a sensor is flagged only if its median deviation also exceeds
        every neighbour's — the fault is where the deviation peaks.
        """
        matrix = self.score_matrix(dataset)
        medians = np.median(matrix, axis=0)
        flagged = []
        for sensor in np.flatnonzero(medians > threshold):
            neighbors = self._neighbors[sensor]
            if len(neighbors) == 0 or \
                    medians[sensor] >= medians[neighbors].max():
                flagged.append(int(sensor))
        return np.asarray(flagged, dtype=int)
