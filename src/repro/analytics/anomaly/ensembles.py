"""Autoencoder ensembles for outlier detection [41, 42].

Two ensemble mechanisms from the paper's robustness discussion:

* :class:`RandomizedEnsembleDetector` — the recurrent-autoencoder-
  ensemble recipe of [41]: many weak autoencoders, each diversified by
  random hyperparameters (bottleneck size), random training subsamples,
  and random *input skip masks* (features zeroed per member, the
  feed-forward analogue of sparsely-connected skip links).  Scores are
  aggregated by the median, which cancels the members' individual
  mistakes.
* :class:`DiversityDrivenEnsembleDetector` — the diversity-driven
  selection of [42]: train a larger candidate pool, then greedily keep
  members whose score vectors correlate least with the already-selected
  set, so the retained ensemble is *diverse by construction* rather
  than by luck.
"""

from __future__ import annotations

import numpy as np

from ..._validation import check_positive, ensure_rng
from ...datatypes import TimeSeries
from .autoencoder import AutoencoderDetector

__all__ = ["RandomizedEnsembleDetector", "DiversityDrivenEnsembleDetector"]


class _MaskedDetector(AutoencoderDetector):
    """An autoencoder member whose input features are randomly skipped."""

    def __init__(self, mask, **kwargs):
        super().__init__(**kwargs)
        self._mask = (np.asarray(mask, dtype=float)
                      if mask is not None else None)

    def _standardize(self, flat):
        standardized = super()._standardize(flat)
        if self._mask is None:
            return standardized
        return standardized * self._mask


class RandomizedEnsembleDetector:
    """Median-aggregated ensemble of randomized autoencoders [41].

    Parameters
    ----------
    n_members:
        Ensemble size.
    window:
        Window length shared by all members.
    subsample:
        Fraction of training windows each member sees.
    skip_probability:
        Probability of zeroing each input feature for a member.
    """

    def __init__(self, n_members=8, window=24, *, subsample=0.8,
                 skip_probability=0.2, n_epochs=40, rng=None):
        self.n_members = int(check_positive(n_members, "n_members"))
        self.window = int(check_positive(window, "window"))
        self.subsample = float(subsample)
        self.skip_probability = float(skip_probability)
        self.n_epochs = int(n_epochs)
        self._rng = ensure_rng(rng)
        self.members = []

    def _spawn_member(self, n_channels):
        latent = int(self._rng.integers(2, 7))
        hidden = int(self._rng.integers(16, 49))
        member = _MaskedDetector(
            None,
            window=self.window, n_hidden=hidden, n_latent=latent,
            n_epochs=self.n_epochs, rng=self._rng,
        )
        n_features = member.feature_count(n_channels)
        mask = (self._rng.random(n_features)
                >= self.skip_probability).astype(float)
        if not mask.any():
            mask[self._rng.integers(0, n_features)] = 1.0
        member._mask = mask
        return member

    def fit(self, series):
        if not isinstance(series, TimeSeries):
            raise TypeError("series must be a TimeSeries")
        self.members = []
        for _ in range(self.n_members):
            member = self._spawn_member(series.n_channels)
            subsampled = self._subsample_series(series)
            member.fit(subsampled)
            self.members.append(member)
        return self

    def _subsample_series(self, series):
        """Contiguous random crop covering ``subsample`` of the series."""
        if self.subsample >= 1.0:
            return series
        length = len(series)
        crop = max(self.window + 1, int(self.subsample * length))
        if crop >= length:
            return series
        start = int(self._rng.integers(0, length - crop))
        return series.slice(start, start + crop)

    def score(self, series):
        """Median member score per timestep."""
        if not self.members:
            raise RuntimeError("fit before scoring")
        scores = np.stack([m.score(series) for m in self.members])
        return np.median(scores, axis=0)


class DiversityDrivenEnsembleDetector(RandomizedEnsembleDetector):
    """Greedy diversity-based member selection [42].

    Trains ``pool_size`` candidates, then keeps ``n_members`` whose
    training-score correlations with the already-kept members are
    smallest (the first kept member is the pool's most typical one).
    """

    def __init__(self, n_members=5, pool_size=12, window=24, **kwargs):
        super().__init__(n_members=n_members, window=window, **kwargs)
        if pool_size < n_members:
            raise ValueError("pool_size must be >= n_members")
        self.pool_size = int(pool_size)

    def fit(self, series):
        if not isinstance(series, TimeSeries):
            raise TypeError("series must be a TimeSeries")
        pool = []
        score_rows = []
        for _ in range(self.pool_size):
            member = self._spawn_member(series.n_channels)
            member.fit(self._subsample_series(series))
            pool.append(member)
            score_rows.append(member.score(series))
        scores = np.stack(score_rows)

        # Correlation matrix of member score vectors.
        centered = scores - scores.mean(axis=1, keepdims=True)
        norms = np.linalg.norm(centered, axis=1)
        norms[norms == 0] = 1.0
        unit = centered / norms[:, None]
        correlation = unit @ unit.T

        # Start from the most "central" member, then add the candidate
        # least correlated with the current selection.
        selected = [int(np.argmax(correlation.sum(axis=1)))]
        while len(selected) < self.n_members:
            remaining = [i for i in range(self.pool_size)
                         if i not in selected]
            redundancy = [
                max(correlation[i, j] for j in selected) for i in remaining
            ]
            selected.append(remaining[int(np.argmin(redundancy))])
        self.members = [pool[i] for i in selected]
        self.selected_indices_ = selected
        return self
