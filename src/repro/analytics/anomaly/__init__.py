"""Anomaly detection: autoencoders, robust training, ensembles, and the
spectral-residual baseline."""

from .autoencoder import AutoencoderDetector
from .ensembles import DiversityDrivenEnsembleDetector, RandomizedEnsembleDetector
from .robust import RobustAutoencoderDetector
from .spatial import GraphDeviationDetector
from .spectral import SpectralResidualDetector

__all__ = [
    "AutoencoderDetector",
    "DiversityDrivenEnsembleDetector",
    "GraphDeviationDetector",
    "RandomizedEnsembleDetector",
    "RobustAutoencoderDetector",
    "SpectralResidualDetector",
]
