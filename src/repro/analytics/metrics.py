"""Evaluation metrics for forecasting and anomaly detection.

Shared by the analytics layer, the benchmarking harness (§II-C,
"benchmarking") and every experiment in EXPERIMENTS.md.  Implemented
from scratch (no sklearn available) with the exact conventions stated in
each docstring.
"""

from __future__ import annotations

import numpy as np

from .._validation import as_float_array

__all__ = [
    "mae",
    "rmse",
    "mape",
    "smape",
    "pinball_loss",
    "crps_from_samples",
    "precision_recall_f1",
    "best_f1",
    "roc_auc",
    "pr_auc",
    "point_adjusted_scores",
]


def _paired(y_true, y_pred):
    true = np.asarray(y_true, dtype=float).ravel()
    predicted = np.asarray(y_pred, dtype=float).ravel()
    if true.shape != predicted.shape:
        raise ValueError(
            f"shape mismatch: {true.shape} vs {predicted.shape}"
        )
    if true.size == 0:
        raise ValueError("empty inputs")
    return true, predicted


def mae(y_true, y_pred):
    """Mean absolute error."""
    true, predicted = _paired(y_true, y_pred)
    return float(np.mean(np.abs(true - predicted)))


def rmse(y_true, y_pred):
    """Root mean squared error."""
    true, predicted = _paired(y_true, y_pred)
    return float(np.sqrt(np.mean((true - predicted) ** 2)))


def mape(y_true, y_pred, *, epsilon=1e-8):
    """Mean absolute percentage error (in percent, zero-safe)."""
    true, predicted = _paired(y_true, y_pred)
    return float(
        100.0 * np.mean(np.abs(true - predicted)
                        / np.maximum(np.abs(true), epsilon))
    )


def smape(y_true, y_pred, *, epsilon=1e-8):
    """Symmetric MAPE (in percent)."""
    true, predicted = _paired(y_true, y_pred)
    denominator = np.maximum(
        (np.abs(true) + np.abs(predicted)) / 2.0, epsilon
    )
    return float(100.0 * np.mean(np.abs(true - predicted) / denominator))


def pinball_loss(y_true, y_pred, quantile):
    """Pinball (quantile) loss at the given quantile level."""
    if not 0.0 < quantile < 1.0:
        raise ValueError(f"quantile must be in (0, 1), got {quantile!r}")
    true, predicted = _paired(y_true, y_pred)
    error = true - predicted
    return float(np.mean(np.maximum(quantile * error,
                                    (quantile - 1.0) * error)))


def crps_from_samples(y_true, sample_matrix):
    """Continuous ranked probability score from predictive samples.

    Uses the identity ``CRPS = E|S - y| - 0.5 E|S - S'|`` averaged over
    observations.  ``sample_matrix`` has one row of samples per
    observation.
    """
    true = np.asarray(y_true, dtype=float).ravel()
    samples = as_float_array(sample_matrix, "sample_matrix", ndim=2)
    if samples.shape[0] != true.shape[0]:
        raise ValueError("one sample row per observation required")
    term_one = np.abs(samples - true[:, None]).mean(axis=1)
    sorted_samples = np.sort(samples, axis=1)
    n = samples.shape[1]
    # E|S - S'| via the order-statistics identity.
    weights = 2 * np.arange(1, n + 1) - n - 1
    term_two = (sorted_samples * weights).sum(axis=1) / (n * n)
    return float(np.mean(term_one - term_two))


# -- detection metrics ----------------------------------------------------


def _binary(labels):
    array = np.asarray(labels).ravel().astype(bool)
    if array.size == 0:
        raise ValueError("empty labels")
    return array


def precision_recall_f1(labels, predictions):
    """Precision, recall and F1 of boolean predictions."""
    truth = _binary(labels)
    predicted = _binary(predictions)
    if truth.shape != predicted.shape:
        raise ValueError("labels and predictions must align")
    true_positive = int(np.sum(truth & predicted))
    precision = (true_positive / predicted.sum()) if predicted.any() else 0.0
    recall = (true_positive / truth.sum()) if truth.any() else 0.0
    if precision + recall == 0:
        return 0.0, 0.0, 0.0
    f1 = 2 * precision * recall / (precision + recall)
    return float(precision), float(recall), float(f1)


def best_f1(labels, scores):
    """Best F1 over all score thresholds (the usual detector metric).

    Returns ``(f1, threshold)``.
    """
    truth = _binary(labels)
    values = np.asarray(scores, dtype=float).ravel()
    if truth.shape != values.shape:
        raise ValueError("labels and scores must align")
    order = np.argsort(-values)
    sorted_truth = truth[order]
    cumulative_tp = np.cumsum(sorted_truth)
    k = np.arange(1, len(values) + 1)
    precision = cumulative_tp / k
    recall = cumulative_tp / max(truth.sum(), 1)
    denominator = precision + recall
    f1 = np.where(denominator > 0, 2 * precision * recall
                  / np.maximum(denominator, 1e-12), 0.0)
    best = int(np.argmax(f1))
    return float(f1[best]), float(values[order][best])


def roc_auc(labels, scores):
    """Area under the ROC curve (probability of correct ranking)."""
    truth = _binary(labels)
    values = np.asarray(scores, dtype=float).ravel()
    positives = values[truth]
    negatives = values[~truth]
    if len(positives) == 0 or len(negatives) == 0:
        raise ValueError("need both positive and negative labels")
    # Rank-sum formulation with tie handling.
    combined = np.concatenate([positives, negatives])
    order = np.argsort(combined)
    ranks = np.empty(len(combined))
    sorted_values = combined[order]
    i = 0
    while i < len(sorted_values):
        j = i
        while (j + 1 < len(sorted_values)
               and sorted_values[j + 1] == sorted_values[i]):
            j += 1
        ranks[order[i:j + 1]] = (i + j) / 2.0 + 1.0
        i = j + 1
    rank_sum = ranks[: len(positives)].sum()
    n_pos, n_neg = len(positives), len(negatives)
    return float(
        (rank_sum - n_pos * (n_pos + 1) / 2.0) / (n_pos * n_neg)
    )


def pr_auc(labels, scores):
    """Area under the precision-recall curve (average precision)."""
    truth = _binary(labels)
    values = np.asarray(scores, dtype=float).ravel()
    if not truth.any():
        raise ValueError("need at least one positive label")
    order = np.argsort(-values)
    sorted_truth = truth[order]
    cumulative_tp = np.cumsum(sorted_truth)
    precision = cumulative_tp / np.arange(1, len(values) + 1)
    # Average precision: mean of precision at each positive hit.
    return float(precision[sorted_truth].sum() / truth.sum())


def point_adjusted_scores(labels, scores):
    """Point-adjust protocol: within each true anomaly segment, every
    point inherits the segment's maximum score.

    Standard practice in the time-series anomaly-detection literature:
    detecting any point of a collective anomaly counts as detecting the
    whole event.
    """
    truth = _binary(labels)
    values = np.asarray(scores, dtype=float).ravel().copy()
    if truth.shape != values.shape:
        raise ValueError("labels and scores must align")
    index = 0
    while index < len(truth):
        if truth[index]:
            stop = index
            while stop + 1 < len(truth) and truth[stop + 1]:
                stop += 1
            values[index:stop + 1] = values[index:stop + 1].max()
            index = stop + 1
        else:
            index += 1
    return values
