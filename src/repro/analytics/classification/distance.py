"""Distance-based time-series classification: banded DTW + 1-NN.

The classical accuracy reference of the time-series classification
literature and the teacher-free baseline of the LightTS experiments:
dynamic time warping with a Sakoe-Chiba band, wrapped in a k-nearest-
neighbour classifier.
"""

from __future__ import annotations

import numpy as np

from ..._validation import check_positive

__all__ = ["dtw_distance", "KnnDtwClassifier"]


def dtw_distance(first, second, *, band=None):
    """Dynamic-time-warping distance between two 1-D sequences.

    Parameters
    ----------
    first / second:
        1-D arrays (lengths may differ).
    band:
        Sakoe-Chiba band half-width; ``None`` means unconstrained.
        Tighter bands are faster and regularize against pathological
        warpings.
    """
    a = np.asarray(first, dtype=float).ravel()
    b = np.asarray(second, dtype=float).ravel()
    if a.size == 0 or b.size == 0:
        raise ValueError("sequences must be non-empty")
    n, m = len(a), len(b)
    if band is None:
        band = max(n, m)
    band = max(int(band), abs(n - m))

    previous = np.full(m + 1, np.inf)
    previous[0] = 0.0
    for i in range(1, n + 1):
        current = np.full(m + 1, np.inf)
        low = max(1, i - band)
        high = min(m, i + band)
        for j in range(low, high + 1):
            cost = (a[i - 1] - b[j - 1]) ** 2
            current[j] = cost + min(previous[j], current[j - 1],
                                    previous[j - 1])
        previous = current
    return float(np.sqrt(previous[m]))


class KnnDtwClassifier:
    """k-nearest-neighbour classification under (banded) DTW.

    Parameters
    ----------
    n_neighbors:
        Votes per prediction.
    band_fraction:
        Sakoe-Chiba band as a fraction of the series length.
    """

    def __init__(self, n_neighbors=1, band_fraction=0.1):
        self.n_neighbors = int(check_positive(n_neighbors, "n_neighbors"))
        if not 0.0 < band_fraction <= 1.0:
            raise ValueError(
                f"band_fraction must be in (0, 1], got {band_fraction!r}"
            )
        self.band_fraction = float(band_fraction)
        self._fitted = False

    def fit(self, X, y):
        """Store the training examples (lazy learner)."""
        X = np.asarray(X, dtype=float)
        y = np.asarray(y)
        if X.ndim != 2:
            raise ValueError("X must be 2-D (examples x timesteps)")
        if len(X) != len(y):
            raise ValueError("X and y must align")
        if len(X) < self.n_neighbors:
            raise ValueError("need at least n_neighbors training examples")
        self._X = X.copy()
        self._y = y.copy()
        self._band = max(1, int(self.band_fraction * X.shape[1]))
        self._fitted = True
        return self

    def predict(self, X):
        """Predict labels for rows of ``X``."""
        if not self._fitted:
            raise RuntimeError("fit before predict")
        X = np.asarray(X, dtype=float)
        if X.ndim == 1:
            X = X[None, :]
        predictions = []
        for row in X:
            distances = np.array([
                dtw_distance(row, train, band=self._band)
                for train in self._X
            ])
            nearest = np.argsort(distances)[: self.n_neighbors]
            votes = self._y[nearest]
            values, counts = np.unique(votes, return_counts=True)
            predictions.append(values[int(np.argmax(counts))])
        return np.asarray(predictions)

    def score(self, X, y):
        """Mean accuracy on ``(X, y)``."""
        predictions = self.predict(X)
        return float(np.mean(predictions == np.asarray(y)))
