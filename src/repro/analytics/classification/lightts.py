"""LightTS: lightweight classification via adaptive ensemble
distillation [47].

The pipeline the paper describes: a large, accurate *teacher ensemble*
is distilled into a small *student* whose weights are quantized to fit
an edge-device memory budget.

* Teacher — several :class:`RocketClassifier` members of different
  sizes; members are weighted *adaptively* by held-out accuracy, so a
  weak member cannot poison the soft labels (the "adaptive ensemble"
  part of LightTS).
* Student — a softmax-regression on a much smaller random-kernel
  feature map, trained on the teacher's soft labels (cross-entropy),
  then quantized with per-class scales.
* ``fit_for_budget`` picks the largest bit-width whose storage fits a
  byte budget — the "adapting quantization levels to memory
  limitations" behaviour the paper highlights.
"""

from __future__ import annotations

import numpy as np

from ..._validation import check_fraction, check_positive, ensure_rng
from ..efficiency.quantization import QuantizedLinear, model_size_bytes
from .rocket import RocketClassifier, RocketFeatures

__all__ = ["LightTsDistiller"]


class LightTsDistiller:
    """Distill a rocket-classifier ensemble into a tiny quantized student.

    Parameters
    ----------
    teacher_sizes:
        Kernel counts of the teacher ensemble members.
    student_kernels:
        Kernel count of the student's feature map (much smaller).
    bits:
        Weight bit-width of the quantized student.
    temperature:
        Softmax temperature used for the teacher's soft labels.
    holdout_fraction:
        Share of training data used to weight the teacher members.
    """

    def __init__(self, teacher_sizes=(150, 200, 250), student_kernels=20,
                 *, bits=8, temperature=2.0, holdout_fraction=0.25,
                 n_epochs=150, learning_rate=0.5, rng=None):
        if not teacher_sizes:
            raise ValueError("need at least one teacher member")
        self.teacher_sizes = tuple(int(s) for s in teacher_sizes)
        self.student_kernels = int(check_positive(student_kernels,
                                                  "student_kernels"))
        self.bits = int(bits)
        self.temperature = float(check_positive(temperature, "temperature"))
        self.holdout_fraction = check_fraction(
            holdout_fraction, "holdout_fraction",
            inclusive_low=False, inclusive_high=False)
        self.n_epochs = int(check_positive(n_epochs, "n_epochs"))
        self.learning_rate = float(learning_rate)
        self._rng = ensure_rng(rng)
        self._fitted = False

    # -- teacher -----------------------------------------------------------

    def _fit_teacher(self, X, y):
        n = len(X)
        n_holdout = max(1, int(self.holdout_fraction * n))
        order = self._rng.permutation(n)
        holdout, train = order[:n_holdout], order[n_holdout:]

        self.teachers_ = []
        accuracies = []
        for size in self.teacher_sizes:
            member = RocketClassifier(n_kernels=size, rng=self._rng)
            member.fit(X[train], y[train])
            accuracies.append(member.score(X[holdout], y[holdout]))
            self.teachers_.append(member)
        accuracies = np.asarray(accuracies)
        # Adaptive weighting: softmax over holdout accuracy.
        logits = (accuracies - accuracies.max()) / 0.05
        weights = np.exp(logits)
        self.teacher_weights_ = weights / weights.sum()

        # Refit members on all data for final soft labels.
        for member in self.teachers_:
            member.fit(X, y)

    def teacher_proba(self, X):
        """Weighted soft labels of the teacher ensemble."""
        total = None
        for weight, member in zip(self.teacher_weights_, self.teachers_):
            scores = member.decision_function(X) / self.temperature
            scores = scores - scores.max(axis=1, keepdims=True)
            proba = np.exp(scores)
            proba /= proba.sum(axis=1, keepdims=True)
            contribution = weight * proba
            total = contribution if total is None else total + contribution
        return total

    def teacher_predict(self, X):
        return self.classes_[np.argmax(self.teacher_proba(X), axis=1)]

    def teacher_score(self, X, y):
        return float(np.mean(self.teacher_predict(X) == np.asarray(y)))

    @property
    def teacher_size_bytes(self):
        """Float32 storage of all teacher members."""
        return sum(4 * t.n_parameters for t in self.teachers_)

    # -- student -------------------------------------------------------------

    def _fit_student(self, X):
        soft = self.teacher_proba(X)
        features = self.student_features_.transform(X)
        self._student_mean = features.mean(axis=0)
        self._student_scale = features.std(axis=0)
        self._student_scale[self._student_scale == 0] = 1.0
        standardized = (features - self._student_mean) / self._student_scale

        n_features = standardized.shape[1]
        n_classes = soft.shape[1]
        weights = np.zeros((n_features, n_classes))
        intercept = np.zeros(n_classes)
        n = len(X)
        # The gradient norm grows with the feature count; scaling the
        # step keeps training stable for any student size.
        rate = self.learning_rate / np.sqrt(n_features)
        for _ in range(self.n_epochs):
            logits = standardized @ weights + intercept
            logits -= logits.max(axis=1, keepdims=True)
            proba = np.exp(logits)
            proba /= proba.sum(axis=1, keepdims=True)
            gradient = (proba - soft) / n  # cross-entropy on soft labels
            weights -= rate * (standardized.T @ gradient)
            intercept -= rate * gradient.sum(axis=0)
        self._student_float = (weights, intercept)
        self.student_ = QuantizedLinear(weights, intercept, self.bits)

    # -- public API -------------------------------------------------------------

    def fit(self, X, y):
        X = np.asarray(X, dtype=float)
        y = np.asarray(y)
        if len(X) != len(y):
            raise ValueError("X and y must align")
        self.classes_ = np.unique(y)
        self.student_features_ = RocketFeatures(self.student_kernels,
                                                rng=self._rng)
        self._fit_teacher(X, y)
        self._fit_student(X)
        self._fitted = True
        return self

    def fit_for_budget(self, X, y, budget_bytes):
        """Fit, then choose the largest bit-width fitting the budget."""
        self.fit(X, y)
        weights, intercept = self._student_float
        for bits in (16, 8, 6, 4, 3, 2):
            candidate = QuantizedLinear(weights, intercept, bits)
            if candidate.size_bytes <= budget_bytes:
                self.bits = bits
                self.student_ = candidate
                return self
        raise ValueError(
            f"even 2-bit weights exceed the budget of {budget_bytes} bytes"
        )

    def predict(self, X):
        """Quantized-student predictions."""
        if not self._fitted:
            raise RuntimeError("fit before predict")
        features = self.student_features_.transform(
            np.asarray(X, dtype=float))
        standardized = (features - self._student_mean) / self._student_scale
        logits = self.student_.predict(standardized)
        return self.classes_[np.argmax(logits, axis=1)]

    def score(self, X, y):
        return float(np.mean(self.predict(X) == np.asarray(y)))

    @property
    def student_size_bytes(self):
        if not self._fitted:
            raise RuntimeError("fit before inspecting sizes")
        return self.student_.size_bytes

    def size_for_bits(self, bits):
        """Student storage at a hypothetical bit-width."""
        weights, intercept = self._student_float
        return model_size_bytes(weights.size, bits) + 4 * intercept.size
