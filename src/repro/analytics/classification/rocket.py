"""Random-convolution-kernel classification (ROCKET-style).

The fast, accurate feature map the LightTS [47] reproduction builds its
teacher ensemble from: each random kernel is convolved with the series
and summarized by two pooled statistics (max and the *proportion of
positive values*); a ridge classifier on those features is close to
state-of-the-art at a tiny compute cost — a natural fit for this
library's resource-efficiency storyline.
"""

from __future__ import annotations

import numpy as np

from ..._validation import check_positive, ensure_rng

__all__ = ["RocketFeatures", "RocketClassifier"]


class RocketFeatures:
    """Random convolution kernels with max / PPV pooling.

    Parameters
    ----------
    n_kernels:
        Number of random kernels (each contributes two features).
    """

    def __init__(self, n_kernels=200, rng=None):
        self.n_kernels = int(check_positive(n_kernels, "n_kernels"))
        self._rng = ensure_rng(rng)
        self._kernels = []
        for _ in range(self.n_kernels):
            length = int(self._rng.choice([7, 9, 11]))
            weights = self._rng.normal(0.0, 1.0, length)
            weights -= weights.mean()
            bias = float(self._rng.uniform(-1.0, 1.0))
            dilation = int(2 ** self._rng.uniform(0, 3))
            self._kernels.append((weights, bias, dilation))

    @property
    def n_features(self):
        return 2 * self.n_kernels

    def transform(self, X):
        """Features of shape ``(n_examples, 2 * n_kernels)``."""
        X = np.asarray(X, dtype=float)
        if X.ndim == 1:
            X = X[None, :]
        if X.ndim != 2:
            raise ValueError("X must be 2-D (examples x timesteps)")
        n_examples, length = X.shape
        features = np.zeros((n_examples, self.n_features))
        for index, (weights, bias, dilation) in enumerate(self._kernels):
            span = (len(weights) - 1) * dilation + 1
            if span > length:
                continue  # kernel longer than the series: features stay 0
            # Build the dilated convolution via strided positions.
            positions = np.arange(0, length - span + 1)
            taps = positions[:, None] + np.arange(len(weights)) * dilation
            responses = X[:, taps] @ weights + bias  # (examples, windows)
            features[:, 2 * index] = responses.max(axis=1)
            features[:, 2 * index + 1] = (responses > 0).mean(axis=1)
        return features


class RocketClassifier:
    """Ridge classifier on ROCKET features (one-vs-rest, closed form)."""

    def __init__(self, n_kernels=200, alpha=1.0, rng=None):
        self.features = RocketFeatures(n_kernels, rng=rng)
        self.alpha = float(alpha)
        self._fitted = False

    def fit(self, X, y):
        from ..forecasting.linear import ridge_fit

        X = np.asarray(X, dtype=float)
        y = np.asarray(y)
        if len(X) != len(y):
            raise ValueError("X and y must align")
        self.classes_ = np.unique(y)
        if len(self.classes_) < 2:
            raise ValueError("need at least two classes")
        transformed = self.features.transform(X)
        self._mean = transformed.mean(axis=0)
        self._scale = transformed.std(axis=0)
        self._scale[self._scale == 0] = 1.0
        standardized = (transformed - self._mean) / self._scale
        # One-vs-rest targets in {-1, +1}.
        targets = np.where(
            y[:, None] == self.classes_[None, :], 1.0, -1.0
        )
        self._weights, self._intercept = ridge_fit(standardized, targets,
                                                   self.alpha)
        self._fitted = True
        return self

    def decision_function(self, X):
        """Per-class scores (higher = more likely)."""
        if not self._fitted:
            raise RuntimeError("fit before predict")
        transformed = self.features.transform(np.asarray(X, dtype=float))
        standardized = (transformed - self._mean) / self._scale
        return standardized @ self._weights + self._intercept

    def predict(self, X):
        scores = self.decision_function(X)
        return self.classes_[np.argmax(scores, axis=1)]

    def predict_proba(self, X):
        """Softmax over decision scores (the distillation teacher's
        soft labels)."""
        scores = self.decision_function(X)
        scores = scores - scores.max(axis=1, keepdims=True)
        exponentials = np.exp(scores)
        return exponentials / exponentials.sum(axis=1, keepdims=True)

    def score(self, X, y):
        return float(np.mean(self.predict(X) == np.asarray(y)))

    @property
    def n_parameters(self):
        if not self._fitted:
            raise RuntimeError("fit before inspecting parameters")
        return int(self._weights.size + self._intercept.size)
