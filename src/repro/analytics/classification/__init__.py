"""Time-series classification: DTW, random kernels, and LightTS-style
adaptive ensemble distillation."""

from .distance import KnnDtwClassifier, dtw_distance
from .lightts import LightTsDistiller
from .rocket import RocketClassifier, RocketFeatures

__all__ = [
    "KnnDtwClassifier",
    "LightTsDistiller",
    "RocketClassifier",
    "RocketFeatures",
    "dtw_distance",
]
