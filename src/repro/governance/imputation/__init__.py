"""Missing-value imputation: temporal, spatial, and spatio-temporal."""

from .spatial import GcnCompleter, LabelPropagationCompleter, line_graph_adjacency
from .spatiotemporal import ODMatrixCompleter, complete_field
from .temporal import (
    KalmanImputer,
    StreamingImputer,
    backcast,
    impute_linear,
    impute_locf,
    impute_seasonal,
)

__all__ = [
    "GcnCompleter",
    "KalmanImputer",
    "LabelPropagationCompleter",
    "ODMatrixCompleter",
    "StreamingImputer",
    "complete_field",
    "backcast",
    "impute_linear",
    "impute_locf",
    "impute_seasonal",
    "line_graph_adjacency",
]
