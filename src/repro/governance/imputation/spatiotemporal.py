"""Spatio-temporal completion: Origin-Destination matrices over time.

The paper's spatio-temporal imputation example is completing missing
entries of a time-indexed OD matrix with a *dual-stage* model that
combines graph neural propagation (spatial stage) and recurrent
dynamics (temporal stage) [14].  :class:`ODMatrixCompleter` reproduces
that two-stage structure with classical machinery:

1. **Spatial stage** — each frame's missing entries are filled by
   propagating observed flows through the region-similarity graph on
   rows and columns (origins with similar outflow profiles, and
   destinations with similar inflow profiles, exchange information);
2. **Temporal stage** — each OD cell's sequence is smoothed/filled with
   a local-level Kalman smoother, so temporally adjacent frames inform
   each other.

The two stages are blended per-entry, weighted by how much evidence each
stage had (neighbour coverage vs. temporal coverage).
"""

from __future__ import annotations

import numpy as np

from ..._validation import check_fraction, check_positive
from ...datatypes import TimeSeries
from .temporal import KalmanImputer

__all__ = ["ODMatrixCompleter", "complete_field"]


def _profile_similarity(profiles):
    """Cosine similarity between row profiles, nan-safe, zero diagonal."""
    cleaned = np.nan_to_num(profiles)
    norms = np.linalg.norm(cleaned, axis=1)
    norms[norms == 0] = 1.0
    unit = cleaned / norms[:, None]
    similarity = np.clip(unit @ unit.T, 0.0, None)
    np.fill_diagonal(similarity, 0.0)
    return similarity


class ODMatrixCompleter:
    """Dual-stage completion of time-indexed OD matrices [14].

    Parameters
    ----------
    spatial_blend:
        Weight of the spatial estimate when both stages produced one.
    n_smoother_iterations:
        EM iterations of the temporal Kalman stage.
    """

    def __init__(self, spatial_blend=0.5, n_smoother_iterations=8,
                 non_negative=True):
        self.spatial_blend = check_fraction(spatial_blend, "spatial_blend")
        self.n_smoother_iterations = int(
            check_positive(n_smoother_iterations, "n_smoother_iterations")
        )
        self.non_negative = bool(non_negative)

    # -- stages ------------------------------------------------------------

    def _spatial_estimate(self, frames, mask):
        """Estimate each frame's missing entries from similar rows/cols."""
        n_frames, n_origins, n_destinations = frames.shape
        observed = np.where(mask, frames, 0.0)
        counts = mask.sum(axis=0)
        global_mean = frames[mask].mean() if mask.any() else 0.0
        mean_frame = np.where(
            counts > 0,
            observed.sum(axis=0) / np.maximum(counts, 1),
            global_mean,
        )
        row_similarity = _profile_similarity(mean_frame)
        col_similarity = _profile_similarity(mean_frame.T)

        estimates = np.zeros_like(frames)
        confidence = np.zeros_like(frames)
        for t in range(n_frames):
            frame = np.where(mask[t], frames[t], 0.0)
            known = mask[t].astype(float)

            row_num = row_similarity @ frame
            row_den = row_similarity @ known
            col_num = frame @ col_similarity.T
            col_den = known @ col_similarity.T

            numerator = row_num + col_num
            denominator = row_den + col_den
            with np.errstate(invalid="ignore", divide="ignore"):
                estimate = numerator / denominator
            valid = denominator > 1e-12
            estimate[~valid] = mean_frame[~valid]
            estimates[t] = estimate
            confidence[t] = np.minimum(denominator, 4.0) / 4.0
        return estimates, confidence

    def _temporal_estimate(self, frames, mask):
        """Kalman-smooth each OD cell across frames."""
        n_frames, n_origins, n_destinations = frames.shape
        flat = frames.reshape(n_frames, -1)
        flat_mask = mask.reshape(n_frames, -1)
        values = np.where(flat_mask, flat, np.nan)
        imputer = KalmanImputer(n_iterations=self.n_smoother_iterations)
        series = TimeSeries(values)
        completed = imputer.impute(series).values
        coverage = flat_mask.mean(axis=0)  # per-cell temporal evidence
        confidence = np.broadcast_to(coverage, flat.shape)
        return (
            completed.reshape(frames.shape),
            confidence.reshape(frames.shape).copy(),
        )

    # -- public API -----------------------------------------------------------

    def complete(self, frames, mask=None):
        """Fill missing entries of a stack of OD matrices.

        Parameters
        ----------
        frames:
            Array of shape ``(T, N, M)``; ``nan`` marks missing entries
            unless ``mask`` is given.
        mask:
            Optional boolean array, True where observed.

        Returns
        -------
        numpy.ndarray
            Completed array of the same shape; observed entries are
            passed through unchanged, and estimates are clipped at zero
            (flows are non-negative).
        """
        frames = np.asarray(frames, dtype=float)
        if frames.ndim != 3:
            raise ValueError(
                f"frames must have shape (T, N, M), got {frames.shape}"
            )
        if mask is None:
            mask = ~np.isnan(frames)
        else:
            mask = np.asarray(mask, dtype=bool)
            if mask.shape != frames.shape:
                raise ValueError("mask shape must match frames shape")
        if not mask.any():
            raise ValueError("need at least one observed entry")

        spatial, spatial_conf = self._spatial_estimate(frames, mask)
        temporal, temporal_conf = self._temporal_estimate(frames, mask)

        blend = self.spatial_blend * spatial_conf
        denom = blend + (1 - self.spatial_blend) * temporal_conf
        safe = denom > 1e-12
        weight = np.where(safe, blend / np.where(safe, denom, 1.0), 0.5)
        estimate = weight * spatial + (1 - weight) * temporal
        if self.non_negative:
            estimate = np.clip(estimate, 0.0, None)

        return np.where(mask, frames, estimate)


def complete_field(sequence, observed, *, bandwidth=2.0,
                   temporal_smoothing=0.3):
    """Complete a sparsely observed spatio-temporal field.

    The ocean-wave-height scenario of [2]: a smooth global field (an
    :class:`~repro.datatypes.ImageSequence` grid) is observed only at a
    few instrumented cells ("buoys"), and the remaining cells must be
    reconstructed.  The field is *spatially smooth*, so the right
    inductive bias is kernel interpolation: each missing cell is a
    Gaussian-weighted average of the buoys, per frame, followed by a
    light exponential smoothing in time (the field is also temporally
    coherent).

    Parameters
    ----------
    sequence:
        The grid geometry provider (only its shape is used).
    observed:
        Array ``(T, N, M)`` with ``nan`` at unobserved cells (e.g. from
        :func:`repro.datasets.sparse_buoy_observations`).
    bandwidth:
        Gaussian kernel length scale, in grid cells.
    temporal_smoothing:
        EWMA factor applied (forward and backward, averaged) to the
        interpolated estimates; 0 disables it.

    Returns
    -------
    numpy.ndarray
        The completed ``(T, N, M)`` field; observed cells pass through.
    """
    observed = np.asarray(observed, dtype=float)
    expected = (len(sequence),) + tuple(sequence.grid_shape)
    if observed.shape != expected:
        raise ValueError(
            f"observed must have shape {expected}, got {observed.shape}"
        )
    check_positive(bandwidth, "bandwidth")
    n_frames, rows, cols = observed.shape
    buoy_mask = ~np.isnan(observed[0])
    if not buoy_mask.any():
        raise ValueError("need at least one observed cell")

    # Gaussian kernel weights from every cell to every buoy.
    cell_rows, cell_cols = np.mgrid[0:rows, 0:cols]
    buoy_rows, buoy_cols = np.nonzero(buoy_mask)
    squared = ((cell_rows[..., None] - buoy_rows) ** 2
               + (cell_cols[..., None] - buoy_cols) ** 2)
    weights = np.exp(-squared / (2.0 * bandwidth ** 2))
    totals = weights.sum(axis=2)
    totals[totals == 0] = 1.0

    buoy_values = observed[:, buoy_rows, buoy_cols]  # (T, B)
    # Buoys may still have sporadic temporal gaps; fill them first.
    if np.isnan(buoy_values).any():
        buoy_values = KalmanImputer(4).impute(
            TimeSeries(buoy_values)).values
    estimates = np.einsum("tb,nmb->tnm", buoy_values, weights) \
        / totals[None, :, :]

    if temporal_smoothing > 0:
        forward = estimates.copy()
        backward = estimates.copy()
        for t in range(1, n_frames):
            forward[t] = (temporal_smoothing * forward[t - 1]
                          + (1 - temporal_smoothing) * forward[t])
        for t in range(n_frames - 2, -1, -1):
            backward[t] = (temporal_smoothing * backward[t + 1]
                           + (1 - temporal_smoothing) * backward[t])
        estimates = 0.5 * (forward + backward)

    mask = ~np.isnan(observed)
    return np.where(mask, observed, estimates)
