"""Temporal missing-value imputation (paper §II-B).

Sensor streams lose values to malfunctions and network outages; the
paper prescribes time series imputation and *backcast* techniques for
completing them temporally.  The module provides four estimators of
increasing sophistication — all sharing the same signature
``impute(series) -> TimeSeries``:

* :func:`impute_locf` — last observation carried forward (the naive
  baseline the learned methods must beat),
* :func:`impute_linear` — per-channel linear interpolation,
* :func:`impute_seasonal` — seasonal decomposition: fill with the
  per-phase seasonal mean plus an interpolated residual,
* :class:`KalmanImputer` — a local-level state-space model whose
  parameters are estimated by expectation-maximization, the classical
  counterpart of the RNN imputation/backcast of [13].

:func:`backcast` reconstructs values *before* the observed window, the
"postdiction" task of [13].

:class:`StreamingImputer` is the *online* variant for incremental
pipelines (see ``docs/STREAMING.md``): it carries O(C) recursive
state across arriving chunks, so a windowed governance stage can
impute each tick's observations without re-reading history.
"""

from __future__ import annotations

import numpy as np

from ..._validation import check_positive
from ...datatypes import TimeSeries

__all__ = [
    "impute_locf",
    "impute_linear",
    "impute_seasonal",
    "KalmanImputer",
    "StreamingImputer",
    "backcast",
]


def _column_interpolate(values, mask, timestamps):
    """Linear interpolation of one channel; extrapolates flat at ends."""
    result = values.copy()
    observed = np.flatnonzero(mask)
    if observed.size == 0:
        result[:] = 0.0
        return result
    missing = np.flatnonzero(~mask)
    result[missing] = np.interp(
        timestamps[missing], timestamps[observed], values[observed]
    )
    return result


def impute_locf(series):
    """Last observation carried forward (first value carried backward)."""
    values = series.values
    mask = series.mask
    filled = values.copy()
    for column in range(values.shape[1]):
        observed = np.flatnonzero(mask[:, column])
        if observed.size == 0:
            filled[:, column] = 0.0
            continue
        last = values[observed[0], column]
        for row in range(values.shape[0]):
            if mask[row, column]:
                last = values[row, column]
            else:
                filled[row, column] = last
    return series.with_values(filled)


def impute_linear(series):
    """Per-channel linear interpolation over the time axis."""
    values = series.values
    mask = series.mask
    timestamps = series.timestamps
    filled = values.copy()
    for column in range(values.shape[1]):
        filled[:, column] = _column_interpolate(
            values[:, column], mask[:, column], timestamps
        )
    return series.with_values(filled)


def impute_seasonal(series, period):
    """Seasonal-mean imputation with interpolated residuals.

    The value at time ``t`` is estimated as ``seasonal_mean[t % period]``
    plus the linear interpolation of the de-seasonalized residual, so
    both the periodic shape and local level shifts are respected.
    """
    check_positive(period, "period")
    period = int(period)
    values = series.values
    mask = series.mask
    timestamps = series.timestamps
    n_rows, n_cols = values.shape
    phases = np.arange(n_rows) % period
    filled = values.copy()
    for column in range(n_cols):
        seasonal = np.zeros(period)
        for phase in range(period):
            rows = (phases == phase) & mask[:, column]
            if rows.any():
                seasonal[phase] = values[rows, column].mean()
            else:
                general = mask[:, column]
                seasonal[phase] = (
                    values[general, column].mean() if general.any() else 0.0
                )
        residual = values[:, column] - seasonal[phases]
        residual_filled = _column_interpolate(
            residual, mask[:, column], timestamps
        )
        estimate = seasonal[phases] + residual_filled
        column_filled = values[:, column].copy()
        column_filled[~mask[:, column]] = estimate[~mask[:, column]]
        filled[:, column] = column_filled
    return series.with_values(filled)


class KalmanImputer:
    """Local-level state-space imputation with EM-estimated noise levels.

    Model per channel: ``state_t = state_{t-1} + w_t``,
    ``obs_t = state_t + v_t`` with ``w ~ N(0, q)``, ``v ~ N(0, r)``.
    Missing observations simply skip the update step; the RTS smoother
    then produces the minimum-mean-squared-error reconstruction, and EM
    re-estimates ``(q, r)`` from the smoothed moments.

    This is the classical analogue of the recurrent imputation networks
    in [13]: a learned temporal dynamic filling gaps in both directions.
    """

    def __init__(self, n_iterations=15):
        check_positive(n_iterations, "n_iterations")
        self.n_iterations = int(n_iterations)

    def _smooth_column(self, values, mask):
        observed = values[mask]
        if observed.size == 0:
            return np.zeros_like(values)
        if observed.size == 1:
            return np.full_like(values, observed[0])
        scale = observed.var() if observed.var() > 0 else 1.0
        q, r = 0.1 * scale, 0.5 * scale
        n = len(values)
        for _ in range(self.n_iterations):
            # Forward filter.
            means = np.zeros(n)
            variances = np.zeros(n)
            predicted_means = np.zeros(n)
            predicted_variances = np.zeros(n)
            mean, variance = observed[0], scale
            for t in range(n):
                if t > 0:
                    mean, variance = mean, variance + q
                predicted_means[t], predicted_variances[t] = mean, variance
                if mask[t]:
                    gain = variance / (variance + r)
                    mean = mean + gain * (values[t] - mean)
                    variance = (1 - gain) * variance
                means[t], variances[t] = mean, variance
            # RTS smoother.
            smoothed = np.zeros(n)
            smoothed_var = np.zeros(n)
            lag_cov = np.zeros(n)  # Cov(x_t, x_{t-1} | all data)
            smoothed[-1], smoothed_var[-1] = means[-1], variances[-1]
            for t in range(n - 2, -1, -1):
                gain = variances[t] / predicted_variances[t + 1]
                smoothed[t] = means[t] + gain * (
                    smoothed[t + 1] - predicted_means[t + 1]
                )
                smoothed_var[t] = variances[t] + gain ** 2 * (
                    smoothed_var[t + 1] - predicted_variances[t + 1]
                )
                lag_cov[t + 1] = gain * smoothed_var[t + 1]
            # EM update of q and r.
            diffs = np.diff(smoothed)
            q = float(np.mean(
                diffs ** 2
                + smoothed_var[1:] + smoothed_var[:-1] - 2 * lag_cov[1:]
            ))
            residual = values[mask] - smoothed[mask]
            r = float(np.mean(residual ** 2 + smoothed_var[mask]))
            q = max(q, 1e-10 * scale)
            r = max(r, 1e-10 * scale)
        return smoothed

    def impute(self, series):
        """Return a completed copy of ``series``."""
        if not isinstance(series, TimeSeries):
            raise TypeError("series must be a TimeSeries")
        values = series.values
        mask = series.mask
        filled = values.copy()
        for column in range(values.shape[1]):
            smoothed = self._smooth_column(
                np.nan_to_num(values[:, column]), mask[:, column]
            )
            missing = ~mask[:, column]
            filled[missing, column] = smoothed[missing]
        return series.with_values(filled)


class StreamingImputer:
    """Recursive imputation over arriving chunks, O(C) carried state.

    The online counterpart of the batch imputers above for streaming
    pipelines: feed observation chunks in arrival order with
    :meth:`push` and each call returns the chunk completed, using
    only state carried from earlier chunks — no history re-read, no
    lookahead.

    Parameters
    ----------
    method:
        ``"locf"`` (default) carries the last observed value of each
        channel forward across chunk boundaries.  Once a channel has
        been observed at least once, the chunked output is *exactly*
        the rows batch :func:`impute_locf` produces on the
        concatenation of all chunks — the equivalence the streaming
        test suite pins.  Rows before a channel's first observation
        are filled with 0.0 (an online method cannot carry a future
        first observation backward the way the batch code does; use
        :func:`backcast` or a batch pass for postdiction).
        ``"ewma"`` fills gaps with an exponentially weighted moving
        average of the observed values, a smoother recursive
        estimate for noisy feeds.
    alpha:
        EWMA smoothing factor in (0, 1]; ignored for ``"locf"``.
    """

    def __init__(self, method="locf", *, alpha=0.3):
        if method not in ("locf", "ewma"):
            raise ValueError(
                f"method must be 'locf' or 'ewma', got {method!r}")
        alpha = float(alpha)
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        self.method = method
        self.alpha = alpha
        self._carry = None  # (C,) last carried estimate per channel
        self._seen = None   # (C,) bool: channel observed at least once
        self.rows_seen = 0

    def reset(self):
        """Forget all carried state (a fresh stream)."""
        self._carry = None
        self._seen = None
        self.rows_seen = 0

    @property
    def carry(self):
        """The carried per-channel estimate (copy), or ``None``."""
        return None if self._carry is None else self._carry.copy()

    def _ensure_state(self, n_channels):
        if self._carry is None:
            self._carry = np.zeros(n_channels)
            self._seen = np.zeros(n_channels, dtype=bool)
        elif len(self._carry) != n_channels:
            raise ValueError(
                f"chunk has {n_channels} channels, stream carried "
                f"{len(self._carry)}")

    def push(self, chunk):
        """Complete one chunk; returns the same type it was given.

        ``chunk`` is a :class:`~repro.datatypes.TimeSeries` (missing
        entries per its mask) or an array-like of shape ``(M,)`` or
        ``(M, C)`` with ``nan`` marking missing entries.
        """
        if isinstance(chunk, TimeSeries):
            filled = self._fill(chunk.values, chunk.mask)
            return chunk.with_values(filled)
        values = np.asarray(chunk, dtype=float)
        squeeze = values.ndim == 1
        if squeeze:
            values = values[:, None]
        filled = self._fill(values.copy(), ~np.isnan(values))
        return filled[:, 0] if squeeze else filled

    def _fill(self, values, mask):
        n_rows, n_channels = values.shape
        self._ensure_state(n_channels)
        for column in range(n_channels):
            carry = self._carry[column]
            seen = self._seen[column]
            for row in range(n_rows):
                if mask[row, column]:
                    observed = values[row, column]
                    if self.method == "ewma" and seen:
                        carry += self.alpha * (observed - carry)
                    else:
                        carry = observed
                    seen = True
                else:
                    values[row, column] = carry if seen else 0.0
            self._carry[column] = carry
            self._seen[column] = seen
        self.rows_seen += n_rows
        return values


def backcast(series, n_steps, *, period=None):
    """Reconstruct ``n_steps`` values *before* the observed window.

    Uses the seasonal profile when ``period`` is given, otherwise a
    linear trend fit on the earliest quarter of the data — the
    "data postdiction" task of [13].

    Returns an array of shape ``(n_steps, C)``.
    """
    check_positive(n_steps, "n_steps")
    n_steps = int(n_steps)
    complete = impute_linear(series)
    values = complete.values
    n_rows, n_cols = values.shape
    result = np.zeros((n_steps, n_cols))
    if period is not None:
        period = int(check_positive(period, "period"))
        for column in range(n_cols):
            for step in range(n_steps):
                # position of the backcast point in the seasonal cycle
                phase = (-(n_steps - step)) % period
                rows = np.arange(n_rows) % period == phase
                result[step, column] = (
                    values[rows, column].mean() if rows.any()
                    else values[:, column].mean()
                )
        return result
    head = values[: max(2, n_rows // 4)]
    x = np.arange(len(head))
    for column in range(n_cols):
        slope, intercept = np.polyfit(x, head[:, column], 1)
        steps = np.arange(-n_steps, 0)
        result[:, column] = intercept + slope * steps
    return result
