"""Spatial missing-value completion: annotating unobserved edges.

The paper frames spatially missing values as *graph edge weight
completion*: only some road-network edges have observed weights (speeds,
costs) because probe vehicles do not cover every road.  Two method
families are covered:

* :class:`LabelPropagationCompleter` — graph-based semi-supervised
  learning [11]: weights diffuse from observed edges to their neighbours
  in the line graph until a fixed point;
* :class:`GcnCompleter` — a graph-convolutional autoencoder [12]
  (NumPy, manual backprop): node features of the line graph (observed
  weight, observation flag, edge length) are propagated through
  normalized adjacency and trained to reconstruct the observed weights,
  generalizing to the unobserved ones.

Both expose ``complete(network, observed) -> dict`` mapping every edge
to an estimated weight.
"""

from __future__ import annotations

import numpy as np

from ..._validation import check_fraction, check_positive, ensure_rng
from ...datatypes import RoadNetwork

__all__ = ["LabelPropagationCompleter", "GcnCompleter", "line_graph_adjacency"]


def line_graph_adjacency(network):
    """Adjacency of the line graph: edges sharing an endpoint connect.

    Returns
    -------
    (list, numpy.ndarray)
        The edge order and the symmetric 0/1 adjacency matrix.
    """
    if not isinstance(network, RoadNetwork):
        raise TypeError("network must be a RoadNetwork")
    edges = network.edges()
    index = {edge: i for i, edge in enumerate(edges)}
    adjacency = np.zeros((len(edges), len(edges)))
    by_node = {}
    for edge in edges:
        for node in edge:
            by_node.setdefault(node, []).append(index[edge])
    for incident in by_node.values():
        for a in incident:
            for b in incident:
                if a != b:
                    adjacency[a, b] = 1.0
    return edges, adjacency


def _normalize(adjacency, *, self_loops=True):
    matrix = adjacency + np.eye(len(adjacency)) if self_loops else adjacency
    degree = matrix.sum(axis=1)
    scale = np.zeros_like(degree)
    positive = degree > 0
    scale[positive] = 1.0 / np.sqrt(degree[positive])
    return matrix * np.outer(scale, scale)


class LabelPropagationCompleter:
    """Semi-supervised weight diffusion over the line graph [11].

    Iterates ``w <- alpha * S w + (1 - alpha) * w_observed`` where ``S``
    is the row-normalized line-graph adjacency and observed entries are
    clamped each round.  With ``alpha < 1`` the iteration is a
    contraction, so it converges regardless of initialization.
    """

    def __init__(self, alpha=0.85, n_iterations=100, tol=1e-8):
        self.alpha = check_fraction(alpha, "alpha", inclusive_high=False)
        self.n_iterations = int(check_positive(n_iterations, "n_iterations"))
        self.tol = float(tol)

    def complete(self, network, observed):
        """Estimate a weight for every edge.

        Parameters
        ----------
        network:
            The road network.
        observed:
            Mapping ``{(u, v): weight}`` for the observed subset.

        Returns
        -------
        dict
            ``{(u, v): weight}`` for *all* edges.
        """
        edges, adjacency = line_graph_adjacency(network)
        if not observed:
            raise ValueError("need at least one observed edge weight")
        index = {edge: i for i, edge in enumerate(edges)}
        for edge in observed:
            if edge not in index:
                raise KeyError(f"observed edge {edge!r} not in network")

        degree = adjacency.sum(axis=1, keepdims=True)
        transition = adjacency / np.maximum(degree, 1.0)

        known = np.zeros(len(edges), dtype=bool)
        base = np.zeros(len(edges))
        for edge, weight in observed.items():
            known[index[edge]] = True
            base[index[edge]] = float(weight)
        mean = base[known].mean()
        weights = np.where(known, base, mean)

        for _ in range(self.n_iterations):
            updated = self.alpha * transition @ weights
            updated += (1 - self.alpha) * np.where(known, base, mean)
            updated[known] = base[known]
            if np.max(np.abs(updated - weights)) < self.tol:
                weights = updated
                break
            weights = updated
        return {edge: float(weights[index[edge]]) for edge in edges}


class GcnCompleter:
    """Two-layer graph-convolutional autoencoder for weight completion [12].

    Architecture (line graph with ``E`` nodes, normalized adjacency
    ``A``): ``H = relu(A X W1 + b1)``, ``w_hat = A H W2 + b2``.  Trained
    by full-batch gradient descent on the squared error over *observed*
    edges only; the graph propagation generalizes the fit to unobserved
    edges.  Targets are standardized internally so the learning rate is
    scale-free.
    """

    def __init__(self, n_hidden=16, n_iterations=400, learning_rate=0.05,
                 weight_decay=1e-4, rng=None):
        self.n_hidden = int(check_positive(n_hidden, "n_hidden"))
        self.n_iterations = int(check_positive(n_iterations, "n_iterations"))
        self.learning_rate = float(check_positive(learning_rate,
                                                  "learning_rate"))
        self.weight_decay = float(weight_decay)
        self._rng = ensure_rng(rng)
        self.training_losses = []

    def complete(self, network, observed):
        """Estimate a weight for every edge (same contract as
        :meth:`LabelPropagationCompleter.complete`)."""
        edges, adjacency = line_graph_adjacency(network)
        if not observed:
            raise ValueError("need at least one observed edge weight")
        index = {edge: i for i, edge in enumerate(edges)}
        for edge in observed:
            if edge not in index:
                raise KeyError(f"observed edge {edge!r} not in network")

        n_edges = len(edges)
        normalized = _normalize(adjacency)

        known = np.zeros(n_edges, dtype=bool)
        target = np.zeros(n_edges)
        for edge, weight in observed.items():
            known[index[edge]] = True
            target[index[edge]] = float(weight)
        mean = target[known].mean()
        scale = target[known].std()
        if scale == 0:
            scale = 1.0
        standardized = np.where(known, (target - mean) / scale, 0.0)

        lengths = np.array([network.edge_length(u, v) for u, v in edges])
        length_scale = lengths.std() if lengths.std() > 0 else 1.0
        features = np.column_stack([
            standardized,
            known.astype(float),
            (lengths - lengths.mean()) / length_scale,
        ])

        rng = self._rng
        w1 = rng.normal(0, 1.0 / np.sqrt(features.shape[1]),
                        size=(features.shape[1], self.n_hidden))
        b1 = np.zeros(self.n_hidden)
        w2 = rng.normal(0, 1.0 / np.sqrt(self.n_hidden),
                        size=(self.n_hidden, 1))
        b2 = np.zeros(1)

        ax = normalized @ features
        n_observed = int(known.sum())
        self.training_losses = []
        for _ in range(self.n_iterations):
            hidden_pre = ax @ w1 + b1
            hidden = np.maximum(hidden_pre, 0.0)
            ah = normalized @ hidden
            prediction = (ah @ w2 + b2)[:, 0]

            error = np.where(known, prediction - standardized, 0.0)
            loss = float((error ** 2).sum() / n_observed)
            self.training_losses.append(loss)

            grad_pred = (2.0 / n_observed) * error
            grad_w2 = ah.T @ grad_pred[:, None] + self.weight_decay * w2
            grad_b2 = np.array([grad_pred.sum()])
            grad_ah = grad_pred[:, None] @ w2.T
            grad_hidden = normalized.T @ grad_ah
            grad_hidden_pre = grad_hidden * (hidden_pre > 0)
            grad_w1 = ax.T @ grad_hidden_pre + self.weight_decay * w1
            grad_b1 = grad_hidden_pre.sum(axis=0)

            w1 -= self.learning_rate * grad_w1
            b1 -= self.learning_rate * grad_b1
            w2 -= self.learning_rate * grad_w2
            b2 -= self.learning_rate * grad_b2

        hidden = np.maximum(ax @ w1 + b1, 0.0)
        prediction = ((normalized @ hidden) @ w2 + b2)[:, 0]
        estimate = prediction * scale + mean
        estimate[known] = target[known]
        return {edge: float(estimate[index[edge]]) for edge in edges}
