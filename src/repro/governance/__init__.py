"""Data governance (paper Sec. II-B): improve raw data quality before
analytics -- missing-value imputation, uncertainty quantification, and
multi-modal fusion."""

from . import fusion, imputation, uncertainty

__all__ = ["fusion", "imputation", "uncertainty"]
