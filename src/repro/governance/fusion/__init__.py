"""Multi-modal fusion: alignment (map matching, embeddings) and
feature-based fusion."""

from .alignment import CcaAligner, procrustes_align, retrieval_accuracy
from .features import add_time_features, align_series, fuse_series, weather_series
from .map_matching import HmmMapMatcher

__all__ = [
    "CcaAligner",
    "HmmMapMatcher",
    "add_time_features",
    "align_series",
    "fuse_series",
    "procrustes_align",
    "retrieval_accuracy",
    "weather_series",
]
