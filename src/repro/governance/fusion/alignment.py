"""Cross-modal embedding alignment (MM-Path-style fusion [23]).

The paper's example of representation-level fusion is MM-Path, which
*aligns* embeddings of the same path computed from two modalities (road
network vs. satellite imagery).  This module provides the two classical
alignment mechanisms the NumPy reproduction uses:

* :func:`procrustes_align` — the best orthogonal map from one embedding
  space onto another (closed form via SVD);
* :class:`CcaAligner` — canonical correlation analysis: projects both
  modalities into a shared space maximizing cross-modal correlation.

:func:`retrieval_accuracy` measures alignment quality the way the
cross-modal literature does: does the nearest neighbour of an item's
modality-A embedding, among modality-B embeddings, belong to the same
item?
"""

from __future__ import annotations

import numpy as np
from scipy import linalg

from ..._validation import as_float_array, check_positive

__all__ = ["procrustes_align", "CcaAligner", "retrieval_accuracy"]


def procrustes_align(source, target):
    """Orthogonal matrix ``W`` minimizing ``||source @ W - target||_F``.

    Both inputs must have shape ``(n, d)`` with rows in correspondence.
    """
    source = as_float_array(source, "source", ndim=2)
    target = as_float_array(target, "target", ndim=2)
    if source.shape != target.shape:
        raise ValueError(
            f"shape mismatch: {source.shape} vs {target.shape}"
        )
    u, _, vt = np.linalg.svd(source.T @ target)
    return u @ vt


class CcaAligner:
    """Canonical correlation analysis via the SVD of whitened covariances.

    ``fit(x, y)`` learns projections ``Wx`` (``dx x k``) and ``Wy``
    (``dy x k``) such that corresponding columns of ``x @ Wx`` and
    ``y @ Wy`` are maximally correlated.  Regularization keeps the
    whitening stable when features are collinear.
    """

    def __init__(self, n_components=2, regularization=1e-6):
        self.n_components = int(check_positive(n_components, "n_components"))
        self.regularization = float(regularization)
        self.x_mean = None
        self.y_mean = None
        self.x_projection = None
        self.y_projection = None
        self.correlations = None

    def fit(self, x, y):
        """Learn the paired projections from rows in correspondence."""
        x = as_float_array(x, "x", ndim=2)
        y = as_float_array(y, "y", ndim=2)
        if x.shape[0] != y.shape[0]:
            raise ValueError("x and y must have the same number of rows")
        if x.shape[0] < 3:
            raise ValueError("need at least 3 paired samples")
        k = min(self.n_components, x.shape[1], y.shape[1])

        self.x_mean = x.mean(axis=0)
        self.y_mean = y.mean(axis=0)
        xc = x - self.x_mean
        yc = y - self.y_mean
        n = x.shape[0]

        cxx = xc.T @ xc / n + self.regularization * np.eye(x.shape[1])
        cyy = yc.T @ yc / n + self.regularization * np.eye(y.shape[1])
        cxy = xc.T @ yc / n

        # Whiten, then SVD of the cross-covariance.
        cxx_inv_half = linalg.fractional_matrix_power(cxx, -0.5).real
        cyy_inv_half = linalg.fractional_matrix_power(cyy, -0.5).real
        core = cxx_inv_half @ cxy @ cyy_inv_half
        u, singular_values, vt = np.linalg.svd(core)
        self.x_projection = cxx_inv_half @ u[:, :k]
        self.y_projection = cyy_inv_half @ vt[:k].T
        self.correlations = np.clip(singular_values[:k], 0.0, 1.0)
        return self

    def _check_fitted(self):
        if self.x_projection is None:
            raise RuntimeError("call fit before transform")

    def transform_x(self, x):
        """Project modality-A embeddings into the shared space."""
        self._check_fitted()
        x = as_float_array(x, "x", ndim=2)
        return (x - self.x_mean) @ self.x_projection

    def transform_y(self, y):
        """Project modality-B embeddings into the shared space."""
        self._check_fitted()
        y = as_float_array(y, "y", ndim=2)
        return (y - self.y_mean) @ self.y_projection


def retrieval_accuracy(queries, gallery):
    """Top-1 cross-modal retrieval accuracy.

    Row ``i`` of ``queries`` is the modality-A embedding of item ``i``
    and row ``i`` of ``gallery`` its modality-B embedding; accuracy is
    the fraction of items whose nearest gallery row (cosine similarity)
    is their own.
    """
    queries = as_float_array(queries, "queries", ndim=2)
    gallery = as_float_array(gallery, "gallery", ndim=2)
    if queries.shape != gallery.shape:
        raise ValueError("queries and gallery must have matching shapes")

    def normalize(matrix):
        norms = np.linalg.norm(matrix, axis=1, keepdims=True)
        norms[norms == 0] = 1.0
        return matrix / norms

    similarity = normalize(queries) @ normalize(gallery).T
    predicted = similarity.argmax(axis=1)
    return float(np.mean(predicted == np.arange(len(queries))))
