"""Feature-based multi-modal fusion (paper §II-B).

The paper's example of *feature-based* fusion is combining historical
traffic with weather and point-of-interest data for forecasting
[18, 19].  The mechanics are: bring heterogeneous sources onto one time
axis, stack them as channels, and optionally append calendar encodings
— producing a single multivariate :class:`~repro.datatypes.TimeSeries`
the analytics layer can consume.
"""

from __future__ import annotations

import numpy as np

from ..._validation import check_positive
from ...datatypes import TimeSeries

__all__ = ["align_series", "fuse_series", "add_time_features",
           "weather_series"]


def align_series(sources, timestamps):
    """Resample every source onto the given time axis.

    Each channel of each source is linearly interpolated at the target
    timestamps; values outside the source's range take the nearest
    endpoint (flat extrapolation).

    Parameters
    ----------
    sources:
        Mapping ``{name: TimeSeries}``.
    timestamps:
        Target time axis (strictly increasing 1-D array).

    Returns
    -------
    dict
        ``{name: TimeSeries}`` all sharing the target axis.
    """
    timestamps = np.asarray(timestamps, dtype=float)
    if timestamps.ndim != 1 or len(timestamps) == 0:
        raise ValueError("timestamps must be a non-empty 1-D array")
    if np.any(np.diff(timestamps) <= 0):
        raise ValueError("timestamps must be strictly increasing")
    aligned = {}
    for name, series in sources.items():
        if not isinstance(series, TimeSeries):
            raise TypeError(f"source {name!r} must be a TimeSeries")
        values = series.values
        mask = series.mask
        columns = []
        for channel in range(series.n_channels):
            observed = mask[:, channel]
            if not observed.any():
                raise ValueError(
                    f"source {name!r} channel {channel} has no data"
                )
            columns.append(np.interp(
                timestamps,
                series.timestamps[observed],
                values[observed, channel],
            ))
        aligned[name] = TimeSeries(np.column_stack(columns),
                                   timestamps=timestamps, name=name)
    return aligned


def fuse_series(sources, timestamps=None):
    """Stack multiple sources into one multivariate series.

    Parameters
    ----------
    sources:
        Mapping ``{name: TimeSeries}``; channel ``c`` of source ``s``
        becomes a column named ``"{s}_{c}"`` (order of insertion).
    timestamps:
        Target axis; defaults to the first source's timestamps.

    Returns
    -------
    (TimeSeries, list)
        The fused series and the column names.
    """
    if not sources:
        raise ValueError("sources must not be empty")
    if timestamps is None:
        first = next(iter(sources.values()))
        timestamps = first.timestamps
    aligned = align_series(sources, timestamps)
    columns = []
    names = []
    for name, series in aligned.items():
        values = series.values
        for channel in range(series.n_channels):
            columns.append(values[:, channel])
            suffix = f"_{channel}" if series.n_channels > 1 else ""
            names.append(f"{name}{suffix}")
    fused = TimeSeries(np.column_stack(columns), timestamps=timestamps)
    return fused, names


def add_time_features(series, period):
    """Append ``sin``/``cos`` encodings of the position in a cycle.

    A cheap stand-in for calendar features: lets linear forecasters use
    time-of-day without memorizing every timestamp.
    """
    check_positive(period, "period")
    phase = 2 * np.pi * (series.timestamps % period) / period
    extra = np.column_stack([np.sin(phase), np.cos(phase)])
    values = np.column_stack([series.values, extra])
    return TimeSeries(values, timestamps=series.timestamps, name=series.name)


def weather_series(n_steps, interval_minutes=15, *, rng=None):
    """A synthetic weather covariate correlated with time of day.

    Returns a two-channel series (temperature-like and rain-intensity-
    like) used by the fusion experiments (E7): rain depresses traffic
    speed in the generators that consume it.
    """
    from ..._validation import ensure_rng

    rng = ensure_rng(rng)
    n_steps = int(check_positive(n_steps, "n_steps"))
    minutes = np.arange(n_steps) * interval_minutes
    hour = (minutes % (24 * 60)) / 60.0
    temperature = 12 + 8 * np.sin(2 * np.pi * (hour - 9) / 24)
    temperature = temperature + rng.normal(0, 0.5, n_steps)
    # Rain: smoothed on/off bursts.
    rain = np.zeros(n_steps)
    state = 0.0
    for index in range(n_steps):
        if state == 0.0 and rng.random() < 0.01:
            state = rng.uniform(0.5, 1.0)
        elif state > 0 and rng.random() < 0.08:
            state = 0.0
        rain[index] = state
    kernel = np.ones(4) / 4
    rain = np.convolve(rain, kernel, mode="same")
    values = np.column_stack([temperature, rain])
    return TimeSeries(values, timestamps=minutes.astype(float),
                      name="weather")
