"""Hidden-Markov-model map matching (Newson & Krumm [17]).

Map matching is the paper's prime example of *alignment-based*
multi-modal fusion: noisy GPS trajectories are aligned with the road
network, simultaneously removing measurement noise and recovering the
travelled route.

Model (exactly the classic formulation):

* **states** at each GPS sample are candidate road edges within
  ``candidate_radius`` of the point;
* **emission** probability of a candidate decays as a Gaussian in the
  perpendicular distance between the point and the edge
  (``sigma`` = GPS noise scale);
* **transition** probability between consecutive candidates decays
  exponentially in the *route/great-circle discrepancy*: a good match
  drives roughly as far along the network as the raw points moved
  (``beta`` = tolerance scale);
* decoding is exact Viterbi.
"""

from __future__ import annotations

import math

import numpy as np

from ..._validation import check_positive
from ...datatypes import RoadNetwork, Trajectory

__all__ = ["HmmMapMatcher"]


class HmmMapMatcher:
    """Match GPS trajectories to road-network paths.

    Parameters
    ----------
    network:
        The road network.
    sigma:
        GPS noise standard deviation (emission scale).
    beta:
        Transition tolerance: expected discrepancy between network
        distance and straight-line distance.
    candidate_radius:
        Max distance from a point to a candidate edge.
    max_candidates:
        Keep only the closest candidates per point (for speed).
    """

    def __init__(self, network, *, sigma=0.3, beta=1.0,
                 candidate_radius=None, max_candidates=8):
        if not isinstance(network, RoadNetwork):
            raise TypeError("network must be a RoadNetwork")
        self.network = network
        self.sigma = float(check_positive(sigma, "sigma"))
        self.beta = float(check_positive(beta, "beta"))
        self.candidate_radius = (
            float(candidate_radius) if candidate_radius is not None
            else 5.0 * self.sigma
        )
        self.max_candidates = int(check_positive(max_candidates,
                                                 "max_candidates"))
        self._distance_cache = {}

    # -- internals -----------------------------------------------------------

    def _distances_from(self, node):
        cached = self._distance_cache.get(node)
        if cached is None:
            cached = self.network.dijkstra_all(node)
            self._distance_cache[node] = cached
        return cached

    def _route_distance(self, candidate_a, candidate_b):
        """Network distance between two on-edge positions."""
        (u1, v1, _, f1) = candidate_a
        (u2, v2, _, f2) = candidate_b
        length_a = self.network.edge_length(u1, v1)
        length_b = self.network.edge_length(u2, v2)
        if (u1, v1) == (u2, v2) and f2 >= f1:
            return (f2 - f1) * length_a
        remaining = (1.0 - f1) * length_a
        distances = self._distances_from(v1)
        through = distances.get(u2)
        if through is None:
            return math.inf
        return remaining + through + f2 * length_b

    def _candidates(self, point):
        found = self.network.candidate_edges(point, self.candidate_radius)
        return found[: self.max_candidates]

    # -- public API -------------------------------------------------------------

    def match(self, trajectory):
        """Viterbi-decode the most likely candidate sequence.

        Returns
        -------
        list
            One ``(u, v, distance, fraction)`` candidate per GPS point.

        Raises
        ------
        ValueError
            If some point has no candidate edge within radius (increase
            ``candidate_radius``).
        """
        if not isinstance(trajectory, Trajectory):
            raise TypeError("trajectory must be a Trajectory")
        points = [(p.x, p.y) for p in trajectory]
        layers = []
        for index, point in enumerate(points):
            candidates = self._candidates(point)
            if not candidates:
                raise ValueError(
                    f"no candidate edge within {self.candidate_radius} of "
                    f"point {index}; the trajectory is off the map"
                )
            layers.append(candidates)

        # Viterbi in log space.
        def emission(candidate):
            distance = candidate[2]
            return -0.5 * (distance / self.sigma) ** 2

        scores = [emission(c) for c in layers[0]]
        backpointers = []
        for step in range(1, len(layers)):
            straight = math.hypot(
                points[step][0] - points[step - 1][0],
                points[step][1] - points[step - 1][1],
            )
            new_scores = []
            pointers = []
            for candidate in layers[step]:
                best_score, best_prev = -math.inf, 0
                for prev_index, previous in enumerate(layers[step - 1]):
                    route = self._route_distance(previous, candidate)
                    if math.isinf(route):
                        continue
                    transition = -abs(route - straight) / self.beta
                    score = scores[prev_index] + transition
                    if score > best_score:
                        best_score, best_prev = score, prev_index
                new_scores.append(best_score + emission(candidate))
                pointers.append(best_prev)
            scores = new_scores
            backpointers.append(pointers)
            if all(math.isinf(-s) for s in scores):
                raise ValueError(
                    f"no connected matching through point {step}; "
                    "the network may be disconnected along the trace"
                )

        # Backtrack.
        best = int(np.argmax(scores))
        chosen = [best]
        for pointers in reversed(backpointers):
            best = pointers[best]
            chosen.append(best)
        chosen.reverse()
        return [layers[i][c] for i, c in enumerate(chosen)]

    def matched_path(self, trajectory):
        """The full node path the vehicle most likely travelled.

        Consecutive matched edges are stitched with network shortest
        paths, and repeated nodes from staying on one edge are collapsed.
        """
        candidates = self.match(trajectory)
        path = []

        def extend(nodes):
            for node in nodes:
                if not path or path[-1] != node:
                    path.append(node)

        previous_edge = None
        for index, (u, v, _, fraction) in enumerate(candidates):
            edge = (u, v)
            if edge == previous_edge:
                continue
            if previous_edge is None:
                # A first match sitting at the far end of its edge means
                # the vehicle effectively started at node v; adding u
                # would prepend a phantom segment.
                if fraction >= 0.99:
                    extend([v])
                else:
                    extend([u, v])
            else:
                connector = self.network.shortest_path(previous_edge[1], u)
                extend(connector)
                extend([v])
            previous_edge = edge

        # Collapse immediate backtracks (a, b, a -> a), an artifact of
        # matching to the reverse twin of a bidirectional edge.
        changed = True
        while changed and len(path) >= 3:
            changed = False
            for index in range(len(path) - 2):
                if path[index] == path[index + 2]:
                    del path[index + 1:index + 3]
                    changed = True
                    break

        if len(path) < 2:
            # Entire trace matched to a single edge.
            u, v, _, _ = candidates[0]
            path = [u, v]
        return path
