"""Hidden-Markov-model map matching (Newson & Krumm [17]).

Map matching is the paper's prime example of *alignment-based*
multi-modal fusion: noisy GPS trajectories are aligned with the road
network, simultaneously removing measurement noise and recovering the
travelled route.

Model (exactly the classic formulation):

* **states** at each GPS sample are candidate road edges within
  ``candidate_radius`` of the point;
* **emission** probability of a candidate decays as a Gaussian in the
  perpendicular distance between the point and the edge
  (``sigma`` = GPS noise scale);
* **transition** probability between consecutive candidates decays
  exponentially in the *route/great-circle discrepancy*: a good match
  drives roughly as far along the network as the raw points moved
  (``beta`` = tolerance scale);
* decoding is exact Viterbi.

The hot path is fully vectorized: emissions and transitions are built
as numpy matrices per consecutive layer pair and the Viterbi recurrence
is a broadcast max.  Network distances come from *bounded* Dijkstra
searches (radius ``straight + beta_cutoff * beta`` — farther transitions
score below ``-beta_cutoff`` log-probability and are treated as
unreachable) memoized in a bounded LRU cache shared across points and
across :meth:`HmmMapMatcher.match_many` batches.
"""

from __future__ import annotations

import math
import threading
from collections import OrderedDict

import numpy as np

from ..._validation import check_positive
from ...datatypes import RoadNetwork, Trajectory

__all__ = ["HmmMapMatcher"]


class HmmMapMatcher:
    """Match GPS trajectories to road-network paths.

    **Thread-safety contract:** :meth:`match`, :meth:`match_many`,
    :meth:`matched_path`, :meth:`cache_info` and :meth:`clear_cache`
    are safe to call from many threads on one shared matcher.  The
    distance LRU is lock-guarded, and cached rows are masked down to
    each request's cutoff, so results are byte-identical to a
    single-threaded matcher regardless of interleaving.

    Parameters
    ----------
    network:
        The road network.
    sigma:
        GPS noise standard deviation (emission scale).
    beta:
        Transition tolerance: expected discrepancy between network
        distance and straight-line distance.
    candidate_radius:
        Max distance from a point to a candidate edge.
    max_candidates:
        Keep only the closest candidates per point (for speed).
    beta_cutoff:
        Dijkstra search radius in units of ``beta`` beyond the
        straight-line step distance.  Transitions whose detour exceeds
        this many betas carry log-probability below ``-beta_cutoff`` and
        are treated as unreachable.  ``None`` disables the bound
        (exhaustive single-source searches, the pre-index behavior).
    distance_cache_size:
        Max number of per-node Dijkstra results kept in the LRU cache.
    """

    def __init__(self, network, *, sigma=0.3, beta=1.0,
                 candidate_radius=None, max_candidates=8,
                 beta_cutoff=30.0, distance_cache_size=4096):
        if not isinstance(network, RoadNetwork):
            raise TypeError("network must be a RoadNetwork")
        self.network = network
        self.sigma = float(check_positive(sigma, "sigma"))
        self.beta = float(check_positive(beta, "beta"))
        self.candidate_radius = (
            float(candidate_radius) if candidate_radius is not None
            else 5.0 * self.sigma
        )
        self.max_candidates = int(check_positive(max_candidates,
                                                 "max_candidates"))
        self.beta_cutoff = (
            float(check_positive(beta_cutoff, "beta_cutoff"))
            if beta_cutoff is not None else None
        )
        self.distance_cache_size = int(check_positive(
            distance_cache_size, "distance_cache_size"))
        self._cache_lock = threading.RLock()
        self._distance_cache = OrderedDict()
        self._cache_hits = 0
        self._cache_misses = 0
        self._published_hits = 0
        self._published_misses = 0

    def __getstate__(self):
        """Pickle without the lock or the warm LRU (rebuilt lazily)."""
        state = self.__dict__.copy()
        state.pop("_cache_lock", None)
        state["_distance_cache"] = OrderedDict()
        state["_cache_hits"] = state["_cache_misses"] = 0
        state["_published_hits"] = state["_published_misses"] = 0
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._cache_lock = threading.RLock()

    # -- internals -----------------------------------------------------------

    def _distances_from(self, node, cutoff=None):
        """Bounded single-source distance *array*, memoized per node (LRU).

        Returns the :meth:`RoadNetwork.dijkstra_array` row for ``node``
        (``inf`` beyond the cutoff / unreachable).  A cached result
        computed with a larger (or unbounded) cutoff serves any smaller
        request *masked down to that cutoff*, so the returned row is
        byte-identical to a fresh bounded search no matter what the
        cache happens to hold; a larger request recomputes and replaces
        the entry.

        Thread-safe: cache probes, LRU reordering, eviction and the
        hit/miss counters all happen under the cache lock.  The Dijkstra
        itself runs *outside* the lock — two threads missing on the same
        node may duplicate that work, but the cache never corrupts and
        the counters still account every lookup exactly once.
        """
        with self._cache_lock:
            entry = self._distance_cache.get(node)
            if entry is not None:
                cached_cutoff, distances = entry
                if cached_cutoff is None or (
                        cutoff is not None and cached_cutoff >= cutoff):
                    self._distance_cache.move_to_end(node)
                    self._cache_hits += 1
                    if cutoff is not None and (
                            cached_cutoff is None
                            or cached_cutoff > cutoff):
                        return np.where(distances <= cutoff,
                                        distances, np.inf)
                    return distances
            self._cache_misses += 1
        distances = self.network.dijkstra_array(node, cutoff=cutoff)
        with self._cache_lock:
            self._distance_cache[node] = (cutoff, distances)
            self._distance_cache.move_to_end(node)
            while len(self._distance_cache) > self.distance_cache_size:
                self._distance_cache.popitem(last=False)
        return distances

    def _cutoff_for(self, straight):
        """Dijkstra radius for a step of straight-line length ``straight``.

        Quantized *up* to 1/8 of the ``beta_cutoff * beta`` margin so
        consecutive steps with slightly different straight-line gaps ask
        for the same radius and share one cache entry per node, instead
        of forcing an upgrade-recompute for every fractionally larger
        request.
        """
        if self.beta_cutoff is None:
            return None
        quantum = self.beta_cutoff * self.beta / 8.0
        exact = straight + self.beta_cutoff * self.beta
        return quantum * math.ceil(exact / quantum)

    def _publish_cache_metrics(self):
        """Flush hit/miss deltas to the global metrics registry.

        Called once per matched trajectory (not per lookup) so the
        Dijkstra hot loop never pays for a labeled counter; the
        ``fusion.distance_cache_lookups_total`` series therefore lags
        the in-flight trace by at most one flush.

        The delta read and the published-watermark advance happen
        atomically under the cache lock, so concurrent flushers never
        double- or under-count a lookup; the (thread-safe) counter
        increments run outside the lock.
        """
        from ...observability.metrics import get_registry

        with self._cache_lock:
            hits = self._cache_hits - self._published_hits
            misses = self._cache_misses - self._published_misses
            if not hits and not misses:
                return
            self._published_hits = self._cache_hits
            self._published_misses = self._cache_misses
        counter = get_registry().counter(
            "fusion.distance_cache_lookups_total",
            "HmmMapMatcher distance-LRU lookups by outcome")
        if hits:
            counter.inc(hits, outcome="hit")
        if misses:
            counter.inc(misses, outcome="miss")

    def cache_info(self):
        """Distance-cache observability: hits, misses, size, maxsize."""
        self._publish_cache_metrics()
        with self._cache_lock:
            return {
                "hits": self._cache_hits,
                "misses": self._cache_misses,
                "size": len(self._distance_cache),
                "maxsize": self.distance_cache_size,
            }

    def clear_cache(self):
        self._publish_cache_metrics()
        with self._cache_lock:
            self._distance_cache.clear()
            self._cache_hits = 0
            self._cache_misses = 0
            self._published_hits = 0
            self._published_misses = 0

    def _route_distance(self, candidate_a, candidate_b, cutoff=None):
        """Network distance between two on-edge positions."""
        (u1, v1, _, f1) = candidate_a
        (u2, v2, _, f2) = candidate_b
        length_a = self.network.edge_length(u1, v1)
        length_b = self.network.edge_length(u2, v2)
        if (u1, v1) == (u2, v2) and f2 >= f1:
            return (f2 - f1) * length_a
        remaining = (1.0 - f1) * length_a
        index_of, _ = self.network.node_index()
        through = self._distances_from(v1, cutoff)[index_of[u2]]
        if math.isinf(through):
            return math.inf
        return remaining + through + f2 * length_b

    def _candidates(self, point):
        found = self.network.candidate_edges(point, self.candidate_radius)
        return found[: self.max_candidates]

    def _layers(self, trajectory):
        """Per-point candidate layers, emission arrays, geometry arrays.

        The geometry arrays (one dict per layer: node indices ``u`` /
        ``v``, exit node objects, fractions, edge lengths) are built
        once here so every Viterbi step works on prefabricated numpy
        arrays instead of re-deriving them from the candidate tuples.
        """
        if not isinstance(trajectory, Trajectory):
            raise TypeError("trajectory must be a Trajectory")
        index_of, _ = self.network.node_index()
        points = [(p.x, p.y) for p in trajectory]
        layers = []
        emissions = []
        arrays = []
        for index, point in enumerate(points):
            candidates = self._candidates(point)
            if not candidates:
                raise ValueError(
                    f"no candidate edge within {self.candidate_radius} of "
                    f"point {index}; the trajectory is off the map"
                )
            layers.append(candidates)
            distances = np.array([c[2] for c in candidates])
            emissions.append(-0.5 * (distances / self.sigma) ** 2)
            lengths = np.array([
                self.network.edge_length(u, v) for u, v, _, _ in candidates
            ])
            arrays.append({
                "u": np.array([index_of[u] for u, _, _, _ in candidates],
                              dtype=np.intp),
                "v": np.array([index_of[v] for _, v, _, _ in candidates],
                              dtype=np.intp),
                "exit_nodes": [v for _, v, _, _ in candidates],
                "frac": np.array([f for _, _, _, f in candidates]),
                "length": lengths,
            })
        return points, layers, emissions, arrays

    def _transition_matrix(self, previous, current, straight):
        """Log transition probabilities as a ``(k_prev, k_cur)`` matrix.

        Entry ``(i, j)`` is ``-|route_ij - straight| / beta`` with
        ``-inf`` for pairs not connected within the Dijkstra cutoff.
        ``previous`` / ``current`` are the per-layer geometry dicts from
        :meth:`_layers`; the whole matrix is one broadcast expression
        over cached distance rows.
        """
        cutoff = self._cutoff_for(straight)
        remaining = (1.0 - previous["frac"]) * previous["length"]
        entry_cost = current["frac"] * current["length"]
        through = np.vstack([
            self._distances_from(node, cutoff)[current["u"]]
            for node in previous["exit_nodes"]
        ])
        route = remaining[:, None] + through + entry_cost[None, :]
        same_edge = (
            (previous["u"][:, None] == current["u"][None, :])
            & (previous["v"][:, None] == current["v"][None, :])
            & (current["frac"][None, :] >= previous["frac"][:, None])
        )
        if same_edge.any():
            along = (current["frac"][None, :] - previous["frac"][:, None]) \
                * previous["length"][:, None]
            route = np.where(same_edge, along, route)
        return -np.abs(route - straight) / self.beta

    # -- public API -------------------------------------------------------------

    def match(self, trajectory):
        """Viterbi-decode the most likely candidate sequence.

        Returns
        -------
        list
            One ``(u, v, distance, fraction)`` candidate per GPS point.

        Raises
        ------
        ValueError
            If some point has no candidate edge within radius (increase
            ``candidate_radius``).
        """
        points, layers, emissions, arrays = self._layers(trajectory)

        scores = emissions[0]
        backpointers = []
        for step in range(1, len(layers)):
            straight = math.hypot(
                points[step][0] - points[step - 1][0],
                points[step][1] - points[step - 1][1],
            )
            transitions = self._transition_matrix(
                arrays[step - 1], arrays[step], straight)
            totals = scores[:, None] + transitions
            pointers = np.argmax(totals, axis=0)
            scores = totals[pointers, np.arange(totals.shape[1])] \
                + emissions[step]
            backpointers.append(pointers)
            if np.all(np.isneginf(scores)):
                raise ValueError(
                    f"no connected matching through point {step}; "
                    "the network may be disconnected along the trace"
                )

        best = int(np.argmax(scores))
        chosen = [best]
        for pointers in reversed(backpointers):
            best = int(pointers[best])
            chosen.append(best)
        chosen.reverse()
        self._publish_cache_metrics()
        return [layers[i][c] for i, c in enumerate(chosen)]

    def match_many(self, trajectories):
        """Batch-match trajectories, sharing the distance cache.

        Fleet-scale serving entry point: consecutive trajectories over
        the same region reuse each other's bounded Dijkstra results, so
        throughput grows superlinearly versus matching each trace with a
        cold matcher.  Returns one :meth:`match` result per trajectory.
        """
        return [self.match(trajectory) for trajectory in trajectories]

    def _match_reference(self, trajectory):
        """Pre-vectorization per-pair Viterbi (reference oracle).

        Identical model with unbounded Dijkstra searches and pure-Python
        loops; kept for equivalence tests and the E26 benchmark.
        """
        points, layers, emissions_arrays, _ = self._layers(trajectory)
        scores = list(emissions_arrays[0])
        backpointers = []
        for step in range(1, len(layers)):
            straight = math.hypot(
                points[step][0] - points[step - 1][0],
                points[step][1] - points[step - 1][1],
            )
            new_scores = []
            pointers = []
            for j, candidate in enumerate(layers[step]):
                best_score, best_prev = -math.inf, 0
                for prev_index, previous in enumerate(layers[step - 1]):
                    route = self._route_distance(previous, candidate)
                    if math.isinf(route):
                        continue
                    transition = -abs(route - straight) / self.beta
                    score = scores[prev_index] + transition
                    if score > best_score:
                        best_score, best_prev = score, prev_index
                new_scores.append(best_score
                                  + emissions_arrays[step][j])
                pointers.append(best_prev)
            scores = new_scores
            backpointers.append(pointers)
            if all(math.isinf(-s) for s in scores):
                raise ValueError(
                    f"no connected matching through point {step}; "
                    "the network may be disconnected along the trace"
                )

        best = int(np.argmax(scores))
        chosen = [best]
        for pointers in reversed(backpointers):
            best = pointers[best]
            chosen.append(best)
        chosen.reverse()
        return [layers[i][c] for i, c in enumerate(chosen)]

    def matched_path(self, trajectory):
        """The full node path the vehicle most likely travelled.

        Consecutive matched edges are stitched with network shortest
        paths, and repeated nodes from staying on one edge are collapsed.
        """
        candidates = self.match(trajectory)
        path = []

        def extend(nodes):
            for node in nodes:
                if not path or path[-1] != node:
                    path.append(node)

        previous_edge = None
        for index, (u, v, _, fraction) in enumerate(candidates):
            edge = (u, v)
            if edge == previous_edge:
                continue
            if previous_edge is None:
                # A first match sitting at the far end of its edge means
                # the vehicle effectively started at node v; adding u
                # would prepend a phantom segment.
                if fraction >= 0.99:
                    extend([v])
                else:
                    extend([u, v])
            else:
                connector = self.network.shortest_path(previous_edge[1], u)
                extend(connector)
                extend([v])
            previous_edge = edge

        # Collapse immediate backtracks (a, b, a -> a), an artifact of
        # matching to the reverse twin of a bidirectional edge.
        changed = True
        while changed and len(path) >= 3:
            changed = False
            for index in range(len(path) - 2):
                if path[index] == path[index + 2]:
                    del path[index + 1:index + 3]
                    changed = True
                    break

        if len(path) < 2:
            # Entire trace matched to a single edge.
            u, v, _, _ = candidates[0]
            path = [u, v]
        return path
