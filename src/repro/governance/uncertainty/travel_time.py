"""Time-varying uncertain road-network models (paper §II-B).

Traffic cost uncertainty is modeled by ``(I, D)`` pairs — travel cost
follows distribution ``D`` within time interval ``I``.  The paper
contrasts two paradigms:

* the **edge-centric** paradigm [15] assigns a distribution to every
  edge and treats edges as independent; composing a path means
  convolving the edge distributions — cheap, but it ignores the
  correlation between consecutive edges, so path variance is
  systematically misestimated when congestion is correlated;
* the **path-centric** paradigm (PACE [4], [5]) additionally learns
  joint distributions of frequently traversed *sub-paths*; a query path
  is covered with the longest available sub-paths, which captures the
  correlations inside each covered stretch and "balances efficiency and
  precision".

Both models are fit from trips — ``(node_path, edge_times,
departure_minute)`` triples produced either by the trajectory simulator
or by map-matched GPS traces.
"""

from __future__ import annotations

import numpy as np

from ..._validation import check_positive, trapezoid
from .distributions import Histogram

__all__ = [
    "TimeVaryingDistribution",
    "EdgeCentricModel",
    "PathCentricModel",
    "wasserstein_distance",
]

#: Whole-day fallback interval (minutes).
_FULL_DAY = ((0.0, 24 * 60.0),)


def wasserstein_distance(first, second, *, n_grid=400):
    """Wasserstein-1 distance between two histogram distributions.

    Computed as the integral of the absolute CDF difference on a shared
    grid; the metric used to score distribution estimates in E5.
    """
    low = min(first.min(), second.min())
    high = max(first.max(), second.max())
    if high <= low:
        return 0.0
    grid = np.linspace(low, high, int(n_grid))
    gap = np.abs(first.cdf(grid) - second.cdf(grid))
    return float(trapezoid(gap, grid))


class TimeVaryingDistribution:
    """A piecewise-constant distribution over intervals of the day.

    Parameters
    ----------
    intervals:
        Sequence of ``(start_minute, end_minute)`` pairs partitioning
        (part of) the day; lookups outside every interval fall back to
        the nearest one.
    distributions:
        One :class:`Histogram` per interval.
    """

    def __init__(self, intervals, distributions):
        intervals = [tuple(map(float, pair)) for pair in intervals]
        if len(intervals) != len(distributions):
            raise ValueError("intervals and distributions must align")
        if not intervals:
            raise ValueError("need at least one interval")
        for start, end in intervals:
            if end <= start:
                raise ValueError(f"empty interval ({start}, {end})")
        self.intervals = intervals
        self.distributions = list(distributions)

    def at(self, minute):
        """The distribution in force at ``minute`` (of day)."""
        minute = float(minute) % (24 * 60)
        for (start, end), distribution in zip(self.intervals,
                                              self.distributions):
            if start <= minute < end:
                return distribution
        # Fall back to the interval whose midpoint is closest.
        gaps = [
            abs((start + end) / 2 - minute)
            for start, end in self.intervals
        ]
        return self.distributions[int(np.argmin(gaps))]


class _TraversalStore:
    """Shared bookkeeping: per-key, per-interval traversal-time samples.

    ``representation`` selects how the empirical samples are summarized
    — ``"histogram"`` (default) or ``"gmm"`` (a Gaussian mixture fit by
    EM, then discretized so the Histogram algebra still applies); the
    two options the paper names for uncertainty quantification.
    """

    def __init__(self, intervals, n_bins, representation="histogram",
                 n_components=2):
        if representation not in ("histogram", "gmm"):
            raise ValueError(
                f"representation must be 'histogram' or 'gmm', "
                f"got {representation!r}"
            )
        self.intervals = [tuple(map(float, pair)) for pair in intervals]
        self.n_bins = int(n_bins)
        self.representation = representation
        self.n_components = int(n_components)
        self._samples = {}

    def _interval_index(self, minute):
        minute = float(minute) % (24 * 60)
        for index, (start, end) in enumerate(self.intervals):
            if start <= minute < end:
                return index
        midpoints = [
            abs((start + end) / 2 - minute) for start, end in self.intervals
        ]
        return int(np.argmin(midpoints))

    def add(self, key, minute, value):
        bucket = self._samples.setdefault(key, {})
        bucket.setdefault(self._interval_index(minute), []).append(
            float(value))

    def count(self, key):
        bucket = self._samples.get(key)
        if not bucket:
            return 0
        return sum(len(samples) for samples in bucket.values())

    def _summarize(self, samples):
        samples = np.asarray(samples)
        if self.representation == "gmm" and \
                len(samples) >= 3 * self.n_components:
            from .distributions import GaussianMixture

            mixture = GaussianMixture.fit(
                samples, self.n_components,
                rng=np.random.default_rng(len(samples)))
            return mixture.to_histogram(self.n_bins)
        return Histogram.from_samples(samples, n_bins=self.n_bins)

    def distribution(self, key):
        """Build the fitted :class:`TimeVaryingDistribution` for ``key``."""
        bucket = self._samples.get(key)
        if not bucket:
            return None
        pooled = [v for samples in bucket.values() for v in samples]
        fallback = self._summarize(pooled)
        distributions = []
        for index in range(len(self.intervals)):
            samples = bucket.get(index)
            if samples:
                distributions.append(self._summarize(samples))
            else:
                distributions.append(fallback)
        return TimeVaryingDistribution(self.intervals, distributions)


class EdgeCentricModel:
    """Per-edge ``(I, D)`` travel-time distributions, edges independent.

    Parameters
    ----------
    intervals:
        Day partition; defaults to one whole-day interval.
    n_bins:
        Histogram resolution.
    """

    def __init__(self, *, intervals=_FULL_DAY, n_bins=25,
                 representation="histogram", n_components=2):
        check_positive(n_bins, "n_bins")
        self._store = _TraversalStore(intervals, n_bins,
                                      representation, n_components)
        self._fitted = {}

    def fit(self, trips):
        """Fit from ``(path, edge_times, departure_minute)`` triples."""
        n_trips = 0
        for path, edge_times, departure in trips:
            n_trips += 1
            minute = float(departure)
            edges = list(zip(path, path[1:]))
            if len(edge_times) != len(edges):
                raise ValueError("edge_times must match the path edges")
            for edge, duration in zip(edges, edge_times):
                self._store.add(edge, minute, duration)
                minute += float(duration)
        if n_trips == 0:
            raise ValueError("fit needs at least one trip")
        self._fitted = {
            key: self._store.distribution(key)
            for key in self._store._samples
        }
        return self

    @property
    def n_edges(self):
        return len(self._fitted)

    def edge_distribution(self, u, v, minute=0.0):
        """The fitted distribution of edge ``(u, v)`` at ``minute``."""
        fitted = self._fitted.get((u, v))
        if fitted is None:
            raise KeyError(f"no traversals observed for edge ({u!r}, {v!r})")
        return fitted.at(minute)

    def path_distribution(self, path, departure_minute=0.0):
        """Convolve edge distributions along ``path`` (independence).

        The clock is advanced by each edge's mean so later edges use the
        right interval.
        """
        edges = list(zip(path, path[1:]))
        if not edges:
            raise ValueError("path needs at least one edge")
        minute = float(departure_minute)
        result = None
        for u, v in edges:
            distribution = self.edge_distribution(u, v, minute)
            result = (distribution if result is None
                      else result.convolve(distribution))
            minute += distribution.mean()
        return result


class PathCentricModel:
    """PACE-style joint distributions over frequent sub-paths.

    Sub-paths of length up to ``max_subpath_edges`` that were traversed
    at least ``min_support`` times get their *own* empirical travel-time
    distribution, capturing the correlation between their edges.  A
    query path is covered greedily with the longest supported sub-paths;
    segments are then convolved (independent across segments only).

    Length-1 sub-paths (single edges) are always retained, so any path
    whose edges were observed can be answered — with edge-centric
    accuracy in the worst case and full-path accuracy in the best.
    """

    def __init__(self, *, max_subpath_edges=6, min_support=5,
                 intervals=_FULL_DAY, n_bins=25,
                 representation="histogram", n_components=2):
        if max_subpath_edges < 1:
            raise ValueError("max_subpath_edges must be >= 1")
        if min_support < 1:
            raise ValueError("min_support must be >= 1")
        self.max_subpath_edges = int(max_subpath_edges)
        self.min_support = int(min_support)
        self._store = _TraversalStore(intervals, n_bins,
                                      representation, n_components)
        self._fitted = {}

    def fit(self, trips):
        """Fit from ``(path, edge_times, departure_minute)`` triples."""
        n_trips = 0
        for path, edge_times, departure in trips:
            n_trips += 1
            edges = list(zip(path, path[1:]))
            if len(edge_times) != len(edges):
                raise ValueError("edge_times must match the path edges")
            starts = np.concatenate([[0.0], np.cumsum(edge_times)])
            for begin in range(len(edges)):
                limit = min(len(edges), begin + self.max_subpath_edges)
                for end in range(begin + 1, limit + 1):
                    key = tuple(path[begin:end + 1])
                    minute = float(departure) + float(starts[begin])
                    duration = float(starts[end] - starts[begin])
                    self._store.add(key, minute, duration)
        if n_trips == 0:
            raise ValueError("fit needs at least one trip")
        self._fitted = {}
        for key in self._store._samples:
            enough = self._store.count(key) >= self.min_support
            if len(key) == 2 or enough:
                self._fitted[key] = self._store.distribution(key)
        return self

    @property
    def n_subpaths(self):
        return len(self._fitted)

    def coverage(self, path):
        """Greedy longest-sub-path cover of ``path``.

        Returns a list of node tuples whose concatenation is the path.
        """
        path = list(path)
        if len(path) < 2:
            raise ValueError("path needs at least one edge")
        pieces = []
        position = 0
        while position < len(path) - 1:
            found = None
            longest = min(len(path) - 1 - position, self.max_subpath_edges)
            for span in range(longest, 0, -1):
                key = tuple(path[position:position + span + 1])
                if key in self._fitted:
                    found = key
                    break
            if found is None:
                edge = (path[position], path[position + 1])
                raise KeyError(f"no traversals observed for edge {edge!r}")
            pieces.append(found)
            position += len(found) - 1
        return pieces

    def path_distribution(self, path, departure_minute=0.0):
        """Convolve the covering segments' joint distributions."""
        minute = float(departure_minute)
        result = None
        for piece in self.coverage(path):
            distribution = self._fitted[piece].at(minute)
            result = (distribution if result is None
                      else result.convolve(distribution))
            minute += distribution.mean()
        return result
