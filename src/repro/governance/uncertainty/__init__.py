"""Uncertainty quantification: cost distributions and the edge-centric
vs. path-centric travel-time paradigms."""

from .distributions import GaussianMixture, Histogram
from .travel_time import (
    EdgeCentricModel,
    PathCentricModel,
    TimeVaryingDistribution,
    wasserstein_distance,
)

__all__ = [
    "EdgeCentricModel",
    "GaussianMixture",
    "Histogram",
    "PathCentricModel",
    "TimeVaryingDistribution",
    "wasserstein_distance",
]
