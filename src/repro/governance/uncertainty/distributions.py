"""Cost distributions for uncertainty quantification (paper §II-B).

The paper prescribes histograms and Gaussian mixture models because both
"approximate distributions without assumptions on the type of
distribution".  These classes are the uncertainty currency of the whole
library: the governance layer *produces* them (travel-time
distributions per edge or path), and the decision layer *consumes* them
(expected utility, stochastic dominance, on-time-arrival probability).

Both distribution families support the operations the downstream layers
need:

* moments, CDF, quantiles, sampling,
* ``convolve`` — the distribution of a *sum* of independent costs
  (how edge-centric models compose a path distribution),
* stochastic-dominance comparisons (module
  :mod:`repro.decision.stochastic` builds on the CDFs exposed here).
"""

from __future__ import annotations

import math

import numpy as np

from ..._validation import (
    as_float_array,
    check_positive,
    check_probability_vector,
    ensure_rng,
)

__all__ = ["Histogram", "GaussianMixture"]


class Histogram:
    """A discrete distribution over equi-width bins.

    The representation is a regular grid: ``support[i]`` is the center of
    bin ``i`` and all bins share one ``width``.  Regularity is what makes
    convolution exact and cheap (probability vectors convolve directly),
    which the stochastic-routing experiments lean on heavily.

    Parameters
    ----------
    start:
        Center of the first bin.
    width:
        Common bin width (> 0).
    probabilities:
        Non-negative weights, normalized to sum to one.
    """

    def __init__(self, start, width, probabilities):
        self.width = float(check_positive(width, "width"))
        self.start = float(start)
        self.probabilities = check_probability_vector(probabilities,
                                                      "probabilities")

    # -- construction ------------------------------------------------------

    @classmethod
    def from_samples(cls, samples, n_bins=30, *, bounds=None):
        """Estimate a histogram from empirical samples.

        Parameters
        ----------
        samples:
            1-D array of observations.
        n_bins:
            Number of bins.
        bounds:
            Optional ``(low, high)`` range; defaults to the sample range
            (slightly padded so no sample falls outside).
        """
        data = as_float_array(samples, "samples", ndim=1)
        if n_bins < 1:
            raise ValueError(f"n_bins must be >= 1, got {n_bins}")
        if bounds is None:
            low, high = float(data.min()), float(data.max())
        else:
            low, high = map(float, bounds)
            if high <= low:
                raise ValueError("bounds must satisfy low < high")
        if high == low:
            high = low + 1e-9
        span = high - low
        low -= 1e-9 * span
        high += 1e-9 * span
        counts, edges = np.histogram(data, bins=n_bins, range=(low, high))
        width = edges[1] - edges[0]
        total = counts.sum()
        if total == 0:
            raise ValueError("no samples fall inside the given bounds")
        return cls(edges[0] + width / 2, width, counts / total)

    @classmethod
    def point_mass(cls, value, width=1e-6):
        """A degenerate distribution concentrated at ``value``."""
        return cls(value, width, [1.0])

    # -- protocol -----------------------------------------------------------

    def __len__(self):
        return len(self.probabilities)

    def __repr__(self):
        return (
            f"Histogram(bins={len(self)}, mean={self.mean():.3f}, "
            f"std={self.std():.3f})"
        )

    @property
    def support(self):
        """Bin centers, shape ``(n_bins,)``."""
        return self.start + self.width * np.arange(len(self.probabilities))

    # -- moments ------------------------------------------------------------

    def mean(self):
        return float(self.support @ self.probabilities)

    def variance(self):
        centered = self.support - self.mean()
        return float((centered ** 2) @ self.probabilities)

    def std(self):
        return math.sqrt(max(self.variance(), 0.0))

    def min(self):
        """Smallest support value with positive probability."""
        index = int(np.flatnonzero(self.probabilities > 0)[0])
        return float(self.support[index])

    def max(self):
        index = int(np.flatnonzero(self.probabilities > 0)[-1])
        return float(self.support[index])

    def atoms(self):
        """``(values, probabilities)`` of the positive-mass bins only.

        The CDF is a step function jumping exactly at these values, so
        exact step-function computations (Wasserstein integrals,
        dominance grids) need nothing else — zero-mass padding bins
        carry no information.
        """
        mask = self.probabilities > 0
        return self.support[mask], self.probabilities[mask]

    def trimmed(self):
        """This distribution with leading/trailing zero-mass bins
        dropped (interior zeros stay: the grid must remain regular)."""
        positive = np.flatnonzero(self.probabilities > 0)
        first, last = int(positive[0]), int(positive[-1])
        if first == 0 and last == len(self.probabilities) - 1:
            return self
        return Histogram(self.start + first * self.width, self.width,
                         self.probabilities[first:last + 1])

    # -- probability queries ---------------------------------------------------

    def cdf(self, x):
        """P(X <= x), treating mass as concentrated at bin centers."""
        grid = self.support
        x = np.asarray(x, dtype=float)
        cumulative = np.concatenate([[0.0], np.cumsum(self.probabilities)])
        indices = np.searchsorted(grid, x, side="right")
        result = cumulative[indices]
        return float(result) if result.ndim == 0 else result

    def sf(self, x):
        """P(X > x), the survival function (on-time-arrival probability
        when X is a travel time and x a deadline uses ``1 - sf``)."""
        return 1.0 - self.cdf(x)

    def quantile(self, q):
        """Smallest support value with CDF >= q."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"q must be in [0, 1], got {q!r}")
        cumulative = np.cumsum(self.probabilities)
        index = int(np.searchsorted(cumulative, q - 1e-12))
        index = min(index, len(self.probabilities) - 1)
        return float(self.support[index])

    def expectation(self, function):
        """E[function(X)] for a vectorized ``function`` (utility support)."""
        return float(np.asarray(function(self.support)) @ self.probabilities)

    def sample(self, n_samples, rng=None):
        """Draw samples (bin centers jittered uniformly within the bin)."""
        rng = ensure_rng(rng)
        indices = rng.choice(len(self.probabilities), size=int(n_samples),
                             p=self.probabilities)
        jitter = rng.uniform(-self.width / 2, self.width / 2,
                             size=int(n_samples))
        return self.support[indices] + jitter

    # -- algebra ------------------------------------------------------------------

    def rebinned(self, width, *, start=None):
        """Re-express this histogram on a grid of the given ``width``.

        Mass of each old bin is assigned to the nearest new bin center.
        """
        check_positive(width, "width")
        if start is None:
            start = self.start
        old = self.support
        indices = np.round((old - start) / width).astype(int)
        offset = indices.min()
        indices -= offset
        new_start = start + offset * width
        probabilities = np.zeros(indices.max() + 1)
        np.add.at(probabilities, indices, self.probabilities)
        return Histogram(new_start, width, probabilities)

    def convolve(self, other):
        """Distribution of the sum of two *independent* costs.

        This is exactly how the edge-centric paradigm [15] composes a
        path distribution from edge distributions.  The coarser of the
        two bin widths is used for the result.
        """
        if not isinstance(other, Histogram):
            raise TypeError("can only convolve with another Histogram")
        width = max(self.width, other.width)
        a = self.rebinned(width)
        b = other.rebinned(width, start=a.start)
        probabilities = np.convolve(a.probabilities, b.probabilities)
        return Histogram(a.start + b.start, width, probabilities)

    def shift(self, offset):
        """The distribution of ``X + offset``."""
        return Histogram(self.start + float(offset), self.width,
                         self.probabilities)

    @staticmethod
    def mixture(components, weights):
        """Weighted mixture of histograms on a common grid."""
        if len(components) != len(weights):
            raise ValueError("components and weights must align")
        if not components:
            raise ValueError("mixture needs at least one component")
        weights = check_probability_vector(weights, "weights")
        width = max(c.width for c in components)
        start = min(c.start for c in components)
        rebinned = [c.rebinned(width, start=start) for c in components]
        offsets = [
            int(round((component.start - start) / width))
            for component in rebinned
        ]
        length = max(
            offset + len(component)
            for offset, component in zip(offsets, rebinned)
        )
        probabilities = np.zeros(length)
        for component, weight, offset in zip(rebinned, weights, offsets):
            stop = offset + len(component)
            probabilities[offset:stop] += weight * component.probabilities
        return Histogram(start, width, probabilities)

    def truncated(self, low=None, high=None):
        """Condition on ``low <= X <= high`` (renormalized)."""
        grid = self.support
        keep = np.ones(len(grid), dtype=bool)
        if low is not None:
            keep &= grid >= low
        if high is not None:
            keep &= grid <= high
        if not keep.any() or self.probabilities[keep].sum() <= 0:
            raise ValueError("truncation removes all probability mass")
        probabilities = np.where(keep, self.probabilities, 0.0)
        first = int(np.flatnonzero(keep)[0])
        return Histogram(float(grid[first]), self.width,
                         probabilities[keep])


class GaussianMixture:
    """A univariate Gaussian mixture fit by expectation-maximization.

    The second distribution family the paper calls out for uncertainty
    quantification.  Used where smooth tails matter (demand forecasting,
    E23) and as an alternative representation in the uncertainty layer.
    """

    def __init__(self, means, stds, weights):
        self.means = as_float_array(means, "means", ndim=1)
        self.stds = as_float_array(stds, "stds", ndim=1)
        if np.any(self.stds <= 0):
            raise ValueError("component stds must be positive")
        self.weights = check_probability_vector(weights, "weights")
        if not len(self.means) == len(self.stds) == len(self.weights):
            raise ValueError("means, stds and weights must align")

    @property
    def n_components(self):
        return len(self.weights)

    def __repr__(self):
        return (
            f"GaussianMixture(components={self.n_components}, "
            f"mean={self.mean():.3f}, std={self.std():.3f})"
        )

    # -- fitting -----------------------------------------------------------

    @classmethod
    def fit(cls, samples, n_components=2, *, n_iterations=100, tol=1e-6,
            rng=None):
        """Fit by EM with k-means++-style initialization.

        Degenerate components (vanishing responsibility or variance) are
        re-seeded from the data, so the fit is robust to unlucky starts.
        """
        data = as_float_array(samples, "samples", ndim=1)
        if n_components < 1:
            raise ValueError("n_components must be >= 1")
        if len(data) < n_components:
            raise ValueError("need at least one sample per component")
        rng = ensure_rng(rng)

        spread = data.std() if data.std() > 0 else 1.0
        means = np.quantile(
            data, np.linspace(0.1, 0.9, n_components)
        ) + rng.normal(0, 1e-3 * spread, n_components)
        stds = np.full(n_components, max(spread / n_components, 1e-3))
        weights = np.full(n_components, 1.0 / n_components)

        previous = -np.inf
        for _ in range(int(n_iterations)):
            # E step: responsibilities.
            log_density = (
                -0.5 * ((data[:, None] - means) / stds) ** 2
                - np.log(stds)
                - 0.5 * math.log(2 * math.pi)
                + np.log(weights)
            )
            peak = log_density.max(axis=1, keepdims=True)
            density = np.exp(log_density - peak)
            total = density.sum(axis=1, keepdims=True)
            responsibility = density / total
            log_likelihood = float((np.log(total) + peak).sum())

            # M step.
            mass = responsibility.sum(axis=0)
            for k in range(n_components):
                if mass[k] < 1e-8:  # dead component: re-seed.
                    means[k] = float(rng.choice(data))
                    stds[k] = max(spread / n_components, 1e-3)
                    mass[k] = 1.0
                    continue
                means[k] = float(responsibility[:, k] @ data / mass[k])
                variance = float(
                    responsibility[:, k] @ (data - means[k]) ** 2 / mass[k]
                )
                stds[k] = math.sqrt(max(variance, 1e-8))
            weights = mass / mass.sum()

            if abs(log_likelihood - previous) < tol:
                break
            previous = log_likelihood
        return cls(means, stds, weights)

    # -- queries --------------------------------------------------------------

    def pdf(self, x):
        x = np.asarray(x, dtype=float)
        density = (
            np.exp(-0.5 * ((x[..., None] - self.means) / self.stds) ** 2)
            / (self.stds * math.sqrt(2 * math.pi))
        )
        result = density @ self.weights
        return float(result) if result.ndim == 0 else result

    def cdf(self, x):
        from scipy.stats import norm

        x = np.asarray(x, dtype=float)
        component = norm.cdf((x[..., None] - self.means) / self.stds)
        result = component @ self.weights
        return float(result) if result.ndim == 0 else result

    def mean(self):
        return float(self.weights @ self.means)

    def variance(self):
        second_moment = self.weights @ (self.stds ** 2 + self.means ** 2)
        return float(second_moment - self.mean() ** 2)

    def std(self):
        return math.sqrt(max(self.variance(), 0.0))

    def quantile(self, q, *, tol=1e-8):
        """Numeric quantile by bisection on the CDF."""
        if not 0.0 < q < 1.0:
            raise ValueError(f"q must be in (0, 1), got {q!r}")
        low = float((self.means - 10 * self.stds).min())
        high = float((self.means + 10 * self.stds).max())
        while high - low > tol * max(1.0, abs(high) + abs(low)):
            middle = (low + high) / 2
            if self.cdf(middle) < q:
                low = middle
            else:
                high = middle
        return (low + high) / 2

    def sample(self, n_samples, rng=None):
        rng = ensure_rng(rng)
        components = rng.choice(self.n_components, size=int(n_samples),
                                p=self.weights)
        return rng.normal(self.means[components], self.stds[components])

    def to_histogram(self, n_bins=60):
        """Discretize onto a regular grid (to interoperate with
        :class:`Histogram` algebra)."""
        low = float((self.means - 5 * self.stds).min())
        high = float((self.means + 5 * self.stds).max())
        edges = np.linspace(low, high, n_bins + 1)
        mass = np.diff(self.cdf(edges))
        width = edges[1] - edges[0]
        return Histogram(edges[0] + width / 2, width, np.maximum(mass, 0.0))
