"""Trace-capture CLI: ``python -m repro.trace``.

Runs a Python script (or the built-in demo) with every
:class:`~repro.core.pipeline.DecisionPipeline` run instrumented, then
writes the collected span tree as ``chrome://tracing`` JSON — open it
in ``chrome://tracing`` or https://ui.perfetto.dev without touching
the script itself::

    python -m repro.trace -o trace.json examples/quickstart.py
    python -m repro.trace --demo -o trace.json --metrics metrics.json
    python -m repro.trace --profile myscript.py -- --my-script-flag

As with ``python -m cProfile``, options for this tool go *before*
the script path; everything after the script (optionally separated
by ``--``) is passed through to the script untouched.

How it works: for the duration of the target script,
``DecisionPipeline.run`` — and ``DecisionPipeline.stream`` plus each
session's ``tick``, so incremental streaming sessions show up as
``tick`` spans wrapping their runs — is wrapped so that

* a shared :class:`~repro.observability.SpanTracer` observes every
  run (composed with the script's own tracer via
  ``CollectingTracer.forward_to`` or :class:`TeeTracer`, so existing
  instrumentation keeps working),
* a fresh :class:`~repro.observability.MetricsRegistry` is installed
  as the process default, capturing engine and hot-path cache series,
* ``--profile`` turns on per-stage profiling (wall/CPU time, memory,
  queue wait) for runs that did not request it themselves.
"""

from __future__ import annotations

import argparse
import contextlib
import json
import runpy
import sys

from .core.events import CollectingTracer
from .core.pipeline import DecisionPipeline
from .core.streaming import IncrementalSession
from .observability import MetricsRegistry, SpanTracer, TeeTracer
from .observability.metrics import use_registry

__all__ = ["TraceCapture", "main"]


class TraceCapture:
    """Instruments every ``DecisionPipeline.run`` inside a ``with``.

    >>> with TraceCapture(profile=True) as capture:   # doctest: +SKIP
    ...     my_script_main()
    >>> capture.spans.export("trace.json")            # doctest: +SKIP
    >>> capture.registry.snapshot()                   # doctest: +SKIP

    Attributes
    ----------
    spans:
        The shared :class:`SpanTracer` every run reports into.
    registry:
        The :class:`MetricsRegistry` installed as process default for
        the duration of the capture.
    reports:
        The :class:`~repro.core.report.RunReport` of every captured
        run, in completion order.
    """

    def __init__(self, *, profile=False):
        self.profile = bool(profile)
        self.spans = SpanTracer()
        self.registry = MetricsRegistry()
        self.reports = []
        self._original_run = None
        self._original_stream = None
        self._original_tick = None
        self._registry_context = None

    def _compose_tracer(self, kwargs):
        """Route the call's tracer (if any) through the span tracer."""
        tracer = kwargs.get("tracer")
        if tracer is None:
            kwargs["tracer"] = self.spans
        elif isinstance(tracer, CollectingTracer):
            # forward_to() keeps injector-generated events
            # (fault_injected) visible to the span tracer too.
            if all(t is not self.spans for t in tracer._forward):
                tracer.forward_to(self.spans)
        else:
            kwargs["tracer"] = TeeTracer(tracer, self.spans)
        return kwargs

    # -- context manager -----------------------------------------------------

    def __enter__(self):
        capture = self

        def traced_run(pipeline, *args, **kwargs):
            capture._compose_tracer(kwargs)
            if capture.profile:
                kwargs.setdefault("profile", True)
            state, report = capture._original_run(
                pipeline, *args, **kwargs)
            capture.reports.append(report)
            return state, report

        def traced_stream(pipeline, *args, **kwargs):
            capture._compose_tracer(kwargs)
            return capture._original_stream(pipeline, *args, **kwargs)

        def traced_tick(session, *args, **kwargs):
            state, report = capture._original_tick(
                session, *args, **kwargs)
            capture.reports.append(report)
            return state, report

        self._original_run = DecisionPipeline.run
        self._original_stream = DecisionPipeline.stream
        self._original_tick = IncrementalSession.tick
        DecisionPipeline.run = traced_run
        DecisionPipeline.stream = traced_stream
        IncrementalSession.tick = traced_tick
        self._registry_context = use_registry(self.registry)
        self._registry_context.__enter__()
        return self

    def __exit__(self, exc_type, exc, tb):
        DecisionPipeline.run = self._original_run
        DecisionPipeline.stream = self._original_stream
        IncrementalSession.tick = self._original_tick
        self._registry_context.__exit__(exc_type, exc, tb)
        return False


def _demo_collect(s):
    s["raw"] = [3.0, None, 5.0]
    return "ok"


def _demo_repair(s):
    s["clean"] = [v if v is not None else 4.0 for v in s["raw"]]
    return "ok"


def _demo_detect(s):
    raise ValueError("detector offline")


def _demo_act(s):
    raise RuntimeError("primary actuator down")


def _demo_hold(s):
    s["action"] = "hold"
    return "held position"


def _demo_window(s):
    s["window_sum"] = float(sum(s["feed"]))
    return "window"


def _demo_window_fold(s, tick):
    s["window_sum"] = s["window_sum"] + float(sum(s["feed"]))
    return "window (fold)"


def _demo_threshold(s):
    s["alert"] = s["window_sum"] > 10.0
    return "threshold"


def _run_demo():
    """A small self-contained pipeline with a scripted fault, so the
    demo trace shows a retry, a skip and a fallback — then a short
    streaming session, so it also shows tick spans with replayed
    (saved) stages and an incremental fold.  Stage functions are
    module-level (not lambdas) so the demo also runs under
    ``REPRO_EXECUTOR=process``."""
    from .core.faults import FaultInjector

    faults = FaultInjector().fail("repair", times=1)
    pipeline = DecisionPipeline("repro.trace demo")
    pipeline.add_data(
        "collect", _demo_collect, reads=(), writes=("raw",))
    pipeline.add_governance(
        "repair", _demo_repair,
        reads=("raw",), writes=("clean",), retries=1, backoff=0.0)
    # The last two stages fail on purpose (the demo trace should show
    # a skip and a fallback), so their declared contracts are never
    # exercised — that staleness is the point here.
    pipeline.add_analytics(  # noqa: RC003
        "detect", _demo_detect,
        reads=("clean",), writes=("scores",), on_error="skip")
    pipeline.add_decision(  # noqa: RC003
        "act", _demo_act,
        reads=("clean",), writes=("action",), on_error="fallback",
        fallback=_demo_hold)
    _, report = pipeline.run(tracer=faults, max_workers=1)
    print(report.render())

    stream = DecisionPipeline("repro.trace demo (stream)")
    stream.add_data(
        "collect", _demo_collect, reads=(), writes=("raw",))
    stream.add_governance(
        "repair", _demo_repair, reads=("raw",), writes=("clean",))
    stream.add_analytics(
        "window", _demo_window, reads=("feed",),
        writes=("window_sum",), incremental=_demo_window_fold)
    stream.add_decision(
        "threshold", _demo_threshold, reads=("window_sum",),
        writes=("alert",))
    session = stream.stream({"feed": [1.0, 2.0]}, max_workers=1)
    session.tick()
    for feed in ([3.0, 4.0], [5.0]):
        _, report = session.tick(changed={"feed": feed})
    print(report.render())


def _run_script(script, script_args):
    argv = [script, *script_args]
    previous_argv = sys.argv
    sys.argv = argv
    try:
        with contextlib.suppress(SystemExit):
            runpy.run_path(script, run_name="__main__")
    finally:
        sys.argv = previous_argv


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro.trace",
        description="Run a script with every DecisionPipeline run "
                    "traced, then export chrome://tracing JSON.",
    )
    parser.add_argument(
        "script", nargs="?",
        help="Python script to run under tracing (mutually exclusive "
             "with --demo)")
    parser.add_argument(
        "script_args", nargs=argparse.REMAINDER,
        help="arguments passed through to the script")
    parser.add_argument(
        "-o", "--output", default="trace.json",
        help="chrome trace JSON output path (default: trace.json)")
    parser.add_argument(
        "--metrics", metavar="PATH", default=None,
        help="also write the MetricsRegistry snapshot as JSON")
    parser.add_argument(
        "--profile", action="store_true",
        help="enable per-stage profiling on every captured run")
    parser.add_argument(
        "--demo", action="store_true",
        help="trace the built-in demo pipeline instead of a script")
    arguments = parser.parse_args(argv)

    if arguments.demo == (arguments.script is not None):
        parser.error("provide exactly one of SCRIPT or --demo")
    script_args = arguments.script_args
    if script_args and script_args[0] == "--":
        script_args = script_args[1:]

    with TraceCapture(profile=arguments.profile) as capture:
        if arguments.demo:
            _run_demo()
        else:
            _run_script(arguments.script, script_args)

    if not capture.reports:
        print("warning: no DecisionPipeline.run() calls were captured",
              file=sys.stderr)

    capture.spans.export(arguments.output)
    n_spans = len(capture.spans.spans())
    n_runs = len(capture.spans.spans(kind="run"))
    print(f"wrote {arguments.output}: {n_spans} spans "
          f"from {n_runs} run(s)")

    if arguments.metrics is not None:
        with open(arguments.metrics, "w", encoding="utf-8") as handle:
            json.dump(capture.registry.snapshot(), handle, indent=2,
                      sort_keys=True)
            handle.write("\n")
        print(f"wrote {arguments.metrics}: "
              f"{len(capture.registry.names())} metric families")

    if arguments.profile and capture.reports:
        print()
        print("profile (wall / cpu / queue-wait):")
        for report in capture.reports:
            for name, profile in report.profiles.items():
                print(f"  {name}: "
                      f"{profile['wall_seconds']:.3f}s / "
                      f"{profile['cpu_seconds']:.3f}s / "
                      f"{profile['queue_wait_seconds']:.3f}s")
    return 0


if __name__ == "__main__":
    sys.exit(main())
