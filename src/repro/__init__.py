"""repro: data-driven decision making with time series and spatio-temporal data.

A full implementation of the "Data-Governance-Analytics-Decision"
paradigm from the ICDE 2025 tutorial by Yang, Liang, Guo and Jensen:

* :mod:`repro.datatypes` -- the data foundations (paper Sec. II-A),
* :mod:`repro.datasets` -- seeded synthetic workloads standing in for the
  paper's proprietary traces,
* :mod:`repro.governance` -- imputation, uncertainty quantification and
  multi-modal fusion (Sec. II-B),
* :mod:`repro.analytics` -- forecasting, anomaly detection and
  classification with the five desired characteristics (Sec. II-C),
* :mod:`repro.decision` -- decision making under uncertainty,
  multi-objective, personalized and learning-based strategies (Sec. II-D),
* :mod:`repro.core` -- the end-to-end pipeline of Figure 1,
* :mod:`repro.serve` -- the request-facing serving layer (batching,
  deadlines, admission control),
* :mod:`repro.benchmarking` -- the unified evaluation harness.
"""

from . import (
    analytics,
    benchmarking,
    core,
    datasets,
    datatypes,
    decision,
    governance,
    observability,
    serve,
)
from .core import (
    CollectingTracer,
    ContractViolation,
    DecisionPipeline,
    FaultInjector,
    IncrementalSession,
    ProcessExecutor,
    RunDeadlineExceeded,
    SerialExecutor,
    StageCache,
    StageFailure,
    StageTimeout,
    ThreadExecutor,
)
from .datatypes import (
    CorrelatedTimeSeries,
    GpsPoint,
    ImageSequence,
    RoadNetwork,
    TimeSeries,
    Trajectory,
)
from .observability import MetricsRegistry, SpanTracer
from .serve import DecisionServer

__version__ = "1.0.0"

__all__ = [
    "CollectingTracer",
    "ContractViolation",
    "CorrelatedTimeSeries",
    "DecisionPipeline",
    "DecisionServer",
    "FaultInjector",
    "GpsPoint",
    "IncrementalSession",
    "MetricsRegistry",
    "ProcessExecutor",
    "RunDeadlineExceeded",
    "SerialExecutor",
    "SpanTracer",
    "StageCache",
    "StageFailure",
    "StageTimeout",
    "ThreadExecutor",
    "ImageSequence",
    "RoadNetwork",
    "TimeSeries",
    "Trajectory",
    "analytics",
    "benchmarking",
    "core",
    "datasets",
    "datatypes",
    "decision",
    "governance",
    "observability",
    "serve",
    "__version__",
]
