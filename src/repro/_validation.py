"""Shared argument-validation helpers.

These helpers centralize the defensive checks used across the library so
that error messages are uniform and informative.  They raise standard
Python exceptions (``TypeError`` / ``ValueError``), never custom ones, so
callers can handle failures with familiar idioms.
"""

from __future__ import annotations

import numbers

import numpy as np

__all__ = [
    "as_float_array",
    "check_fraction",
    "check_positive",
    "check_non_negative",
    "check_probability_vector",
    "ensure_rng",
    "trapezoid",
]

#: Trapezoidal integration, portable across numpy versions:
#: ``np.trapezoid`` only exists on numpy >= 2.0 while the project pins
#: ``numpy>=1.24`` (where the same routine is ``np.trapz``).  This is
#: the one place allowed to touch the numpy spelling directly; the
#: contract linter (rule RC020) bans it everywhere else.
trapezoid = getattr(np, "trapezoid", None) or np.trapz  # noqa: RC020


def as_float_array(values, name, *, ndim=None, allow_empty=False):
    """Convert ``values`` to a float ndarray and validate its shape.

    Parameters
    ----------
    values:
        Anything :func:`numpy.asarray` accepts.
    name:
        Argument name used in error messages.
    ndim:
        If given, the required number of dimensions.
    allow_empty:
        Whether a zero-size array is acceptable.

    Returns
    -------
    numpy.ndarray
        A float64 array (a copy only if conversion required one).
    """
    array = np.asarray(values, dtype=float)
    if ndim is not None and array.ndim != ndim:
        raise ValueError(
            f"{name} must be {ndim}-dimensional, got shape {array.shape}"
        )
    if not allow_empty and array.size == 0:
        raise ValueError(f"{name} must not be empty")
    return array


def check_fraction(value, name, *, inclusive_low=True, inclusive_high=True):
    """Validate that ``value`` lies in [0, 1] (bounds configurable)."""
    if not isinstance(value, numbers.Real) or isinstance(value, bool):
        raise TypeError(f"{name} must be a real number, got {type(value).__name__}")
    low_ok = value >= 0.0 if inclusive_low else value > 0.0
    high_ok = value <= 1.0 if inclusive_high else value < 1.0
    if not (low_ok and high_ok):
        low = "[" if inclusive_low else "("
        high = "]" if inclusive_high else ")"
        raise ValueError(f"{name} must be in {low}0, 1{high}, got {value!r}")
    return float(value)


def check_positive(value, name):
    """Validate that ``value`` is a strictly positive real number."""
    if not isinstance(value, numbers.Real) or isinstance(value, bool):
        raise TypeError(f"{name} must be a real number, got {type(value).__name__}")
    if not value > 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    return value


def check_non_negative(value, name):
    """Validate that ``value`` is a non-negative real number."""
    if not isinstance(value, numbers.Real) or isinstance(value, bool):
        raise TypeError(f"{name} must be a real number, got {type(value).__name__}")
    if value < 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")
    return value


def check_probability_vector(weights, name):
    """Validate and normalize a vector of non-negative weights.

    Returns the weights normalized to sum to one.
    """
    array = as_float_array(weights, name, ndim=1)
    if np.any(array < 0):
        raise ValueError(f"{name} must be non-negative")
    total = array.sum()
    if not np.isfinite(total) or total <= 0:
        raise ValueError(f"{name} must have a positive finite sum, got {total!r}")
    return array / total


def ensure_rng(seed_or_rng):
    """Return a :class:`numpy.random.Generator` for ``seed_or_rng``.

    Accepts ``None`` (fresh nondeterministic generator), an integer seed,
    or an existing generator (returned unchanged so that callers can share
    a stream).
    """
    if isinstance(seed_or_rng, np.random.Generator):
        return seed_or_rng
    return np.random.default_rng(seed_or_rng)
