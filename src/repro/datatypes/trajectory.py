"""Trajectories (paper Definition 3).

A trajectory is a sequence of ``(location, time)`` pairs capturing the
positions of a moving object.  Trajectories are the raw material for map
matching (governance), path representation learning (analytics), and
learning-based routing (decision making), so the type carries the
operations those layers need: resampling, noise injection, length/
duration accessors, and conversion to edge paths once matched to a road
network.
"""

from __future__ import annotations

import math

import numpy as np

from .._validation import ensure_rng

__all__ = ["GpsPoint", "Trajectory"]


class GpsPoint:
    """A single timestamped location sample."""

    __slots__ = ("x", "y", "t")

    def __init__(self, x, y, t):
        self.x = float(x)
        self.y = float(y)
        self.t = float(t)

    def distance_to(self, other):
        """Euclidean distance to another point (planar coordinates)."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def __repr__(self):
        return f"GpsPoint(x={self.x:.3f}, y={self.y:.3f}, t={self.t:.1f})"

    def __eq__(self, other):
        if not isinstance(other, GpsPoint):
            return NotImplemented
        return (self.x, self.y, self.t) == (other.x, other.y, other.t)

    def __hash__(self):
        return hash((self.x, self.y, self.t))


class Trajectory:
    """An ordered sequence of :class:`GpsPoint` with increasing timestamps.

    Parameters
    ----------
    points:
        Iterable of :class:`GpsPoint` or ``(x, y, t)`` triples.
    object_id:
        Optional identifier of the moving object.
    """

    def __init__(self, points, object_id=None):
        converted = []
        for point in points:
            if isinstance(point, GpsPoint):
                converted.append(point)
            else:
                x, y, t = point
                converted.append(GpsPoint(x, y, t))
        if len(converted) < 2:
            raise ValueError("a trajectory needs at least two points")
        times = [p.t for p in converted]
        if any(b <= a for a, b in zip(times, times[1:])):
            raise ValueError("trajectory timestamps must be strictly increasing")
        self._points = converted
        self.object_id = object_id

    # -- protocol --------------------------------------------------------

    def __len__(self):
        return len(self._points)

    def __iter__(self):
        return iter(self._points)

    def __getitem__(self, index):
        return self._points[index]

    def __repr__(self):
        return (
            f"Trajectory(id={self.object_id!r}, points={len(self)}, "
            f"duration={self.duration():.1f})"
        )

    # -- accessors -------------------------------------------------------

    @property
    def points(self):
        return list(self._points)

    def coordinates(self):
        """Return an ``(n, 2)`` array of ``(x, y)`` positions."""
        return np.array([[p.x, p.y] for p in self._points])

    def times(self):
        """Return the ``(n,)`` array of timestamps."""
        return np.array([p.t for p in self._points])

    def duration(self):
        """Elapsed time between first and last sample."""
        return self._points[-1].t - self._points[0].t

    def length(self):
        """Total travelled Euclidean distance along the samples."""
        return float(
            sum(a.distance_to(b) for a, b in zip(self._points, self._points[1:]))
        )

    def average_speed(self):
        """Mean speed = length / duration."""
        return self.length() / self.duration()

    # -- transformations ---------------------------------------------------

    def resample(self, interval):
        """Linearly resample positions every ``interval`` time units.

        Models low-frequency GPS devices; the first and last samples are
        always kept.
        """
        if interval <= 0:
            raise ValueError(f"interval must be > 0, got {interval!r}")
        xs = self.coordinates()
        ts = self.times()
        new_times = np.arange(ts[0], ts[-1], interval)
        if new_times[-1] < ts[-1]:
            new_times = np.append(new_times, ts[-1])
        new_x = np.interp(new_times, ts, xs[:, 0])
        new_y = np.interp(new_times, ts, xs[:, 1])
        points = [GpsPoint(x, y, t) for x, y, t in zip(new_x, new_y, new_times)]
        return Trajectory(points, object_id=self.object_id)

    def with_noise(self, sigma, rng=None):
        """Add isotropic Gaussian measurement noise of scale ``sigma``."""
        if sigma < 0:
            raise ValueError(f"sigma must be >= 0, got {sigma!r}")
        rng = ensure_rng(rng)
        noise = rng.normal(0.0, sigma, size=(len(self), 2))
        points = [
            GpsPoint(p.x + dx, p.y + dy, p.t)
            for p, (dx, dy) in zip(self._points, noise)
        ]
        return Trajectory(points, object_id=self.object_id)

    def dropped(self, keep_fraction, rng=None):
        """Randomly keep roughly ``keep_fraction`` of interior samples.

        Endpoints are always retained so the trip is still recognizable —
        this models the sparse trajectories [56] the decision layer learns
        from.
        """
        if not 0.0 < keep_fraction <= 1.0:
            raise ValueError(
                f"keep_fraction must be in (0, 1], got {keep_fraction!r}"
            )
        rng = ensure_rng(rng)
        kept = [self._points[0]]
        for point in self._points[1:-1]:
            if rng.random() < keep_fraction:
                kept.append(point)
        kept.append(self._points[-1])
        return Trajectory(kept, object_id=self.object_id)

    def segment_speeds(self):
        """Speed of each consecutive segment, shape ``(n-1,)``."""
        xs = self.coordinates()
        ts = self.times()
        distances = np.linalg.norm(np.diff(xs, axis=0), axis=1)
        gaps = np.diff(ts)
        return distances / gaps
