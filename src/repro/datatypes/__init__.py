"""Data foundations (paper §II-A): the four data types of Definitions 1-4
plus the road-network substrate the running examples live on."""

from .correlated import CorrelatedTimeSeries
from .image_sequence import ImageSequence
from .roadnetwork import RoadNetwork
from .timeseries import TimeSeries
from .trajectory import GpsPoint, Trajectory

__all__ = [
    "CorrelatedTimeSeries",
    "GpsPoint",
    "ImageSequence",
    "RoadNetwork",
    "TimeSeries",
    "Trajectory",
]
