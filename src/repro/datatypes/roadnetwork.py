"""Road networks: the spatial substrate for the paper's running examples.

The tutorial's flagship decision task is stochastic route planning over
an uncertain road network (the autonomous-taxi-to-airport example of
§I).  :class:`RoadNetwork` provides the directed, spatially-embedded
graph all of those components share: nodes with planar coordinates,
edges with lengths, geometric queries for map matching, and classic
path utilities.

The paper's systems run on real networks (OpenStreetMap extracts); the
generators here (:meth:`RoadNetwork.grid`,
:meth:`RoadNetwork.random_geometric`) synthesize networks with the same
structural features — bounded degree, planar embedding, alternative
routes between most origin-destination pairs — with known ground truth.
"""

from __future__ import annotations

import heapq
import itertools
import math

import networkx as nx
import numpy as np

from .._validation import ensure_rng

__all__ = ["RoadNetwork"]


class RoadNetwork:
    """A directed, spatially embedded road graph.

    Nodes are arbitrary hashables with a ``pos=(x, y)`` attribute; edges
    carry at least a positive ``length``.  Additional per-edge data (speed
    distributions, observed weights) is attached by the governance layer.
    """

    def __init__(self, graph=None):
        self._graph = graph if graph is not None else nx.DiGraph()
        for node, data in self._graph.nodes(data=True):
            if "pos" not in data:
                raise ValueError(f"node {node!r} is missing a 'pos' attribute")
        for u, v, data in self._graph.edges(data=True):
            if data.get("length", 0) <= 0:
                raise ValueError(f"edge ({u!r}, {v!r}) needs a positive length")

    # -- construction ------------------------------------------------------

    @classmethod
    def grid(cls, rows, cols, spacing=1.0, *, bidirectional=True):
        """A ``rows x cols`` Manhattan grid with edge length ``spacing``.

        Nodes are ``(r, c)`` tuples positioned at ``(c*spacing, r*spacing)``.
        """
        if rows < 2 or cols < 2:
            raise ValueError("grid needs at least 2 rows and 2 columns")
        graph = nx.DiGraph()
        for r in range(rows):
            for c in range(cols):
                graph.add_node((r, c), pos=(c * spacing, r * spacing))
        for r in range(rows):
            for c in range(cols):
                for dr, dc in ((0, 1), (1, 0)):
                    rr, cc = r + dr, c + dc
                    if rr < rows and cc < cols:
                        graph.add_edge((r, c), (rr, cc), length=spacing)
                        if bidirectional:
                            graph.add_edge((rr, cc), (r, c), length=spacing)
        return cls(graph)

    @classmethod
    def random_geometric(cls, n_nodes, radius, rng=None, *, size=10.0):
        """Random geometric graph on ``[0, size]^2`` with connect radius.

        Keeps only the largest strongly connected component so every pair
        of retained nodes is mutually reachable.
        """
        if n_nodes < 2:
            raise ValueError("need at least two nodes")
        rng = ensure_rng(rng)
        coords = rng.uniform(0.0, size, size=(n_nodes, 2))
        graph = nx.DiGraph()
        for i, (x, y) in enumerate(coords):
            graph.add_node(i, pos=(float(x), float(y)))
        for i in range(n_nodes):
            for j in range(i + 1, n_nodes):
                distance = float(np.linalg.norm(coords[i] - coords[j]))
                if distance <= radius and distance > 0:
                    graph.add_edge(i, j, length=distance)
                    graph.add_edge(j, i, length=distance)
        components = list(nx.strongly_connected_components(graph))
        if not components:
            raise ValueError("generated graph has no edges; increase radius")
        largest = max(components, key=len)
        if len(largest) < 2:
            raise ValueError("generated graph is too sparse; increase radius")
        return cls(graph.subgraph(largest).copy())

    # -- protocol -----------------------------------------------------------

    def __repr__(self):
        return f"RoadNetwork(nodes={self.n_nodes}, edges={self.n_edges})"

    @property
    def graph(self):
        """The underlying :class:`networkx.DiGraph` (shared, not copied)."""
        return self._graph

    @property
    def n_nodes(self):
        return self._graph.number_of_nodes()

    @property
    def n_edges(self):
        return self._graph.number_of_edges()

    def nodes(self):
        return list(self._graph.nodes())

    def edges(self):
        """All edges as ``(u, v)`` tuples."""
        return list(self._graph.edges())

    def position(self, node):
        """The ``(x, y)`` coordinates of ``node``."""
        return tuple(self._graph.nodes[node]["pos"])

    def edge_length(self, u, v):
        return float(self._graph.edges[u, v]["length"])

    def has_edge(self, u, v):
        return self._graph.has_edge(u, v)

    def successors(self, node):
        return list(self._graph.successors(node))

    def set_edge_attribute(self, u, v, key, value):
        """Attach governance data (weights, distributions) to an edge."""
        if not self._graph.has_edge(u, v):
            raise KeyError(f"no edge ({u!r}, {v!r})")
        self._graph.edges[u, v][key] = value

    def edge_attribute(self, u, v, key, default=None):
        if not self._graph.has_edge(u, v):
            raise KeyError(f"no edge ({u!r}, {v!r})")
        return self._graph.edges[u, v].get(key, default)

    # -- geometry ------------------------------------------------------------

    def edge_endpoints(self, u, v):
        """Coordinates of both endpoints as two ``(x, y)`` tuples."""
        return self.position(u), self.position(v)

    def project_point(self, point, u, v):
        """Project planar ``point`` onto segment ``(u, v)``.

        Returns ``(distance, fraction)`` — the perpendicular distance from
        the point to the segment and the position along it in ``[0, 1]``.
        Used by HMM map matching for emission probabilities.
        """
        (x1, y1), (x2, y2) = self.edge_endpoints(u, v)
        px, py = point
        dx, dy = x2 - x1, y2 - y1
        norm2 = dx * dx + dy * dy
        if norm2 == 0:
            return math.hypot(px - x1, py - y1), 0.0
        fraction = ((px - x1) * dx + (py - y1) * dy) / norm2
        fraction = min(max(fraction, 0.0), 1.0)
        cx, cy = x1 + fraction * dx, y1 + fraction * dy
        return math.hypot(px - cx, py - cy), fraction

    def point_on_edge(self, u, v, fraction):
        """The coordinates at ``fraction`` of the way from ``u`` to ``v``."""
        (x1, y1), (x2, y2) = self.edge_endpoints(u, v)
        fraction = min(max(fraction, 0.0), 1.0)
        return (x1 + fraction * (x2 - x1), y1 + fraction * (y2 - y1))

    def candidate_edges(self, point, radius):
        """Edges whose segment passes within ``radius`` of ``point``.

        Returns ``[(u, v, distance, fraction), ...]`` sorted by distance.
        """
        candidates = []
        for u, v in self._graph.edges():
            distance, fraction = self.project_point(point, u, v)
            if distance <= radius:
                candidates.append((u, v, distance, fraction))
        candidates.sort(key=lambda item: item[2])
        return candidates

    def nearest_node(self, point):
        """The node closest to planar ``point``."""
        px, py = point
        best, best_distance = None, math.inf
        for node in self._graph.nodes():
            x, y = self.position(node)
            distance = math.hypot(px - x, py - y)
            if distance < best_distance:
                best, best_distance = node, distance
        return best

    # -- paths ----------------------------------------------------------------

    def shortest_path(self, source, target, weight="length"):
        """Dijkstra shortest path as a node list."""
        return nx.dijkstra_path(self._graph, source, target, weight=weight)

    def shortest_path_length(self, source, target, weight="length"):
        return nx.dijkstra_path_length(self._graph, source, target,
                                       weight=weight)

    def k_shortest_paths(self, source, target, k, weight="length"):
        """The ``k`` shortest simple paths (Yen's algorithm via networkx)."""
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        generator = nx.shortest_simple_paths(self._graph, source, target,
                                             weight=weight)
        return list(itertools.islice(generator, k))

    def path_edges(self, path):
        """Convert a node path into its ``(u, v)`` edge list."""
        if len(path) < 2:
            raise ValueError("a path needs at least two nodes")
        edge_list = list(zip(path, path[1:]))
        for u, v in edge_list:
            if not self._graph.has_edge(u, v):
                raise ValueError(f"path uses missing edge ({u!r}, {v!r})")
        return edge_list

    def path_length(self, path, weight="length"):
        """Total weight along a node path."""
        return float(
            sum(self._graph.edges[u, v][weight] for u, v in self.path_edges(path))
        )

    def route_distance(self, path_a, path_b):
        """Dissimilarity of two node paths: 1 - Jaccard of their edge sets.

        Used to compare an imitated route to the expert route (E22) and a
        matched route to ground truth (E6).
        """
        edges_a = set(self.path_edges(path_a))
        edges_b = set(self.path_edges(path_b))
        union = edges_a | edges_b
        if not union:
            return 0.0
        return 1.0 - len(edges_a & edges_b) / len(union)

    def dijkstra_all(self, source, weight="length"):
        """Distances from ``source`` to every reachable node (lazy heap)."""
        distances = {source: 0.0}
        heap = [(0.0, source)]
        visited = set()
        while heap:
            d, node = heapq.heappop(heap)
            if node in visited:
                continue
            visited.add(node)
            for succ in self._graph.successors(node):
                cost = d + float(self._graph.edges[node, succ][weight])
                if cost < distances.get(succ, math.inf):
                    distances[succ] = cost
                    heapq.heappush(heap, (cost, succ))
        return distances
