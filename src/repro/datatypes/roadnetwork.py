"""Road networks: the spatial substrate for the paper's running examples.

The tutorial's flagship decision task is stochastic route planning over
an uncertain road network (the autonomous-taxi-to-airport example of
§I).  :class:`RoadNetwork` provides the directed, spatially-embedded
graph all of those components share: nodes with planar coordinates,
edges with lengths, geometric queries for map matching, and classic
path utilities.

The paper's systems run on real networks (OpenStreetMap extracts); the
generators here (:meth:`RoadNetwork.grid`,
:meth:`RoadNetwork.random_geometric`) synthesize networks with the same
structural features — bounded degree, planar embedding, alternative
routes between most origin-destination pairs — with known ground truth.
"""

from __future__ import annotations

import heapq
import itertools
import math
import threading

import networkx as nx
import numpy as np

from .._validation import ensure_rng

__all__ = ["RoadNetwork"]


class _GeometryIndex:
    """Immutable numpy snapshot of a network's geometry + uniform grid.

    Built once per network revision (keyed on node/edge counts) and
    shared by every geometric query.  The grid buckets edges by their
    bounding boxes and nodes by their cells, so ``candidate_edges`` and
    ``nearest_node`` inspect only nearby cells instead of scanning the
    whole graph.
    """

    def __init__(self, graph):
        self.edge_list = list(graph.edges())
        self.node_list = list(graph.nodes())
        positions = {
            node: graph.nodes[node]["pos"] for node in self.node_list
        }
        self.node_xy = np.asarray(
            [positions[node] for node in self.node_list], dtype=float
        ).reshape(len(self.node_list), 2)
        if self.edge_list:
            self.a = np.asarray(
                [positions[u] for u, _ in self.edge_list], dtype=float)
            self.b = np.asarray(
                [positions[v] for _, v in self.edge_list], dtype=float)
        else:
            self.a = np.zeros((0, 2))
            self.b = np.zeros((0, 2))
        self.ab = self.b - self.a
        self.norm2 = (self.ab ** 2).sum(axis=1)

        # Uniform grid over the node bounding box.  Cell size targets a
        # handful of edges per cell; degenerate (empty / point) networks
        # collapse to a single cell.
        lo = self.node_xy.min(axis=0) if len(self.node_list) else \
            np.zeros(2)
        hi = self.node_xy.max(axis=0) if len(self.node_list) else \
            np.zeros(2)
        span = float(max(hi[0] - lo[0], hi[1] - lo[1]))
        n_edges = max(len(self.edge_list), 1)
        self.cell = span / math.ceil(math.sqrt(n_edges)) if span > 0 \
            else 1.0
        self.origin = lo
        shape = np.maximum(
            np.ceil((hi - lo) / self.cell).astype(int) + 1, 1)
        self.nx_cells, self.ny_cells = int(shape[0]), int(shape[1])

        self._edge_cells = {}
        if len(self.edge_list):
            lo_cells = self._cell_of(np.minimum(self.a, self.b))
            hi_cells = self._cell_of(np.maximum(self.a, self.b))
            for index in range(len(self.edge_list)):
                x0, y0 = lo_cells[index]
                x1, y1 = hi_cells[index]
                for cx in range(x0, x1 + 1):
                    for cy in range(y0, y1 + 1):
                        self._edge_cells.setdefault((cx, cy),
                                                    []).append(index)
        self._edge_cells = {
            key: np.asarray(indices, dtype=np.intp)
            for key, indices in self._edge_cells.items()
        }

        self._node_cells = {}
        if len(self.node_list):
            for index, (cx, cy) in enumerate(self._cell_of(self.node_xy)):
                self._node_cells.setdefault((cx, cy), []).append(index)
        self._node_cells = {
            key: np.asarray(indices, dtype=np.intp)
            for key, indices in self._node_cells.items()
        }

    def _cell_of(self, points):
        """Integer cell coordinates (unclipped) of ``(..., 2)`` points."""
        return np.floor(
            (np.asarray(points, dtype=float) - self.origin) / self.cell
        ).astype(int)

    def project_many(self, point, indices):
        """Vectorized point-to-segment projection over edge ``indices``.

        Returns ``(distances, fractions)`` matching
        :meth:`RoadNetwork.project_point` on each edge.
        """
        px, py = float(point[0]), float(point[1])
        a = self.a[indices]
        ab = self.ab[indices]
        norm2 = self.norm2[indices]
        rel = np.array([px, py]) - a
        with np.errstate(invalid="ignore"):
            fractions = np.where(
                norm2 > 0,
                (rel * ab).sum(axis=1) / np.where(norm2 > 0, norm2, 1.0),
                0.0,
            )
        fractions = np.clip(fractions, 0.0, 1.0)
        closest = a + fractions[:, None] * ab
        distances = np.hypot(px - closest[:, 0], py - closest[:, 1])
        return distances, fractions

    def edges_near(self, point, radius):
        """Indices of edges whose grid cells intersect the query disk.

        A conservative superset (grid cells overestimate the segment),
        in ascending edge-index order.
        """
        px, py = float(point[0]), float(point[1])
        lo = self._cell_of(np.array([px - radius, py - radius]))
        hi = self._cell_of(np.array([px + radius, py + radius]))
        x0, y0 = max(int(lo[0]), 0), max(int(lo[1]), 0)
        x1 = min(int(hi[0]), self.nx_cells - 1)
        y1 = min(int(hi[1]), self.ny_cells - 1)
        if x1 < x0 or y1 < y0:
            return np.empty(0, dtype=np.intp)
        buckets = [
            self._edge_cells[(cx, cy)]
            for cx in range(x0, x1 + 1)
            for cy in range(y0, y1 + 1)
            if (cx, cy) in self._edge_cells
        ]
        if not buckets:
            return np.empty(0, dtype=np.intp)
        return np.unique(np.concatenate(buckets))

    def _ring_nodes(self, center, ring):
        """Node indices in the cells at Chebyshev distance ``ring``."""
        cx, cy = center
        cells = []
        if ring == 0:
            cells.append((cx, cy))
        else:
            for dx in range(-ring, ring + 1):
                cells.append((cx + dx, cy - ring))
                cells.append((cx + dx, cy + ring))
            for dy in range(-ring + 1, ring):
                cells.append((cx - ring, cy + dy))
                cells.append((cx + ring, cy + dy))
        buckets = [
            self._node_cells[cell] for cell in cells
            if cell in self._node_cells
        ]
        if not buckets:
            return np.empty(0, dtype=np.intp)
        return np.concatenate(buckets)

    def nearest_node_index(self, point):
        """Index (into ``node_list``) of the node closest to ``point``.

        Expanding-ring search: cells at Chebyshev ring ``k`` from the
        query cell contain no point closer than ``(k - 1) * cell``, so
        the search stops as soon as the best distance found beats that
        lower bound for every unvisited ring.
        """
        if not len(self.node_list):
            return None
        px, py = float(point[0]), float(point[1])
        center = tuple(self._cell_of(np.array([px, py])))
        # Rings needed to cover every populated cell from the center.
        max_ring = max(
            max(abs(cx - center[0]), abs(cy - center[1]))
            for cx, cy in self._node_cells
        )
        best_index, best_distance = None, math.inf
        for ring in range(max_ring + 1):
            if best_index is not None and \
                    (ring - 1) * self.cell > best_distance:
                break
            indices = np.sort(self._ring_nodes(center, ring))
            if not len(indices):
                continue
            xy = self.node_xy[indices]
            distances = np.hypot(px - xy[:, 0], py - xy[:, 1])
            argmin = int(np.argmin(distances))
            distance = float(distances[argmin])
            index = int(indices[argmin])
            # Ties break toward the lowest node index, matching the
            # brute-force scan in graph iteration order.
            if distance < best_distance or (
                    distance == best_distance and index < best_index):
                best_distance = distance
                best_index = index
        return best_index


class RoadNetwork:
    """A directed, spatially embedded road graph.

    Nodes are arbitrary hashables with a ``pos=(x, y)`` attribute; edges
    carry at least a positive ``length``.  Additional per-edge data (speed
    distributions, observed weights) is attached by the governance layer.

    **Thread-safety contract:** every *query* method (geometry lookups,
    ``candidate_edges``, ``nearest_node``, Dijkstra variants, path
    utilities) is safe to call from many threads concurrently — the
    lazily built geometry/adjacency snapshots are constructed under a
    lock and installed atomically, so concurrent first callers never
    observe a torn snapshot and never duplicate a build.  *Mutation*
    (``set_edge_attribute``, editing ``graph`` in place,
    ``invalidate_geometry``) is not synchronized against concurrent
    queries; quiesce queries before mutating, exactly as before.
    """

    def __init__(self, graph=None):
        self._graph = graph if graph is not None else nx.DiGraph()
        for node, data in self._graph.nodes(data=True):
            if "pos" not in data:
                raise ValueError(f"node {node!r} is missing a 'pos' attribute")
        for u, v, data in self._graph.edges(data=True):
            if data.get("length", 0) <= 0:
                raise ValueError(f"edge ({u!r}, {v!r}) needs a positive length")
        self._init_caches()

    def _init_caches(self):
        """Fresh snapshot holders + the lock that guards their builds."""
        self._cache_lock = threading.RLock()
        # (revision_key, _GeometryIndex) installed as ONE tuple so
        # readers can never pair a stale key with a fresh index.
        self._geometry_snapshot = None
        self._adjacency_cache = {}

    def __getstate__(self):
        """Pickle without the lock; snapshots rebuild lazily on load.

        Dropping the caches also keeps content fingerprints (and
        process-executor shipping) independent of how warm this
        network's lazy indexes happen to be.
        """
        state = self.__dict__.copy()
        state.pop("_cache_lock", None)
        state["_geometry_snapshot"] = None
        state["_adjacency_cache"] = {}
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._init_caches()

    # -- construction ------------------------------------------------------

    @classmethod
    def grid(cls, rows, cols, spacing=1.0, *, bidirectional=True):
        """A ``rows x cols`` Manhattan grid with edge length ``spacing``.

        Nodes are ``(r, c)`` tuples positioned at ``(c*spacing, r*spacing)``.
        """
        if rows < 2 or cols < 2:
            raise ValueError("grid needs at least 2 rows and 2 columns")
        graph = nx.DiGraph()
        for r in range(rows):
            for c in range(cols):
                graph.add_node((r, c), pos=(c * spacing, r * spacing))
        for r in range(rows):
            for c in range(cols):
                for dr, dc in ((0, 1), (1, 0)):
                    rr, cc = r + dr, c + dc
                    if rr < rows and cc < cols:
                        graph.add_edge((r, c), (rr, cc), length=spacing)
                        if bidirectional:
                            graph.add_edge((rr, cc), (r, c), length=spacing)
        return cls(graph)

    @classmethod
    def random_geometric(cls, n_nodes, radius, rng=None, *, size=10.0):
        """Random geometric graph on ``[0, size]^2`` with connect radius.

        Keeps only the largest strongly connected component so every pair
        of retained nodes is mutually reachable.
        """
        if n_nodes < 2:
            raise ValueError("need at least two nodes")
        rng = ensure_rng(rng)
        coords = rng.uniform(0.0, size, size=(n_nodes, 2))
        graph = nx.DiGraph()
        for i, (x, y) in enumerate(coords):
            graph.add_node(i, pos=(float(x), float(y)))
        for i in range(n_nodes):
            for j in range(i + 1, n_nodes):
                distance = float(np.linalg.norm(coords[i] - coords[j]))
                if distance <= radius and distance > 0:
                    graph.add_edge(i, j, length=distance)
                    graph.add_edge(j, i, length=distance)
        components = list(nx.strongly_connected_components(graph))
        if not components:
            raise ValueError("generated graph has no edges; increase radius")
        largest = max(components, key=len)
        if len(largest) < 2:
            raise ValueError("generated graph is too sparse; increase radius")
        return cls(graph.subgraph(largest).copy())

    # -- protocol -----------------------------------------------------------

    def __repr__(self):
        return f"RoadNetwork(nodes={self.n_nodes}, edges={self.n_edges})"

    @property
    def graph(self):
        """The underlying :class:`networkx.DiGraph` (shared, not copied)."""
        return self._graph

    @property
    def n_nodes(self):
        return self._graph.number_of_nodes()

    @property
    def n_edges(self):
        return self._graph.number_of_edges()

    def nodes(self):
        return list(self._graph.nodes())

    def edges(self):
        """All edges as ``(u, v)`` tuples."""
        return list(self._graph.edges())

    def position(self, node):
        """The ``(x, y)`` coordinates of ``node``."""
        return tuple(self._graph.nodes[node]["pos"])

    def edge_length(self, u, v):
        return float(self._graph.edges[u, v]["length"])

    def has_edge(self, u, v):
        return self._graph.has_edge(u, v)

    def successors(self, node):
        return list(self._graph.successors(node))

    def set_edge_attribute(self, u, v, key, value):
        """Attach governance data (weights, distributions) to an edge."""
        if not self._graph.has_edge(u, v):
            raise KeyError(f"no edge ({u!r}, {v!r})")
        self._graph.edges[u, v][key] = value

    def edge_attribute(self, u, v, key, default=None):
        if not self._graph.has_edge(u, v):
            raise KeyError(f"no edge ({u!r}, {v!r})")
        return self._graph.edges[u, v].get(key, default)

    # -- geometry ------------------------------------------------------------

    def _revision(self):
        """Cheap ``(n_nodes, n_edges)`` fingerprint of the graph shape.

        Uses the successor dicts directly: ``number_of_edges()`` walks a
        degree view and is too slow to run per geometric query.
        """
        succ = getattr(self._graph, "_succ", None)
        if succ is None:  # non-standard graph implementation
            return (self._graph.number_of_nodes(),
                    self._graph.number_of_edges())
        return len(succ), sum(map(len, succ.values()))

    def _geometry(self):
        """The lazily built spatial index for the current graph revision.

        The index caches node/edge coordinates as numpy arrays plus a
        uniform grid, keyed on ``(n_nodes, n_edges)``: adding or removing
        nodes/edges rebuilds it automatically.  In-place *coordinate*
        mutation of an existing node is not detectable this way — call
        :meth:`invalidate_geometry` after moving nodes.

        Safe under concurrency: the fast path reads one atomically
        installed ``(key, index)`` tuple; the build path serializes on
        the cache lock and double-checks, so a rebuild runs once no
        matter how many threads race the first query.
        """
        key = self._revision()
        snapshot = self._geometry_snapshot
        if snapshot is not None and snapshot[0] == key:
            return snapshot[1]
        with self._cache_lock:
            snapshot = self._geometry_snapshot
            if snapshot is not None and snapshot[0] == key:
                return snapshot[1]
            index = _GeometryIndex(self._graph)
            self._geometry_snapshot = (key, index)
            return index

    def _weighted_adjacency(self, weight="length"):
        """Plain-dict successor lists ``{u: [(v, w), ...]}``, cached.

        Dijkstra over networkx edge views spends most of its time in
        attribute-dict indirection; snapshotting the weights once per
        graph revision makes repeated single-source searches cheap.
        """
        key = self._revision()
        cached = self._adjacency_cache.get(weight)
        if cached is not None and cached[0] == key:
            return cached[1]
        with self._cache_lock:
            cached = self._adjacency_cache.get(weight)
            if cached is not None and cached[0] == key:
                return cached[1]
            adjacency = {
                node: [
                    (succ, float(data[weight]))
                    for succ, data in neighbors.items()
                ]
                for node, neighbors in self._graph._succ.items()
            }
            self._adjacency_cache[weight] = (key, adjacency)
            return adjacency

    def _indexed_adjacency(self, weight="length"):
        """Integer-indexed adjacency: ``(nodes, index_of, adjacency)``.

        ``adjacency[i]`` lists ``(edge_weight, successor_index)`` pairs.
        Dense integer indices let single-source searches run over plain
        lists and return numpy arrays, which is what the vectorized map
        matcher gathers from.  Cached per graph revision.
        """
        key = self._revision()
        cached = self._adjacency_cache.get(("indexed", weight))
        if cached is not None and cached[0] == key:
            return cached[1]
        with self._cache_lock:
            cached = self._adjacency_cache.get(("indexed", weight))
            if cached is not None and cached[0] == key:
                return cached[1]
            nodes = list(self._graph.nodes())
            index_of = {node: i for i, node in enumerate(nodes)}
            adjacency = [
                [
                    (float(data[weight]), index_of[succ])
                    for succ, data in self._graph.adj[node].items()
                ]
                for node in nodes
            ]
            snapshot = (nodes, index_of, adjacency)
            self._adjacency_cache[("indexed", weight)] = (key, snapshot)
            return snapshot

    def node_index(self):
        """``(index_of, nodes)`` for array-based queries.

        ``index_of[node]`` is the row of ``node`` in any array returned
        by :meth:`dijkstra_array`; ``nodes[i]`` inverts the mapping.
        Stable for a given graph revision.
        """
        nodes, index_of, _ = self._indexed_adjacency()
        return index_of, nodes

    def invalidate_geometry(self):
        """Drop the cached spatial index (after in-place ``pos`` edits).

        Safe against in-flight readers: the snapshot holders are
        *replaced* (never mutated), so a query that already picked up
        the old snapshot finishes on a consistent — if momentarily
        stale — view, and the next query rebuilds fresh.
        """
        with self._cache_lock:
            self._geometry_snapshot = None
            self._adjacency_cache = {}

    def edge_endpoints(self, u, v):
        """Coordinates of both endpoints as two ``(x, y)`` tuples."""
        return self.position(u), self.position(v)

    def project_point(self, point, u, v):
        """Project planar ``point`` onto segment ``(u, v)``.

        Returns ``(distance, fraction)`` — the perpendicular distance from
        the point to the segment and the position along it in ``[0, 1]``.
        Used by HMM map matching for emission probabilities.
        """
        (x1, y1), (x2, y2) = self.edge_endpoints(u, v)
        px, py = point
        dx, dy = x2 - x1, y2 - y1
        norm2 = dx * dx + dy * dy
        if norm2 == 0:
            return math.hypot(px - x1, py - y1), 0.0
        fraction = ((px - x1) * dx + (py - y1) * dy) / norm2
        fraction = min(max(fraction, 0.0), 1.0)
        cx, cy = x1 + fraction * dx, y1 + fraction * dy
        return math.hypot(px - cx, py - cy), fraction

    def point_on_edge(self, u, v, fraction):
        """The coordinates at ``fraction`` of the way from ``u`` to ``v``."""
        (x1, y1), (x2, y2) = self.edge_endpoints(u, v)
        fraction = min(max(fraction, 0.0), 1.0)
        return (x1 + fraction * (x2 - x1), y1 + fraction * (y2 - y1))

    def candidate_edges(self, point, radius):
        """Edges whose segment passes within ``radius`` of ``point``.

        Returns ``[(u, v, distance, fraction), ...]`` sorted by distance
        (ties in edge insertion order).  Served by the uniform-grid
        spatial index: only edges in grid cells overlapping the query
        disk are projected, and the projection runs vectorized over the
        whole candidate set.
        """
        geometry = self._geometry()
        indices = geometry.edges_near(point, float(radius))
        if not len(indices):
            return []
        distances, fractions = geometry.project_many(point, indices)
        keep = distances <= radius
        indices = indices[keep]
        distances = distances[keep]
        fractions = fractions[keep]
        order = np.argsort(distances, kind="stable")
        return [
            (*geometry.edge_list[indices[i]],
             float(distances[i]), float(fractions[i]))
            for i in order
        ]

    def _candidate_edges_scan(self, point, radius):
        """Brute-force O(E) reference for :meth:`candidate_edges`."""
        candidates = []
        for u, v in self._graph.edges():
            distance, fraction = self.project_point(point, u, v)
            if distance <= radius:
                candidates.append((u, v, distance, fraction))
        candidates.sort(key=lambda item: item[2])
        return candidates

    def nearest_node(self, point):
        """The node closest to planar ``point`` (grid-index backed)."""
        index = self._geometry().nearest_node_index(point)
        if index is None:
            return None
        return self._geometry().node_list[index]

    def _nearest_node_scan(self, point):
        """Brute-force O(V) reference for :meth:`nearest_node`."""
        px, py = point
        best, best_distance = None, math.inf
        for node in self._graph.nodes():
            x, y = self.position(node)
            distance = math.hypot(px - x, py - y)
            if distance < best_distance:
                best, best_distance = node, distance
        return best

    # -- paths ----------------------------------------------------------------

    def shortest_path(self, source, target, weight="length"):
        """Dijkstra shortest path as a node list."""
        return nx.dijkstra_path(self._graph, source, target, weight=weight)

    def shortest_path_length(self, source, target, weight="length"):
        return nx.dijkstra_path_length(self._graph, source, target,
                                       weight=weight)

    def k_shortest_paths(self, source, target, k, weight="length"):
        """The ``k`` shortest simple paths (Yen's algorithm via networkx)."""
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        generator = nx.shortest_simple_paths(self._graph, source, target,
                                             weight=weight)
        return list(itertools.islice(generator, k))

    def path_edges(self, path):
        """Convert a node path into its ``(u, v)`` edge list."""
        if len(path) < 2:
            raise ValueError("a path needs at least two nodes")
        edge_list = list(zip(path, path[1:]))
        for u, v in edge_list:
            if not self._graph.has_edge(u, v):
                raise ValueError(f"path uses missing edge ({u!r}, {v!r})")
        return edge_list

    def path_length(self, path, weight="length"):
        """Total weight along a node path."""
        return float(
            sum(self._graph.edges[u, v][weight] for u, v in self.path_edges(path))
        )

    def route_distance(self, path_a, path_b):
        """Dissimilarity of two node paths: 1 - Jaccard of their edge sets.

        Used to compare an imitated route to the expert route (E22) and a
        matched route to ground truth (E6).
        """
        edges_a = set(self.path_edges(path_a))
        edges_b = set(self.path_edges(path_b))
        union = edges_a | edges_b
        if not union:
            return 0.0
        return 1.0 - len(edges_a & edges_b) / len(union)

    def dijkstra_all(self, source, weight="length", *, cutoff=None):
        """Distances from ``source`` to every reachable node (lazy heap).

        With ``cutoff`` the search stops expanding past that radius:
        every node whose true distance is ``<= cutoff`` is returned with
        its exact distance, farther nodes are omitted.  Bounded searches
        are what keeps map matching's transition computation cheap on
        large networks.
        """
        adjacency = self._weighted_adjacency(weight)
        distances = {source: 0.0}
        heap = [(0.0, source)]
        visited = set()
        while heap:
            d, node = heapq.heappop(heap)
            if node in visited:
                continue
            visited.add(node)
            for succ, edge_weight in adjacency.get(node, ()):
                cost = d + edge_weight
                if cutoff is not None and cost > cutoff:
                    continue
                if cost < distances.get(succ, math.inf):
                    distances[succ] = cost
                    heapq.heappush(heap, (cost, succ))
        return distances

    def dijkstra_array(self, source, weight="length", *, cutoff=None):
        """:meth:`dijkstra_all` as a dense float array over node indices.

        Row order follows :meth:`node_index`; unreachable nodes (or
        nodes beyond ``cutoff``) hold ``inf``.  Running over integer
        adjacency lists and returning an array makes this the fast
        distance source for the vectorized map matcher, which gathers
        whole candidate columns at once.
        """
        nodes, index_of, adjacency = self._indexed_adjacency(weight)
        distances = [math.inf] * len(nodes)
        source_index = index_of[source]
        distances[source_index] = 0.0
        heap = [(0.0, source_index)]
        push, pop = heapq.heappush, heapq.heappop
        while heap:
            d, node = pop(heap)
            if d > distances[node]:  # stale entry (lazy deletion)
                continue
            for edge_weight, succ in adjacency[node]:
                cost = d + edge_weight
                if cutoff is not None and cost > cutoff:
                    continue
                if cost < distances[succ]:
                    distances[succ] = cost
                    push(heap, (cost, succ))
        return np.asarray(distances, dtype=float)
