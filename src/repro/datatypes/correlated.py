"""Correlated time series (paper Definition 2).

A :class:`CorrelatedTimeSeries` is a set of ``N`` interconnected time
series ``T = {X_1, ..., X_N}`` whose correlations — induced by the
spatial arrangement of sensors — are modeled with a weighted graph, as
the paper prescribes.

The adjacency matrix is the handle used by the spatio-temporal analytics
(graph-filter forecasting, spatial imputation) and is therefore stored
alongside the data instead of being recomputed by every consumer.
"""

from __future__ import annotations

import numpy as np

from .timeseries import TimeSeries

__all__ = ["CorrelatedTimeSeries"]


class CorrelatedTimeSeries:
    """``N`` aligned univariate series plus a sensor-correlation graph.

    Parameters
    ----------
    values:
        Array of shape ``(M, N)``: ``M`` timestamps for ``N`` sensors.
        ``nan`` marks missing observations.
    adjacency:
        Symmetric non-negative matrix of shape ``(N, N)`` with zero
        diagonal; entry ``(i, j)`` weighs the correlation between the
        sensors.  Defaults to the empty graph.
    timestamps:
        Optional shared time axis of shape ``(M,)``.
    names:
        Optional sequence of ``N`` sensor names.
    """

    def __init__(self, values, adjacency=None, timestamps=None, names=None):
        array = np.asarray(values, dtype=float)
        if array.ndim != 2:
            raise ValueError(f"values must be 2-dimensional, got {array.shape}")
        if array.shape[0] == 0 or array.shape[1] == 0:
            raise ValueError("values must have at least one row and column")
        self._series = TimeSeries(array, timestamps=timestamps)

        n_sensors = array.shape[1]
        if adjacency is None:
            adjacency = np.zeros((n_sensors, n_sensors))
        adjacency = np.asarray(adjacency, dtype=float)
        if adjacency.shape != (n_sensors, n_sensors):
            raise ValueError(
                f"adjacency must have shape ({n_sensors}, {n_sensors}), "
                f"got {adjacency.shape}"
            )
        if np.any(adjacency < 0):
            raise ValueError("adjacency weights must be non-negative")
        if not np.allclose(adjacency, adjacency.T):
            raise ValueError("adjacency must be symmetric")
        self._adjacency = adjacency.copy()
        np.fill_diagonal(self._adjacency, 0.0)

        if names is None:
            names = [f"sensor_{i}" for i in range(n_sensors)]
        names = list(names)
        if len(names) != n_sensors:
            raise ValueError(
                f"expected {n_sensors} names, got {len(names)}"
            )
        self.names = names

    # -- basic protocol ------------------------------------------------

    def __len__(self):
        return len(self._series)

    def __repr__(self):
        return (
            f"CorrelatedTimeSeries(length={len(self)}, sensors={self.n_sensors}, "
            f"edges={self.n_edges})"
        )

    # -- accessors -----------------------------------------------------

    @property
    def values(self):
        """Observation matrix of shape ``(M, N)``."""
        return self._series.values

    @property
    def mask(self):
        return self._series.mask

    @property
    def timestamps(self):
        return self._series.timestamps

    @property
    def adjacency(self):
        """Symmetric sensor-correlation weights, shape ``(N, N)``."""
        return self._adjacency.copy()

    @property
    def n_sensors(self):
        return self._series.n_channels

    @property
    def n_edges(self):
        return int(np.count_nonzero(np.triu(self._adjacency)))

    def sensor(self, index):
        """Return sensor ``index`` as a univariate :class:`TimeSeries`."""
        series = self._series.channel(index)
        series.name = self.names[index]
        return series

    def as_timeseries(self):
        """View the whole collection as one multivariate :class:`TimeSeries`."""
        return TimeSeries(self._series.values, timestamps=self.timestamps)

    def missing_fraction(self):
        return self._series.missing_fraction()

    # -- graph helpers ---------------------------------------------------

    def normalized_adjacency(self):
        """Symmetrically normalized adjacency ``D^-1/2 (A) D^-1/2``.

        Sensors with no neighbours keep a zero row, which makes repeated
        application a contraction — the property the graph-filter
        forecaster and GCN imputation rely on.
        """
        degree = self._adjacency.sum(axis=1)
        scale = np.zeros_like(degree)
        positive = degree > 0
        scale[positive] = 1.0 / np.sqrt(degree[positive])
        return self._adjacency * np.outer(scale, scale)

    def neighbors(self, index):
        """Indices of sensors adjacent to ``index``."""
        if not 0 <= index < self.n_sensors:
            raise IndexError(f"sensor {index} out of range")
        return np.flatnonzero(self._adjacency[index] > 0)

    # -- transformations --------------------------------------------------

    def with_values(self, values):
        """Copy with the same graph but new observations."""
        return CorrelatedTimeSeries(
            values, adjacency=self._adjacency, timestamps=self.timestamps,
            names=self.names,
        )

    def slice(self, start, stop):
        """Time-slice ``[start, stop)`` keeping the graph."""
        sliced = self._series.slice(start, stop)
        return CorrelatedTimeSeries(
            sliced.values, adjacency=self._adjacency,
            timestamps=sliced.timestamps, names=self.names,
        )

    def split(self, fraction):
        """Train/test split along time, graph shared."""
        head, tail = self._series.split(fraction)
        make = lambda part: CorrelatedTimeSeries(  # noqa: E731 - local alias
            part.values, adjacency=self._adjacency,
            timestamps=part.timestamps, names=self.names,
        )
        return make(head), make(tail)

    def corrupt(self, missing_rate, rng, *, block_length=1):
        """Randomly remove observations; see :meth:`TimeSeries.corrupt`."""
        corrupted = self._series.corrupt(
            missing_rate, rng, block_length=block_length
        )
        return CorrelatedTimeSeries(
            corrupted.values, adjacency=self._adjacency,
            timestamps=self.timestamps, names=self.names,
        )

    @staticmethod
    def correlation_graph(values, threshold=0.5):
        """Build an adjacency matrix from empirical correlations.

        Pairs whose absolute Pearson correlation exceeds ``threshold``
        are connected with that correlation as the edge weight.  Rows
        with missing entries are ignored pairwise.
        """
        array = np.asarray(values, dtype=float)
        if array.ndim != 2:
            raise ValueError("values must be 2-dimensional")
        n_sensors = array.shape[1]
        adjacency = np.zeros((n_sensors, n_sensors))
        for i in range(n_sensors):
            for j in range(i + 1, n_sensors):
                rows = ~(np.isnan(array[:, i]) | np.isnan(array[:, j]))
                if rows.sum() < 3:
                    continue
                x, y = array[rows, i], array[rows, j]
                if x.std() == 0 or y.std() == 0:
                    continue
                rho = float(np.corrcoef(x, y)[0, 1])
                if abs(rho) >= threshold:
                    adjacency[i, j] = adjacency[j, i] = abs(rho)
        return adjacency
