"""Time series data type (paper Definition 1).

A :class:`TimeSeries` captures ``C`` properties observed at ``M``
timestamps: ``X = <s_1, ..., s_M>`` with ``s_i`` a C-dimensional vector.
Missing observations are first-class: the class carries an explicit
boolean mask so governance components (imputation, uncertainty
quantification) can reason about *what is unknown*, which the paper's
governance layer requires.

Invariants
----------
* ``values.shape == (M, C)`` and ``timestamps.shape == (M,)``.
* ``timestamps`` is strictly increasing.
* ``mask.shape == values.shape``; ``mask[i, c]`` is True where the value
  is observed.  Unobserved entries hold ``nan`` in ``values``.
"""

from __future__ import annotations

import numpy as np

from .._validation import as_float_array

__all__ = ["TimeSeries"]


class TimeSeries:
    """A (possibly multivariate, possibly gappy) regular time series.

    Parameters
    ----------
    values:
        Array-like of shape ``(M,)`` or ``(M, C)``.  ``nan`` entries are
        interpreted as missing.
    timestamps:
        Optional array of shape ``(M,)`` with strictly increasing time
        coordinates.  Defaults to ``0..M-1``.
    mask:
        Optional explicit observation mask.  Defaults to ``~isnan(values)``.
    name:
        Optional human-readable identifier.
    """

    def __init__(self, values, timestamps=None, mask=None, name=None):
        array = np.asarray(values, dtype=float)
        if array.ndim == 1:
            array = array[:, None]
        if array.ndim != 2:
            raise ValueError(
                f"values must be 1- or 2-dimensional, got shape {array.shape}"
            )
        if array.shape[0] == 0:
            raise ValueError("a TimeSeries needs at least one timestamp")
        self._values = array.copy()

        if timestamps is None:
            self._timestamps = np.arange(array.shape[0], dtype=float)
        else:
            self._timestamps = as_float_array(timestamps, "timestamps", ndim=1)
            if self._timestamps.shape[0] != array.shape[0]:
                raise ValueError(
                    "timestamps length must match the number of observations: "
                    f"{self._timestamps.shape[0]} != {array.shape[0]}"
                )
            if np.any(np.diff(self._timestamps) <= 0):
                raise ValueError("timestamps must be strictly increasing")

        if mask is None:
            self._mask = ~np.isnan(self._values)
        else:
            self._mask = np.asarray(mask, dtype=bool)
            if self._mask.shape != self._values.shape:
                raise ValueError(
                    "mask shape must match values shape: "
                    f"{self._mask.shape} != {self._values.shape}"
                )
            self._values[~self._mask] = np.nan
        if np.any(np.isnan(self._values) & self._mask):
            raise ValueError("mask marks nan entries as observed")

        self.name = name

    # -- basic protocol ------------------------------------------------

    def __len__(self):
        return self._values.shape[0]

    def __repr__(self):
        label = f" {self.name!r}" if self.name else ""
        return (
            f"TimeSeries{label}(length={len(self)}, channels={self.n_channels}, "
            f"missing={self.missing_fraction():.1%})"
        )

    def __eq__(self, other):
        if not isinstance(other, TimeSeries):
            return NotImplemented
        return (
            self._values.shape == other._values.shape
            and np.array_equal(self._mask, other._mask)
            and np.array_equal(self._timestamps, other._timestamps)
            and np.array_equal(
                self._values[self._mask], other._values[other._mask]
            )
        )

    # -- accessors -----------------------------------------------------

    @property
    def values(self):
        """Observation matrix of shape ``(M, C)``; missing entries are nan."""
        return self._values.copy()

    @property
    def timestamps(self):
        """Time coordinates of shape ``(M,)``."""
        return self._timestamps.copy()

    @property
    def mask(self):
        """Boolean observation mask of shape ``(M, C)``."""
        return self._mask.copy()

    @property
    def n_channels(self):
        """Number of observed properties ``C``."""
        return self._values.shape[1]

    @property
    def is_univariate(self):
        return self.n_channels == 1

    def channel(self, index):
        """Return channel ``index`` as a univariate :class:`TimeSeries`."""
        if not -self.n_channels <= index < self.n_channels:
            raise IndexError(
                f"channel {index} out of range for {self.n_channels} channels"
            )
        return TimeSeries(
            self._values[:, index],
            timestamps=self._timestamps,
            name=self.name,
        )

    def missing_fraction(self):
        """Fraction of entries that are unobserved."""
        return 1.0 - self._mask.mean()

    def is_complete(self):
        """True when every entry is observed."""
        return bool(self._mask.all())

    # -- transformations -----------------------------------------------

    def with_values(self, values, *, mask=None):
        """Return a copy carrying new ``values`` on the same time axis."""
        return TimeSeries(values, timestamps=self._timestamps, mask=mask,
                          name=self.name)

    def slice(self, start, stop):
        """Return observations with index in ``[start, stop)``."""
        if not 0 <= start < stop <= len(self):
            raise ValueError(
                f"invalid slice [{start}, {stop}) for length {len(self)}"
            )
        return TimeSeries(
            self._values[start:stop],
            timestamps=self._timestamps[start:stop],
            name=self.name,
        )

    def split(self, fraction):
        """Split into (head, tail) at ``fraction`` of the length.

        Used for train/test splits throughout the analytics layer.
        """
        if not 0.0 < fraction < 1.0:
            raise ValueError(f"fraction must be in (0, 1), got {fraction!r}")
        cut = int(round(len(self) * fraction))
        cut = min(max(cut, 1), len(self) - 1)
        return self.slice(0, cut), self.slice(cut, len(self))

    def drop_missing(self):
        """Return the sub-series of rows where *every* channel is observed."""
        keep = self._mask.all(axis=1)
        if not keep.any():
            raise ValueError("no fully-observed rows to keep")
        return TimeSeries(
            self._values[keep],
            timestamps=self._timestamps[keep],
            name=self.name,
        )

    def windows(self, length, stride=1):
        """Yield fixed-length sliding windows as ``(M', C)`` arrays.

        Only the values are returned; windows may contain nan where data
        is missing.  Used by window-based detectors and forecasters.
        """
        if length < 1 or length > len(self):
            raise ValueError(
                f"window length {length} invalid for series of length {len(self)}"
            )
        if stride < 1:
            raise ValueError(f"stride must be >= 1, got {stride}")
        for start in range(0, len(self) - length + 1, stride):
            yield self._values[start:start + length]

    def window_matrix(self, length, stride=1):
        """Stack :meth:`windows` into an array of shape ``(n, length, C)``."""
        stacked = list(self.windows(length, stride))
        return np.stack(stacked, axis=0)

    def diff(self):
        """First difference (length shrinks by one); mask propagates."""
        values = self._values[1:] - self._values[:-1]
        return TimeSeries(values, timestamps=self._timestamps[1:],
                          name=self.name)

    def standardized(self):
        """Return (zscored_series, mean, std) using observed entries only.

        Channels with zero variance are left unscaled (std treated as 1)
        so the transform is always invertible.
        """
        mean = np.zeros(self.n_channels)
        std = np.ones(self.n_channels)
        for column in range(self.n_channels):
            observed = self._values[self._mask[:, column], column]
            if observed.size:
                mean[column] = observed.mean()
                deviation = observed.std()
                if deviation > 0:
                    std[column] = deviation
        scaled = (self._values - mean) / std
        return self.with_values(scaled, mask=self._mask), mean, std

    def corrupt(self, missing_rate, rng, *, block_length=1):
        """Return a copy with entries removed at random (for experiments).

        Parameters
        ----------
        missing_rate:
            Target fraction of entries to remove, in ``[0, 1)``.
        rng:
            A :class:`numpy.random.Generator`.
        block_length:
            When > 1, drop contiguous runs of this length (sensor-outage
            style gaps) instead of independent entries.
        """
        if not 0.0 <= missing_rate < 1.0:
            raise ValueError(
                f"missing_rate must be in [0, 1), got {missing_rate!r}"
            )
        mask = self._mask.copy()
        n_rows, n_cols = mask.shape
        target = int(round(missing_rate * mask.size))
        removed = 0
        guard = 0
        while removed < target and guard < 100 * mask.size:
            guard += 1
            row = int(rng.integers(0, n_rows))
            col = int(rng.integers(0, n_cols))
            stop = min(row + block_length, n_rows)
            run = mask[row:stop, col]
            removed += int(run.sum())
            run[:] = False
        values = self._values.copy()
        values[~mask] = np.nan
        return TimeSeries(values, timestamps=self._timestamps, mask=mask,
                          name=self.name)
