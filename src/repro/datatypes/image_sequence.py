"""Image sequences (paper Definition 4).

An image sequence ``V = <I_1, ..., I_T>`` is a grid-based spatio-temporal
representation: each frame is an ``N x M`` grid of spatial regions with
``C`` observed properties per cell (e.g. citywide crowd in/out flows
[18, 19]).  The type offers the frame/cell accessors and the
grid-to-series conversions used by the fusion and forecasting layers.
"""

from __future__ import annotations

import numpy as np

from .timeseries import TimeSeries

__all__ = ["ImageSequence"]


class ImageSequence:
    """A sequence of ``T`` frames, each an ``(N, M, C)`` grid.

    Parameters
    ----------
    frames:
        Array of shape ``(T, N, M)`` or ``(T, N, M, C)``.
    timestamps:
        Optional shape ``(T,)`` strictly increasing time axis.
    """

    def __init__(self, frames, timestamps=None):
        array = np.asarray(frames, dtype=float)
        if array.ndim == 3:
            array = array[..., None]
        if array.ndim != 4:
            raise ValueError(
                f"frames must have shape (T, N, M[, C]), got {array.shape}"
            )
        if 0 in array.shape:
            raise ValueError("frames must be non-empty in every dimension")
        self._frames = array.copy()

        if timestamps is None:
            self._timestamps = np.arange(array.shape[0], dtype=float)
        else:
            self._timestamps = np.asarray(timestamps, dtype=float)
            if self._timestamps.shape != (array.shape[0],):
                raise ValueError(
                    f"timestamps must have shape ({array.shape[0]},), "
                    f"got {self._timestamps.shape}"
                )
            if np.any(np.diff(self._timestamps) <= 0):
                raise ValueError("timestamps must be strictly increasing")

    # -- protocol --------------------------------------------------------

    def __len__(self):
        return self._frames.shape[0]

    def __repr__(self):
        t, n, m, c = self._frames.shape
        return f"ImageSequence(frames={t}, grid={n}x{m}, channels={c})"

    # -- accessors -------------------------------------------------------

    @property
    def frames(self):
        """Array of shape ``(T, N, M, C)``."""
        return self._frames.copy()

    @property
    def timestamps(self):
        return self._timestamps.copy()

    @property
    def grid_shape(self):
        """The ``(N, M)`` spatial extent."""
        return self._frames.shape[1:3]

    @property
    def n_channels(self):
        return self._frames.shape[3]

    def frame(self, index):
        """Frame ``index`` as an ``(N, M, C)`` array."""
        return self._frames[index].copy()

    def cell_series(self, row, col, channel=0):
        """The temporal evolution of one grid cell as a :class:`TimeSeries`."""
        n, m = self.grid_shape
        if not (0 <= row < n and 0 <= col < m):
            raise IndexError(f"cell ({row}, {col}) outside grid {n}x{m}")
        if not 0 <= channel < self.n_channels:
            raise IndexError(f"channel {channel} out of range")
        return TimeSeries(
            self._frames[:, row, col, channel],
            timestamps=self._timestamps,
            name=f"cell_{row}_{col}",
        )

    def to_timeseries(self, channel=0):
        """Flatten the grid into an ``(T, N*M)`` multivariate series.

        Cell ``(r, c)`` maps to column ``r * M + c``; this is the format
        the correlated-time-series analytics consume.
        """
        t, n, m, _ = self._frames.shape
        flat = self._frames[..., channel].reshape(t, n * m)
        return TimeSeries(flat, timestamps=self._timestamps)

    def spatial_mean(self, channel=0):
        """Per-frame mean over the grid — a citywide aggregate series."""
        means = self._frames[..., channel].mean(axis=(1, 2))
        return TimeSeries(means, timestamps=self._timestamps, name="grid_mean")

    def downsample(self, factor):
        """Spatially pool ``factor x factor`` blocks by averaging.

        Grid dimensions must be divisible by ``factor``; this mirrors the
        multi-granularity views used by cross-modal pretraining [22, 23].
        """
        if factor < 1:
            raise ValueError(f"factor must be >= 1, got {factor}")
        t, n, m, c = self._frames.shape
        if n % factor or m % factor:
            raise ValueError(
                f"grid {n}x{m} not divisible by factor {factor}"
            )
        blocks = self._frames.reshape(t, n // factor, factor, m // factor,
                                      factor, c)
        pooled = blocks.mean(axis=(2, 4))
        return ImageSequence(pooled, timestamps=self._timestamps)
