"""The embedded decision server: micro-batching + admission control.

:class:`DecisionServer` turns the library's batch query APIs into a
long-lived serving loop, the "decision making serving real queries"
end of the paper's Figure-1 paradigm:

* clients :meth:`~DecisionServer.submit` typed queries from any
  thread and get a :class:`concurrent.futures.Future` resolving to a
  :class:`ServeResult`;
* a single dispatcher thread collects concurrent requests into
  **micro-batches** (up to ``batch_window`` seconds / ``max_batch``
  requests) and coalesces them into one ``route_many`` /
  ``match_many`` call per group and one deduplicated
  ``dijkstra_array`` search per distinct source — so a burst of k
  identical queries costs one computation, not k;
* **admission control** keeps the server responsive under overload:
  the request queue is bounded, and when it is full the *lowest
  priority loses* — an arriving request evicts the lowest-priority
  queued request (``Overloaded(reason="shed_priority")``) when it
  outranks one, and is otherwise shed itself
  (``reason="queue_full"``); requests whose ``deadline=`` budget is
  already smaller than the estimated queue wait are shed up front
  with ``reason="doomed"`` instead of queueing work whose answer
  nobody can use;
* per-request ``deadline=`` budgets map to the run-deadline machinery
  of the engine: a request that expires while queued (or whose batch
  finishes too late) resolves as ``"deadline_exceeded"`` carrying a
  :class:`repro.core.RunDeadlineExceeded`.

Everything the server does is published through the process metrics
registry (``serve.requests_total{outcome}``, ``serve.queue_depth``,
``serve.batch_size``, ``serve.latency_seconds``,
``serve.queue_seconds``); see
``docs/SERVING.md`` for the full table and the SLO semantics.

Because one dispatcher thread executes all batches sequentially over
the (now thread-safe) shared caches, server answers are identical to
direct single-threaded calls of the underlying APIs — the equivalence
the serving tests and the E28 benchmark gate on.
"""

from __future__ import annotations

import queue
import threading
import time
from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Any

from ..core import RunDeadlineExceeded
from .requests import (
    DistanceQuery,
    MatchQuery,
    Overloaded,
    RouteQuery,
    ServeResult,
)

__all__ = ["DecisionServer"]

#: Bucket bounds for the ``serve.batch_size`` histogram (requests).
_BATCH_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0)

#: Dispatcher wake-up period while idle (also the close() latency).
_POLL_SECONDS = 0.05

#: Sentinel shutting the dispatcher down after the queue drains.
_STOP = object()


@dataclass
class _Pending:
    """One admitted request travelling through the queue."""

    query: Any
    op: str
    future: Future
    enqueued_at: float
    deadline_at: float | None
    utility: Any = None
    priority: int = 0
    dispatched_at: float = field(default=0.0)

    def expired(self, now):
        return self.deadline_at is not None and now > self.deadline_at


class _RequestQueue:
    """Bounded FIFO with priority-aware eviction at capacity.

    Dispatch order stays strictly FIFO (priorities do not jump the
    line — batching equivalence depends on arrival order), but when
    the queue is full :meth:`offer` evicts the lowest-priority queued
    request if the arrival outranks it, so under overload the lowest
    priorities are shed first.  Mirrors the :class:`queue.Queue`
    surface the dispatcher uses (``get(timeout=)`` / ``get_nowait``
    raising :class:`queue.Empty`, unbounded :meth:`put` for the stop
    sentinel).
    """

    def __init__(self, maxsize):
        self.maxsize = int(maxsize)
        self._items = deque()
        self._not_empty = threading.Condition(threading.Lock())  # noqa: RC034 -- in-process request queue; never pickled

    def qsize(self):
        with self._not_empty:
            return len(self._items)

    def put(self, item):
        """Unbounded append (the ``_STOP`` sentinel only)."""
        with self._not_empty:
            self._items.append(item)
            self._not_empty.notify()

    def offer(self, pending):
        """Admit ``pending`` if there is room or something outranked.

        Returns ``(admitted, evicted)``: ``(True, None)`` for a plain
        append, ``(True, victim)`` when the lowest-priority queued
        request was evicted to make room (the caller must resolve the
        victim as shed), ``(False, None)`` when the queue is full of
        equal-or-higher priorities.
        """
        with self._not_empty:
            if len(self._items) < self.maxsize:
                self._items.append(pending)
                self._not_empty.notify()
                return True, None
            victim_index = None
            for index, item in enumerate(self._items):
                if item is _STOP:
                    continue
                # <= keeps the *latest* of the equally lowest queued,
                # so earlier same-priority arrivals keep their place.
                if victim_index is None or \
                        item.priority <= self._items[victim_index].priority:
                    victim_index = index
            if victim_index is None or \
                    self._items[victim_index].priority >= pending.priority:
                return False, None
            victim = self._items[victim_index]
            del self._items[victim_index]
            self._items.append(pending)
            self._not_empty.notify()
            return True, victim

    def get(self, timeout=None):
        with self._not_empty:
            if not self._items:
                self._not_empty.wait(timeout)
            if not self._items:
                raise queue.Empty
            return self._items.popleft()

    def get_nowait(self):
        with self._not_empty:
            if not self._items:
                raise queue.Empty
            return self._items.popleft()


class DecisionServer:
    """Long-lived embedded server over router / matcher / network.

    Parameters
    ----------
    router:
        A :class:`~repro.decision.StochasticRouter` serving
        :class:`RouteQuery` (optional).
    matcher:
        A :class:`~repro.governance.fusion.HmmMapMatcher` serving
        :class:`MatchQuery` (optional).
    network:
        A :class:`~repro.datatypes.RoadNetwork` serving
        :class:`DistanceQuery`; defaults to the router's / matcher's
        network.
    utility:
        Default utility for :class:`RouteQuery` requests that do not
        carry their own.
    max_queue:
        Bound on the request queue; a full queue sheds
        (``Overloaded(reason="queue_full")``).
    batch_window:
        Seconds the dispatcher waits to coalesce more requests after
        picking up the first of a batch.  ``0`` batches only what is
        already queued.
    max_batch:
        Hard cap on requests per micro-batch.
    prune:
        Forwarded to ``route_many`` (stochastic-dominance pruning).
    shed_doomed:
        Enable deadline-aware admission shedding (on by default).
    """

    def __init__(self, *, router=None, matcher=None, network=None,
                 utility=None, max_queue=256, batch_window=0.002,
                 max_batch=64, prune=True, shed_doomed=True):
        if router is None and matcher is None and network is None:
            raise ValueError(
                "need at least one of router=, matcher=, network=")
        self.router = router
        self.matcher = matcher
        self.network = network
        if self.network is None and router is not None:
            self.network = router.network
        if self.network is None and matcher is not None:
            self.network = matcher.network
        self.utility = utility
        if max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {max_queue}")
        if batch_window < 0:
            raise ValueError("batch_window must be >= 0")
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        self.max_queue = int(max_queue)
        self.batch_window = float(batch_window)
        self.max_batch = int(max_batch)
        self.prune = bool(prune)
        self.shed_doomed = bool(shed_doomed)

        self._queue = _RequestQueue(self.max_queue)
        self._closed = False
        self._state_lock = threading.Lock()  # noqa: RC034 -- live server with worker threads; never pickled
        self._outcome_counts = {}
        self._submitted = 0
        self._batches = 0
        # EWMA of per-request service seconds, feeding the doomed-
        # shedding wait estimate; 0.0 until the first batch completes.
        self._ewma_service = 0.0
        self._dispatcher = threading.Thread(
            target=self._run, name="decision-server", daemon=True)
        self._dispatcher.start()

    # -- client API --------------------------------------------------------

    def submit(self, query, *, deadline=None):
        """Admit ``query``; returns a Future of :class:`ServeResult`.

        Never blocks and never raises for load reasons: admission
        failures resolve the future immediately with a typed
        :class:`Overloaded` result.  Raises only for caller errors
        (unknown query type, missing backend, closed server).
        """
        op = self._op_for(query)
        if self._closed:
            raise RuntimeError("server is closed")
        if deadline is not None and float(deadline) <= 0:
            raise ValueError("deadline must be positive or None")
        now = time.perf_counter()
        future = Future()
        pending = _Pending(
            query=query, op=op, future=future, enqueued_at=now,
            deadline_at=None if deadline is None
            else now + float(deadline),
            utility=getattr(query, "utility", None) or self.utility,
            priority=int(getattr(query, "priority", 0)),
        )
        if deadline is not None and self.shed_doomed:
            estimated_wait = self._queue.qsize() * self._ewma_service
            if estimated_wait > float(deadline):
                self._resolve(pending, Overloaded(
                    op=op, reason="doomed"), now)
                return future
        admitted, evicted = self._queue.offer(pending)
        if not admitted:
            self._resolve(pending, Overloaded(
                op=op, reason="queue_full"), now)
            return future
        if evicted is not None:
            self._resolve(evicted, Overloaded(
                op=evicted.op, reason="shed_priority"), now)
        with self._state_lock:
            self._submitted += 1
        self._gauge("serve.queue_depth").set(self._queue.qsize())
        return future

    def route(self, origin, destination, *, departure_minute=0.0,
              utility=None, deadline=None, priority=0):
        """Blocking :class:`RouteQuery` convenience."""
        return self.submit(
            RouteQuery(origin, destination, departure_minute,
                       utility, priority), deadline=deadline).result()

    def match(self, trajectory, *, deadline=None, priority=0):
        """Blocking :class:`MatchQuery` convenience."""
        return self.submit(MatchQuery(trajectory, priority),
                           deadline=deadline).result()

    def distances(self, source, *, cutoff=None, deadline=None,
                  priority=0):
        """Blocking :class:`DistanceQuery` convenience."""
        return self.submit(DistanceQuery(source, cutoff, priority),
                           deadline=deadline).result()

    def stats(self):
        """Serving counters: submissions, outcomes, queue, EWMA."""
        with self._state_lock:
            return {
                "submitted": self._submitted,
                "batches": self._batches,
                "outcomes": dict(self._outcome_counts),
                "queue_depth": self._queue.qsize(),
                "ewma_service_seconds": self._ewma_service,
                "closed": self._closed,
            }

    def close(self, *, drain=True):
        """Stop admitting; optionally serve what is already queued.

        With ``drain=False`` queued requests resolve as
        ``Overloaded(reason="queue_full")`` instead of being served.
        """
        if self._closed:
            return
        self._closed = True
        if not drain:
            while True:
                try:
                    pending = self._queue.get_nowait()
                except queue.Empty:
                    break
                self._resolve(pending, Overloaded(
                    op=pending.op, reason="queue_full"),
                    time.perf_counter())
        # The sentinel rides the same queue, so it is processed only
        # after everything admitted before close().
        self._queue.put(_STOP)
        self._dispatcher.join()

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()
        return False

    # -- dispatch loop -----------------------------------------------------

    def _run(self):
        stop = False
        while not stop:
            try:
                first = self._queue.get(timeout=_POLL_SECONDS)
            except queue.Empty:
                continue
            if first is _STOP:
                break
            batch = [first]
            window_end = time.perf_counter() + self.batch_window
            while len(batch) < self.max_batch:
                remaining = window_end - time.perf_counter()
                try:
                    item = (self._queue.get(timeout=remaining)
                            if remaining > 0
                            else self._queue.get_nowait())
                except queue.Empty:
                    break
                if item is _STOP:
                    stop = True
                    break
                batch.append(item)
            self._process(batch)
        self._gauge("serve.queue_depth").set(0)

    def _process(self, batch):
        dispatched_at = time.perf_counter()
        self._gauge("serve.queue_depth").set(self._queue.qsize())
        with self._state_lock:
            self._batches += 1
        live = []
        for pending in batch:
            pending.dispatched_at = dispatched_at
            if pending.expired(dispatched_at):
                self._resolve(pending, self._expired_result(pending),
                              dispatched_at)
            else:
                live.append(pending)
        if not live:
            return
        groups = self._group(live)
        for (op, _), members in groups.items():
            started = time.perf_counter()
            results = self._dispatch(op, members)
            wall = time.perf_counter() - started
            self._observe_batch(op, len(members), wall)
            finished = time.perf_counter()
            for pending, result in zip(members, results):
                result.op = pending.op
                result.service_seconds = wall
                result.batch_size = len(members)
                if result.ok and pending.expired(finished):
                    result = self._expired_result(pending)
                    result.service_seconds = wall
                    result.batch_size = len(members)
                self._resolve(pending, result, finished)

    def _group(self, live):
        """Stable grouping: op kind, and utility identity for routes."""
        groups = {}
        for pending in live:
            key = (pending.op,
                   id(pending.utility) if pending.op == "route"
                   else None)
            groups.setdefault(key, []).append(pending)
        return groups

    def _dispatch(self, op, members):
        """One batched backend call; one ServeResult per member."""
        try:
            if op == "route":
                return self._dispatch_routes(members)
            if op == "match":
                return self._dispatch_matches(members)
            return self._dispatch_distances(members)
        except Exception as error:  # systemic batch failure
            return [ServeResult(outcome="error", error=error)
                    for _ in members]

    def _dispatch_routes(self, members):
        utility = members[0].utility
        if self.router is None:
            raise ValueError("server has no router for RouteQuery")
        if utility is None:
            raise ValueError(
                "RouteQuery needs a utility (request or server default)")
        queries = [
            (p.query.origin, p.query.destination,
             p.query.departure_minute)
            for p in members
        ]
        values = self.router.route_many(queries, utility,
                                        prune=self.prune)
        return [ServeResult(value=value) for value in values]

    def _dispatch_matches(self, members):
        if self.matcher is None:
            raise ValueError("server has no matcher for MatchQuery")
        trajectories = [p.query.trajectory for p in members]
        try:
            matched = self.matcher.match_many(trajectories)
        except Exception:
            # One bad trajectory poisons a shared batch; isolate it by
            # re-matching individually (cheap: the distance LRU is hot).
            results = []
            for trajectory in trajectories:
                try:
                    results.append(
                        ServeResult(value=self.matcher.match(trajectory)))
                except Exception as error:
                    results.append(ServeResult(outcome="error",
                                               error=error))
            return results
        return [ServeResult(value=value) for value in matched]

    def _dispatch_distances(self, members):
        if self.network is None:
            raise ValueError("server has no network for DistanceQuery")
        rows = {}
        results = []
        for pending in members:
            key = (pending.query.source, pending.query.cutoff)
            try:
                if key not in rows:
                    rows[key] = self.network.dijkstra_array(
                        key[0], cutoff=key[1])
                results.append(ServeResult(value=rows[key]))
            except Exception as error:
                results.append(ServeResult(outcome="error",
                                           error=error))
        return results

    # -- bookkeeping -------------------------------------------------------

    @staticmethod
    def _op_for(query):
        if isinstance(query, RouteQuery):
            return "route"
        if isinstance(query, MatchQuery):
            return "match"
        if isinstance(query, DistanceQuery):
            return "distance"
        raise TypeError(
            f"unknown query type {type(query).__name__!r}; expected "
            "RouteQuery, MatchQuery or DistanceQuery")

    def _expired_result(self, pending):
        budget = pending.deadline_at - pending.enqueued_at
        return ServeResult(
            op=pending.op, outcome="deadline_exceeded",
            error=RunDeadlineExceeded(
                f"request deadline ({budget:.3f}s) expired before a "
                f"{pending.op} result was produced"))

    def _resolve(self, pending, result, now):
        result.op = pending.op
        result.queue_seconds = max(
            0.0, (pending.dispatched_at or now) - pending.enqueued_at)
        latency = max(0.0, now - pending.enqueued_at)
        registry = self._registry()
        labels = {"outcome": result.outcome}
        if isinstance(result, Overloaded):
            labels["reason"] = result.reason
        registry.counter(
            "serve.requests_total",
            "DecisionServer requests by outcome").inc(1, **labels)
        registry.histogram(
            "serve.latency_seconds",
            "Submit-to-resolve latency by query kind").observe(
                latency, op=pending.op)
        registry.histogram(
            "serve.queue_seconds",
            "Time spent queued before dispatch").observe(
                result.queue_seconds, op=pending.op)
        with self._state_lock:
            self._outcome_counts[result.outcome] = \
                self._outcome_counts.get(result.outcome, 0) + 1
        pending.future.set_result(result)

    def _observe_batch(self, op, size, wall):
        registry = self._registry()
        registry.histogram(
            "serve.batch_size",
            "Coalesced requests per backend batch call",
            buckets=_BATCH_BUCKETS).observe(size, op=op)
        per_request = wall / max(size, 1)
        with self._state_lock:
            if self._ewma_service:
                self._ewma_service = (0.8 * self._ewma_service
                                      + 0.2 * per_request)
            else:
                self._ewma_service = per_request

    @staticmethod
    def _registry():
        from ..observability.metrics import get_registry

        return get_registry()

    def _gauge(self, name):
        return self._registry().gauge(
            name, "Requests waiting in the server queue")

    def __repr__(self):
        return (f"DecisionServer(queue={self._queue.qsize()}/"
                f"{self.max_queue}, window={self.batch_window}, "
                f"closed={self._closed})")
