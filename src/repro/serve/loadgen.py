"""Closed-loop load generation against a :class:`DecisionServer`.

The harness behind the E28 serving benchmark and the CI smoke: spin
up ``n_clients`` closed-loop clients (each submits its next request
only after the previous one resolves — the standard way to measure a
server at a bounded concurrency level), run for a fixed duration, and
fold every response into a :class:`LoadReport` with sustained qps,
client-observed latency percentiles and the shed rate.

Latency percentiles here are computed from the *raw* client-side
samples through the shared
:func:`repro.benchmarking.summarize_latencies` harness, so they are
exact; the server's own ``serve.latency_seconds`` histogram yields
the same shape through :meth:`Histogram.quantile` bucket estimation,
which the benchmark cross-checks.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

from ..benchmarking.latency import summarize_latencies

__all__ = ["LoadReport", "closed_loop"]


@dataclass
class LoadReport:
    """Aggregate of one closed-loop run."""

    duration_seconds: float
    n_clients: int
    submitted: int
    outcomes: dict = field(default_factory=dict)
    qps: float = 0.0
    shed_rate: float = 0.0
    latency_p50: float = 0.0
    latency_p99: float = 0.0
    latency_mean: float = 0.0
    latency_max: float = 0.0

    def to_dict(self):
        """JSON-ready dict (what BENCH_e28.json embeds)."""
        return {
            "duration_seconds": self.duration_seconds,
            "n_clients": self.n_clients,
            "submitted": self.submitted,
            "outcomes": dict(self.outcomes),
            "qps": self.qps,
            "shed_rate": self.shed_rate,
            "latency_p50": self.latency_p50,
            "latency_p99": self.latency_p99,
            "latency_mean": self.latency_mean,
            "latency_max": self.latency_max,
        }


def closed_loop(server, make_query, *, n_clients=8, duration=1.0,
                deadline=None):
    """Run ``n_clients`` closed-loop clients for ``duration`` seconds.

    Parameters
    ----------
    server:
        The :class:`DecisionServer` under test.
    make_query:
        ``make_query(client_index, iteration)`` returns the next query
        object for that client — the workload definition.
    n_clients:
        Concurrent closed-loop clients (threads).
    duration:
        Seconds each client keeps issuing requests.
    deadline:
        Optional per-request deadline budget (seconds), forwarded to
        :meth:`DecisionServer.submit` — this is what arms both
        deadline-aware shedding and the ``deadline_exceeded`` outcome.

    Returns
    -------
    LoadReport
        ``qps`` counts *ok* responses over the measured wall clock;
        ``shed_rate`` is the overloaded fraction of submissions;
        latency fields summarize ok responses only.
    """
    if n_clients < 1:
        raise ValueError(f"n_clients must be >= 1, got {n_clients}")
    barrier = threading.Barrier(n_clients + 1)
    lock = threading.Lock()
    latencies = []
    outcomes = {}
    submitted = [0]

    def client(index):
        barrier.wait()
        iteration = 0
        local_latencies = []
        local_outcomes = {}
        while time.perf_counter() < t_end:
            query = make_query(index, iteration)
            started = time.perf_counter()
            result = server.submit(query, deadline=deadline).result()
            elapsed = time.perf_counter() - started
            local_outcomes[result.outcome] = \
                local_outcomes.get(result.outcome, 0) + 1
            if result.ok:
                local_latencies.append(elapsed)
            iteration += 1
        with lock:
            latencies.extend(local_latencies)
            submitted[0] += iteration
            for outcome, count in local_outcomes.items():
                outcomes[outcome] = outcomes.get(outcome, 0) + count

    threads = [
        threading.Thread(target=client, args=(i,),
                         name=f"loadgen-{i}", daemon=True)
        for i in range(n_clients)
    ]
    for thread in threads:
        thread.start()
    t_start = time.perf_counter()
    t_end = t_start + float(duration)
    barrier.wait()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - t_start

    report = LoadReport(duration_seconds=wall, n_clients=n_clients,
                        submitted=submitted[0], outcomes=outcomes)
    ok = outcomes.get("ok", 0)
    shed = outcomes.get("overloaded", 0)
    report.qps = ok / wall if wall > 0 else 0.0
    report.shed_rate = shed / submitted[0] if submitted[0] else 0.0
    summary = summarize_latencies(latencies)
    report.latency_p50 = summary.p50
    report.latency_p99 = summary.p99
    report.latency_mean = summary.mean
    report.latency_max = summary.max
    return report
