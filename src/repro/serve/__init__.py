"""Serving layer: request batching, deadlines and admission control.

The request-facing end of the Figure-1 paradigm — a long-lived
embedded :class:`DecisionServer` that coalesces concurrent route /
match / distance queries into the library's batch APIs, enforces
per-request deadline budgets, and sheds load it cannot serve in time
instead of queueing doomed work.  ``docs/SERVING.md`` is the guide.
"""

from .loadgen import LoadReport, closed_loop
from .requests import (
    DistanceQuery,
    MatchQuery,
    Overloaded,
    RouteQuery,
    ServeResult,
)
from .server import DecisionServer

__all__ = [
    "DecisionServer",
    "DistanceQuery",
    "LoadReport",
    "MatchQuery",
    "Overloaded",
    "RouteQuery",
    "ServeResult",
    "closed_loop",
]
