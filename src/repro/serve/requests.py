"""Typed requests and results for the serving layer.

A :class:`DecisionServer` accepts three query kinds, mirroring the
batch APIs the hot-path layer already exposes:

* :class:`RouteQuery`  → coalesced into ``StochasticRouter.route_many``,
* :class:`MatchQuery`  → coalesced into ``HmmMapMatcher.match_many``,
* :class:`DistanceQuery` → deduplicated into
  ``RoadNetwork.dijkstra_array`` calls.

Every submission resolves to a :class:`ServeResult` (never an
exception): ``outcome`` says what happened, ``value`` carries the
answer for ``"ok"`` results, and the timing fields make per-request
latency auditable.  Admission control resolves shed requests with the
:class:`Overloaded` subtype *immediately* instead of queueing doomed
work.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

__all__ = [
    "DistanceQuery",
    "MatchQuery",
    "Overloaded",
    "RouteQuery",
    "ServeResult",
]


@dataclass(frozen=True)
class RouteQuery:
    """One stochastic-routing request.

    ``utility`` overrides the server's default utility for this
    request; requests sharing a utility object batch together.
    ``priority`` (higher = more important) decides who gets shed when
    the queue is full: an arriving request may evict a queued
    lower-priority one instead of being dropped itself.
    """

    origin: Any
    destination: Any
    departure_minute: float = 0.0
    utility: Any = None
    priority: int = 0


@dataclass(frozen=True)
class MatchQuery:
    """One map-matching request for a GPS :class:`Trajectory`."""

    trajectory: Any
    priority: int = 0


@dataclass(frozen=True)
class DistanceQuery:
    """One single-source network-distance request.

    Resolves to the :meth:`RoadNetwork.dijkstra_array` row for
    ``source`` (bounded by ``cutoff`` when given).  Identical queries
    in one batch share a single search; the returned array is shared —
    treat it as read-only.
    """

    source: Any
    cutoff: float | None = None
    priority: int = 0


@dataclass
class ServeResult:
    """What the server resolved a request to.

    ``outcome`` is one of:

    * ``"ok"`` — ``value`` holds the answer (``best_path`` triple /
      ``None`` for uncovered routes, match candidate list, distance
      row);
    * ``"error"`` — the query itself failed; ``error`` holds the
      exception (e.g. an off-map trajectory's ``ValueError``);
    * ``"deadline_exceeded"`` — the per-request budget expired before
      a result was produced; ``error`` holds a
      :class:`RunDeadlineExceeded`;
    * ``"overloaded"`` — shed at admission (see :class:`Overloaded`).
    """

    op: str = ""
    outcome: str = "ok"
    value: Any = None
    error: BaseException | None = None
    queue_seconds: float = 0.0
    service_seconds: float = 0.0
    batch_size: int = 0

    @property
    def ok(self):
        return self.outcome == "ok"


@dataclass
class Overloaded(ServeResult):
    """Typed load-shedding result, returned without queueing.

    ``reason`` is ``"queue_full"`` (the bounded queue is at capacity
    and nothing queued has lower priority), ``"shed_priority"`` (this
    queued request was evicted to admit a higher-priority arrival), or
    ``"doomed"`` (deadline-aware shedding: the estimated queue wait
    already exceeds the request's deadline budget, so queueing it
    would only waste service time on a result nobody can use).
    """

    outcome: str = field(default="overloaded")
    reason: str = "queue_full"
