"""Concurrency analysis: lock discipline of shared-state classes.

The serving era turned several single-thread classes into shared
infrastructure (matcher LRU, router memos, RoadNetwork snapshots,
metrics registries), and the recurring bug classes were always the
same mechanical shapes -- a counter reset outside the lock that
guards it, a read-modify-write flush whose read and watermark advance
stopped being atomic, a Dijkstra run while holding the cache lock, a
lazily built snapshot installed without the double-checked idiom, a
lock leaking into ``__getstate__`` and breaking ProcessExecutor
pickling.  This module shifts those left: it AST-extracts, per class,

* the **lock inventory** -- attributes assigned
  ``threading.Lock/RLock/Condition/Semaphore`` (or used directly as
  ``with self._lock:`` context managers);
* every **attribute access** of each method together with the
  innermost self-lock held at that point (``with self._lock:`` blocks
  are the only acquisition idiom this repo uses -- there is no manual
  ``acquire``/``release`` anywhere, which keeps the static model
  exact);
* **read-modify-write statements** (augmented assignment, or a plain
  assignment whose right-hand side reads another guarded attribute);
* **lazy-initialization tests** (``if self._x is None: self._x = ...``)
  and whether they run under a lock;
* **calls executed while a lock is held**, filtered against a
  repo-curated list of known-expensive operations;
* the ``__getstate__`` hygiene of lock-bearing classes.

On top of that inventory live the ``class``-scope rules RC030-RC034
(see ``docs/STATIC_ANALYSIS.md`` for the catalogue and the documented
thread-safety idioms).  Like every other rule family the checks are
deliberately conservative: construction-time methods (``__init__``,
``__setstate__`` and private helpers called only from those) are
exempt, classes without any lock are never examined, and aliasing the
attribute into a local before testing it hides the access -- escapes
make the analyzer stand down, never invent a finding.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from .findings import ERROR, WARNING, register_rule

__all__ = [
    "ClassInfo",
    "MethodInfo",
    "extract_classes",
]

#: threading factory callables whose result is a lock-like object.
LOCK_FACTORIES = frozenset({
    "Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore",
})

#: Methods that run before (or while) the instance is shared, so
#: unguarded writes there are construction, not racing: __init__ and
#: the pickle protocol rebuild the object single-threaded.
_EXEMPT_METHODS = frozenset({
    "__init__", "__new__", "__del__",
    "__getstate__", "__setstate__", "__reduce__", "__reduce_ex__",
    "__copy__", "__deepcopy__", "__init_subclass__",
})

#: Known-expensive callables (trailing name) that must not run while a
#: lock is held: graph searches, the W1/DTW reduction kernels, batch
#: serving entry points, blocking sleeps and filesystem I/O.  The
#: matcher-LRU idiom is probe under the lock, compute outside it,
#: install under the lock -- see docs/STATIC_ANALYSIS.md.
EXPENSIVE_CALLS = frozenset({
    # bounded/unbounded graph searches (RoadNetwork)
    "dijkstra_all", "dijkstra_array", "shortest_path",
    # batch serving entry points (PR 7)
    "route_many", "match_many",
    # scenario-reduction kernels (PR 8)
    "wasserstein_matrix", "dtw_band_matrix", "reduce_scenarios",
    "dominance_prune", "select_best", "stochastic_pareto_front",
    # blocking sleeps and filesystem / network I/O
    "sleep", "open", "urlopen", "read_text", "write_text",
    "read_bytes", "write_bytes",
})


@dataclass
class AttrAccess:
    """One ``self.<attr>`` access inside a method."""

    attr: str
    lineno: int
    col_offset: int
    #: innermost self-lock attribute held at the access, or None
    lock: str | None
    #: "read" | "write" | "rmw" (augmented assignment)
    kind: str


@dataclass
class SelfAssign:
    """One assignment statement targeting ``self.<attr>``."""

    targets: tuple
    rhs_reads: frozenset
    lineno: int
    col_offset: int
    lock: str | None
    aug: bool


@dataclass
class LockedCall:
    """A call executed while at least one self-lock is held."""

    name: str
    lineno: int
    col_offset: int
    lock: str


@dataclass
class LazyInit:
    """``if self.<attr> is None / not self.<attr>: self.<attr> = ...``"""

    attr: str
    lineno: int
    col_offset: int
    lock: str | None


@dataclass
class MethodInfo:
    """Lock-relevant effects of one method body."""

    name: str
    lineno: int
    node: object
    self_name: str | None
    accesses: list = field(default_factory=list)
    assigns: list = field(default_factory=list)
    locked_calls: list = field(default_factory=list)
    lazy_inits: list = field(default_factory=list)
    #: names of self.<m>() method calls (construction-exemption graph)
    self_calls: set = field(default_factory=set)
    #: lock attributes this method acquires via ``with self.<attr>:``
    locks_used: set = field(default_factory=set)


@dataclass
class ClassInfo:
    """Lock inventory + per-method access map of one class."""

    name: str
    lineno: int
    col_offset: int
    node: object
    #: lock attr -> line of the ``self.<attr> = threading.X()`` site
    lock_attrs: dict = field(default_factory=dict)
    #: lock attrs only ever seen as ``with self.<attr>:`` (no factory
    #: assignment in this class body -- injected or inherited)
    with_only_locks: set = field(default_factory=set)
    methods: dict = field(default_factory=dict)

    def exempt_methods(self):
        """Construction-only methods: dunders of the exempt set plus
        private helpers reachable *only* from them (fixpoint over the
        self-call graph, e.g. ``_init_caches`` called from both
        ``__init__`` and ``__setstate__``)."""
        exempt = {name for name in self.methods
                  if name in _EXEMPT_METHODS}
        callers = {}
        for name, method in self.methods.items():
            for callee in method.self_calls:
                callers.setdefault(callee, set()).add(name)
        changed = True
        while changed:
            changed = False
            for name in self.methods:
                if name in exempt or not name.startswith("_"):
                    continue
                calling = callers.get(name)
                if calling and calling <= exempt:
                    exempt.add(name)
                    changed = True
        return exempt

    def guarded_attrs(self, kinds=("read", "write", "rmw")):
        """Attributes accessed under any self-lock, by kind filter."""
        guarded = set()
        for method in self.methods.values():
            for access in method.accesses:
                if access.lock is not None and access.kind in kinds:
                    guarded.add(access.attr)
        return guarded


def _lock_factory_call(node):
    """Whether ``node`` is a call constructing a lock-like object."""
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    name = (func.id if isinstance(func, ast.Name)
            else func.attr if isinstance(func, ast.Attribute)
            else None)
    return name in LOCK_FACTORIES


class _MethodVisitor:
    """Recursive walk of one method body tracking held self-locks.

    Not an ``ast.NodeVisitor``: the with-lock context is a stack that
    must wrap exactly the statements lexically inside the ``with``
    body, which a hand-rolled recursion expresses directly.
    """

    def __init__(self, method, lock_attrs):
        self.method = method
        self.self_name = method.self_name
        self.lock_attrs = lock_attrs
        self.locks = []  # stack of held lock attr names

    # -- helpers -----------------------------------------------------

    def _held(self):
        return self.locks[-1] if self.locks else None

    def _self_attr(self, node):
        """attr name for a ``self.<attr>`` node, else None."""
        if (isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id == self.self_name):
            return node.attr
        return None

    def _access(self, attr, node, kind):
        self.method.accesses.append(AttrAccess(
            attr=attr, lineno=node.lineno,
            col_offset=node.col_offset,
            lock=self._held(), kind=kind))

    def _self_reads_in(self, node):
        """Every ``self.<attr>`` read inside an expression."""
        reads = set()
        for sub in ast.walk(node):
            attr = self._self_attr(sub)
            if attr is not None:
                reads.add(attr)
        return frozenset(reads)

    # -- traversal ---------------------------------------------------

    def walk(self, statements):
        for statement in statements:
            self.visit(statement)

    def visit(self, node):
        handler = getattr(self, "visit_" + type(node).__name__, None)
        if handler is not None:
            handler(node)
            return
        self.generic(node)

    def generic(self, node):
        for child in ast.iter_child_nodes(node):
            self.visit(child)

    def visit_FunctionDef(self, node):
        # Nested defs run later, possibly without the lock: do not
        # attribute their accesses to the current lock context.
        held, self.locks = self.locks, []
        self.generic(node)
        self.locks = held

    visit_AsyncFunctionDef = visit_FunctionDef
    visit_Lambda = visit_FunctionDef

    def visit_With(self, node):
        acquired = []
        for item in node.items:
            attr = self._self_attr(item.context_expr)
            if attr is not None and (attr in self.lock_attrs
                                     or attr.endswith("lock")):
                acquired.append(attr)
                self.method.locks_used.add(attr)
            else:
                self.visit(item.context_expr)
            if item.optional_vars is not None:
                self.visit(item.optional_vars)
        self.locks.extend(acquired)
        self.walk(node.body)
        if acquired:
            del self.locks[-len(acquired):]

    visit_AsyncWith = visit_With

    def visit_Assign(self, node):
        targets = tuple(attr for target in node.targets
                        for attr in self._assign_targets(target))
        for target in node.targets:
            self.visit(target)
        self.visit(node.value)
        if targets:
            self.method.assigns.append(SelfAssign(
                targets=targets,
                rhs_reads=self._self_reads_in(node.value),
                lineno=node.lineno, col_offset=node.col_offset,
                lock=self._held(), aug=False))

    def _assign_targets(self, target):
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                yield from self._assign_targets(element)
            return
        attr = self._self_attr(target)
        if attr is not None:
            yield attr

    def visit_AnnAssign(self, node):
        attr = self._self_attr(node.target)
        self.visit(node.target)
        if node.value is not None:
            self.visit(node.value)
            if attr is not None:
                self.method.assigns.append(SelfAssign(
                    targets=(attr,),
                    rhs_reads=self._self_reads_in(node.value),
                    lineno=node.lineno,
                    col_offset=node.col_offset,
                    lock=self._held(), aug=False))

    def visit_AugAssign(self, node):
        attr = self._self_attr(node.target)
        if attr is not None:
            self._access(attr, node.target, "rmw")
            rhs = self._self_reads_in(node.value) | {attr}
            self.method.assigns.append(SelfAssign(
                targets=(attr,), rhs_reads=frozenset(rhs),
                lineno=node.lineno, col_offset=node.col_offset,
                lock=self._held(), aug=True))
        else:
            self.visit(node.target)
        self.visit(node.value)

    def visit_Delete(self, node):
        for target in node.targets:
            attr = self._self_attr(target)
            if attr is not None:
                self._access(attr, target, "write")
            else:
                self.visit(target)

    def visit_Attribute(self, node):
        attr = self._self_attr(node)
        if attr is not None:
            if isinstance(node.ctx, (ast.Store, ast.Del)):
                self._access(attr, node, "write")
            else:
                self._access(attr, node, "read")
            return
        self.generic(node)

    def visit_Call(self, node):
        func = node.func
        name = None
        if isinstance(func, ast.Attribute):
            name = func.attr
            attr = self._self_attr(func)
            if attr is not None:
                # self.method(...) -- record for the exemption call
                # graph; the attribute itself is not state traffic.
                self.method.self_calls.add(attr)
            else:
                self.visit(func.value)
        elif isinstance(func, ast.Name):
            name = func.id
        else:
            self.visit(func)
        if name is not None and self.locks:
            self.method.locked_calls.append(LockedCall(
                name=name, lineno=node.lineno,
                col_offset=node.col_offset, lock=self._held()))
        for arg in node.args:
            self.visit(arg)
        for keyword in node.keywords:
            self.visit(keyword.value)

    def visit_If(self, node):
        attr = self._lazy_test_attr(node.test)
        if attr is not None and self._body_assigns(node.body, attr):
            self.method.lazy_inits.append(LazyInit(
                attr=attr, lineno=node.lineno,
                col_offset=node.col_offset, lock=self._held()))
        self.generic(node)

    def _lazy_test_attr(self, test):
        """attr for ``self.X is None`` / ``not self.X`` tests."""
        if (isinstance(test, ast.Compare) and len(test.ops) == 1
                and isinstance(test.ops[0], ast.Is)
                and isinstance(test.comparators[0], ast.Constant)
                and test.comparators[0].value is None):
            return self._self_attr(test.left)
        if (isinstance(test, ast.UnaryOp)
                and isinstance(test.op, ast.Not)):
            return self._self_attr(test.operand)
        if isinstance(test, ast.BoolOp) and isinstance(test.op, ast.And):
            for value in test.values:
                attr = self._lazy_test_attr(value)
                if attr is not None:
                    return attr
        return None

    def _body_assigns(self, body, attr):
        for statement in body:
            for sub in ast.walk(statement):
                if (isinstance(sub, ast.Attribute)
                        and isinstance(sub.ctx, ast.Store)
                        and self._self_attr(sub) == attr):
                    return True
        return False


def _method_nodes(class_node):
    for statement in class_node.body:
        if isinstance(statement, (ast.FunctionDef,
                                  ast.AsyncFunctionDef)):
            yield statement


def _self_param(fn_node):
    """Receiver name, or None for static/class methods."""
    for decorator in fn_node.decorator_list:
        if (isinstance(decorator, ast.Name)
                and decorator.id in ("staticmethod", "classmethod")):
            return None
    positional = fn_node.args.posonlyargs + fn_node.args.args
    return positional[0].arg if positional else None


def _extract_class(class_node):
    info = ClassInfo(name=class_node.name, lineno=class_node.lineno,
                     col_offset=class_node.col_offset,
                     node=class_node)

    # Pass 1: the lock inventory -- factory assignments anywhere in
    # the class body (``self._lock = threading.RLock()``).
    for fn_node in _method_nodes(class_node):
        self_name = _self_param(fn_node)
        if self_name is None:
            continue
        for node in ast.walk(fn_node):
            if not isinstance(node, ast.Assign):
                continue
            if not _lock_factory_call(node.value):
                continue
            for target in node.targets:
                if (isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == self_name):
                    info.lock_attrs.setdefault(target.attr,
                                               node.lineno)

    # Pass 2: per-method effects under the with-lock stack.
    for fn_node in _method_nodes(class_node):
        self_name = _self_param(fn_node)
        method = MethodInfo(name=fn_node.name, lineno=fn_node.lineno,
                            node=fn_node, self_name=self_name)
        info.methods.setdefault(fn_node.name, method)
        if self_name is None:
            continue
        visitor = _MethodVisitor(method, info.lock_attrs)
        visitor.walk(fn_node.body)
        # with-only locks (``with self._lock:`` but no factory
        # assignment in this class): injected or inherited locks
        # still count as the class holding a lock.
        for lock in method.locks_used:
            if lock not in info.lock_attrs:
                info.with_only_locks.add(lock)

    return info


def extract_classes(module):
    """Every class in the module as a :class:`ClassInfo` (cached)."""
    cached = getattr(module, "_concurrency_classes", None)
    if cached is not None:
        return cached
    classes = [_extract_class(node)
               for node in ast.walk(module.tree)
               if isinstance(node, ast.ClassDef)]
    module._concurrency_classes = classes
    return classes


def _all_locks(cls):
    return set(cls.lock_attrs) | cls.with_only_locks


# ---------------------------------------------------------------------------
# RC03x -- concurrency rules (class scope)
# ---------------------------------------------------------------------------


@register_rule(
    "RC030", name="unlocked-shared-write", severity=ERROR,
    scope="class",
    summary="attribute written both under a lock and outside it")
def check_unlocked_shared_write(cls, module):
    locks = _all_locks(cls)
    if not locks:
        return
    guarded = {}
    for method in cls.methods.values():
        for access in method.accesses:
            if (access.lock is not None
                    and access.kind in ("write", "rmw")):
                guarded.setdefault(access.attr,
                                   (method.name, access.lineno))
    if not guarded:
        return
    exempt = cls.exempt_methods()
    for name, method in sorted(cls.methods.items()):
        if name in exempt:
            continue
        for access in method.accesses:
            if (access.kind == "write" and access.lock is None
                    and access.attr in guarded
                    and access.attr not in locks):
                where = guarded[access.attr]
                yield module.finding(
                    "RC030", access,
                    f"{cls.name}.{access.attr} is written under "
                    f"self.{_lock_of(cls, access.attr)} (e.g. "
                    f"{where[0]}:{where[1]}) but {name}() writes it "
                    "with no lock held; every write to a guarded "
                    "attribute must hold the same lock",
                    stage=cls.name)


def _lock_of(cls, attr):
    """Best-effort name of the lock guarding ``attr`` (for messages)."""
    for method in cls.methods.values():
        for access in method.accesses:
            if (access.attr == attr and access.lock is not None
                    and access.kind in ("write", "rmw")):
                return access.lock
    locks = sorted(_all_locks(cls))
    return locks[0] if locks else "<lock>"


@register_rule(
    "RC031", name="unguarded-read-modify-write", severity=ERROR,
    scope="class",
    summary="read-modify-write of lock-guarded attributes outside "
            "the lock")
def check_unguarded_rmw(cls, module):
    if not _all_locks(cls):
        return
    guarded = cls.guarded_attrs()
    if not guarded:
        return
    exempt = cls.exempt_methods()
    for name, method in sorted(cls.methods.items()):
        if name in exempt:
            continue
        for assign in method.assigns:
            if assign.lock is not None:
                continue
            written = set(assign.targets) & guarded
            read = assign.rhs_reads & guarded
            if not written or not read:
                continue
            pair = sorted(written | read)
            yield module.finding(
                "RC031", assign,
                f"{cls.name}.{name}() updates {pair} outside "
                f"self.{_lock_of(cls, pair[0])}: the read and the "
                "write are not atomic, so a concurrent update in "
                "between is lost (the _publish_cache_metrics bug "
                "shape) -- move the read-modify-write under the lock",
                stage=cls.name)


@register_rule(
    "RC032", name="expensive-call-under-lock", severity=WARNING,
    scope="class",
    summary="known-expensive call (graph search, W1/DTW kernel, "
            "sleep, I/O) while holding a lock")
def check_expensive_call_under_lock(cls, module):
    exempt = cls.exempt_methods()
    for name, method in sorted(cls.methods.items()):
        if name in exempt:
            continue
        for call in method.locked_calls:
            if call.name not in EXPENSIVE_CALLS:
                continue
            yield module.finding(
                "RC032", call,
                f"{cls.name}.{name}() calls {call.name}() while "
                f"holding self.{call.lock}: every other thread "
                "blocks on the lock for the whole computation -- "
                "probe under the lock, compute outside it, install "
                "under the lock (the matcher-LRU idiom)",
                stage=cls.name)


@register_rule(
    "RC033", name="unguarded-lazy-init", severity=WARNING,
    scope="class",
    summary="lazy initialization of a shared attribute without the "
            "double-checked-locking idiom")
def check_unguarded_lazy_init(cls, module):
    locks = _all_locks(cls)
    if not locks:
        return
    exempt = cls.exempt_methods()
    for name, method in sorted(cls.methods.items()):
        if name in exempt:
            continue
        for lazy in method.lazy_inits:
            if lazy.lock is not None or lazy.attr in locks:
                continue
            yield module.finding(
                "RC033", lazy,
                f"{cls.name}.{name}() lazily initializes "
                f"self.{lazy.attr} with no lock held: two first "
                "callers race the build and later readers may see a "
                "half-installed value -- use the repo idiom (fast "
                "unguarded read of an atomically installed object, "
                "then re-check and build under the lock; see "
                "docs/STATIC_ANALYSIS.md)",
                stage=cls.name)


def _getstate_keeps_lock(method, lock_attr):
    """Whether ``__getstate__`` fails to drop ``lock_attr``.

    Returns True only when the method provably copies ``__dict__``
    (or ``vars(self)``) and never ``pop``s / ``del``s the lock key;
    selective literal-dict states that simply omit the lock are clean.
    """
    node = method.node
    copies_dict = False
    for sub in ast.walk(node):
        # An explicit drop always wins, whatever built the state --
        # including ``state = super().__getstate__()`` then ``pop``.
        if (isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Attribute)
                and sub.func.attr == "pop" and sub.args
                and isinstance(sub.args[0], ast.Constant)
                and sub.args[0].value == lock_attr):
            return False
        if isinstance(sub, ast.Delete):
            for target in sub.targets:
                if (isinstance(target, ast.Subscript)
                        and isinstance(target.slice, ast.Constant)
                        and target.slice.value == lock_attr):
                    return False
        if isinstance(sub, ast.Attribute) and sub.attr == "__dict__":
            copies_dict = True
        elif (isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Name)
                and sub.func.id == "vars"):
            copies_dict = True
    if copies_dict:
        return True  # wholesale __dict__ copy with no drop observed
    # Literal / selective state: flag only an explicit inclusion of
    # the lock key.
    return any(isinstance(sub, ast.Constant) and sub.value == lock_attr
               for sub in ast.walk(node))


@register_rule(
    "RC034", name="lock-in-pickled-state", severity=WARNING,
    scope="class",
    summary="lock-bearing class whose pickled state keeps the lock "
            "(or that defines no __getstate__ at all)")
def check_lock_in_pickled_state(cls, module):
    if not cls.lock_attrs:
        return  # with-only locks may be owned (and dropped) elsewhere
    getstate = cls.methods.get("__getstate__")
    if getstate is None:
        attr, lineno = min(cls.lock_attrs.items(),
                           key=lambda item: item[1])
        anchor = _Anchor(lineno)
        yield module.finding(
            "RC034", anchor,
            f"{cls.name} owns self.{attr} but defines no "
            "__getstate__: instances cannot be pickled, which "
            "breaks ProcessExecutor shipping and makes cache "
            "fingerprints depend on warm private state -- drop the "
            "lock (and any warm caches) in __getstate__ and rebuild "
            "them in __setstate__, or mark a deliberately "
            "process-local class with `# noqa: RC034 -- <why>`",
            stage=cls.name)
        return
    for attr, lineno in sorted(cls.lock_attrs.items()):
        if _getstate_keeps_lock(getstate, attr):
            yield module.finding(
                "RC034", _Anchor(getstate.lineno),
                f"{cls.name}.__getstate__ copies __dict__ but never "
                f"drops self.{attr}: the lock rides into the pickle "
                "and ProcessExecutor shipping fails at serialization "
                f"time -- state.pop({attr!r}, None) and rebuild the "
                "lock in __setstate__",
                stage=cls.name)


class _Anchor:
    """Minimal lineno/col carrier for ModuleInfo.finding."""

    __slots__ = ("lineno", "col_offset")

    def __init__(self, lineno, col=0):
        self.lineno = lineno
        self.col_offset = col
