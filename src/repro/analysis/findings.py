"""Findings and the pluggable rule registry of the contract linter.

A :class:`Finding` is one diagnostic: a stable rule code (``RC001``,
``RC002``, ...), a severity, a ``file:line:col`` anchor and a
human-readable message.  Findings are plain data so the CLI can render
them as text or JSON without re-deriving anything.

Rules are registered declaratively with :func:`register_rule`, which
makes the rule set *pluggable*: repo-local conventions (see the
``RC02x`` block in :mod:`repro.analysis.rules`) live in the same
registry as the core contract checks, and a project can register its
own rules before calling the analyzer::

    from repro.analysis import register_rule, Finding

    @register_rule("RC900", name="no-print", severity="warning",
                   scope="module", summary="ban print() in pipelines")
    def check_no_print(module):
        for node in ast.walk(module.tree):
            ...
            yield module.finding("RC900", node, "print() call")

Scopes
------
``module``
    The check receives the whole :class:`~repro.analysis.extract.ModuleInfo`
    once per file (repo-local lint rules live here).
``stage``
    The check receives one extracted stage declaration plus its
    pipeline and module (contract-conformance rules).
``pipeline``
    The check receives one extracted pipeline (dataflow-over-DAG
    hazard rules).
``class``
    The check receives one extracted class (lock inventory + method
    access map, see :mod:`repro.analysis.concurrency`) plus the
    module -- the concurrency rules RC030-RC034 live here.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "ERROR",
    "Finding",
    "Rule",
    "WARNING",
    "all_rules",
    "get_rule",
    "register_rule",
]

ERROR = "error"
WARNING = "warning"
_SEVERITIES = (ERROR, WARNING)
_SCOPES = ("module", "stage", "pipeline", "class")


@dataclass(frozen=True, order=True)
class Finding:
    """One diagnostic emitted by the analyzer."""

    path: str
    line: int
    col: int
    code: str
    severity: str
    message: str
    stage: str | None = field(default=None, compare=False)

    @property
    def is_error(self):
        return self.severity == ERROR

    def render(self):
        """The canonical one-line text form."""
        return (f"{self.path}:{self.line}:{self.col}: "
                f"{self.code} [{self.severity}] {self.message}")

    def to_dict(self):
        """JSON-ready representation."""
        record = {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "severity": self.severity,
            "message": self.message,
        }
        if self.stage is not None:
            record["stage"] = self.stage
        return record


@dataclass(frozen=True)
class Rule:
    """Registry entry describing one rule code."""

    code: str
    name: str
    severity: str
    scope: str
    summary: str


_REGISTRY: dict[str, tuple[Rule, object]] = {}


def register_rule(code, *, name, severity, scope, summary):
    """Register a check function under a stable rule code.

    The decorated callable receives scope-dependent arguments (see the
    module docstring) and yields :class:`Finding` objects.  Returns
    the callable unchanged so rules remain plain functions.
    """
    if severity not in _SEVERITIES:
        raise ValueError(f"severity must be one of {_SEVERITIES}")
    if scope not in _SCOPES:
        raise ValueError(f"scope must be one of {_SCOPES}")
    if code in _REGISTRY:
        raise ValueError(f"duplicate rule code {code!r}")

    def decorator(check):
        _REGISTRY[code] = (Rule(code, name, severity, scope, summary),
                           check)
        return check

    return decorator


def all_rules():
    """Every registered rule, sorted by code."""
    return [rule for rule, _ in
            (entry for _, entry in sorted(_REGISTRY.items()))]


def get_rule(code):
    """The :class:`Rule` registered under ``code`` (KeyError if none)."""
    return _REGISTRY[code][0]


def registry_items():
    """``(rule, check)`` pairs sorted by code (internal)."""
    return [entry for _, entry in sorted(_REGISTRY.items())]
