"""The built-in rule set of the contract linter.

Three families, all in the same pluggable registry
(:mod:`repro.analysis.findings`):

* ``RC00x`` — stage-level contract conformance: what a stage function
  *does* to its view argument vs. what its ``reads``/``writes``
  declaration *says* (the static twin of the runtime
  :class:`~repro.core.stage.ContractViolation`);
* ``RC01x`` — pipeline-level dataflow hazards over the resolved DAG:
  races the runtime checker structurally cannot see until they fire;
* ``RC02x`` — repo-local conventions (portability and hot-path
  discipline).

Every check only reports what the AST can prove; escapes of the view
or dynamic keys suppress the heuristic rules (dead declarations) but
never the certain ones.
"""

from __future__ import annotations

import ast

from ..core.dag import resolve_dependencies
from .extract import ANY, UNKNOWN
from .findings import ERROR, Finding, WARNING, get_rule, register_rule

__all__ = ["finding_at"]


def finding_at(module, code, line, message, *, stage=None, col=1):
    """A Finding at an explicit source position."""
    rule = get_rule(code)
    return Finding(path=module.path, line=line, col=col, code=code,
                   severity=rule.severity, message=message, stage=stage)


def _stage_anchor(stage):
    return {"line": stage.lineno, "col": stage.col + 1}


# ---------------------------------------------------------------------------
# RC00x -- stage contract conformance
# ---------------------------------------------------------------------------

@register_rule(
    "RC000", name="syntax-error", severity=ERROR, scope="module",
    summary="file could not be parsed")
def check_syntax(module):
    """Emitted directly by the analyzer when parsing fails."""
    return ()


@register_rule(
    "RC001", name="undeclared-read", severity=ERROR, scope="stage",
    summary="stage function reads a state key its contract does not "
            "declare")
def check_undeclared_read(stage, pipeline, module):
    if stage.reads in (ANY, UNKNOWN):
        return
    allowed = set(stage.reads)
    if isinstance(stage.writes, frozenset):
        allowed |= stage.writes
    elif stage.writes is UNKNOWN:
        return  # cannot tell what the write side additionally allows
    for fx in stage.effect_sets():
        for key, line in sorted(fx.reads.items()):
            if key not in allowed:
                yield finding_at(
                    module, "RC001", line,
                    f"stage {stage.name!r} ({fx.name}) reads "
                    f"undeclared key {key!r} (declared reads: "
                    f"{sorted(stage.reads)})",
                    stage=stage.name)


@register_rule(
    "RC002", name="undeclared-write", severity=ERROR, scope="stage",
    summary="stage function writes or deletes a state key its "
            "contract does not declare")
def check_undeclared_write(stage, pipeline, module):
    if stage.writes in (ANY, UNKNOWN):
        return
    for fx in stage.effect_sets():
        written = dict(sorted(fx.writes.items()))
        for key, line in sorted(fx.deletes.items()):
            written.setdefault(key, line)
        for key, line in written.items():
            if key not in stage.writes:
                verb = ("deletes" if key in fx.deletes
                        and key not in fx.writes else "writes")
                yield finding_at(
                    module, "RC002", line,
                    f"stage {stage.name!r} ({fx.name}) {verb} "
                    f"undeclared key {key!r} (declared writes: "
                    f"{sorted(stage.writes)})",
                    stage=stage.name)


@register_rule(
    "RC003", name="dead-declaration", severity=WARNING, scope="stage",
    summary="declared contract key the stage function never touches")
def check_dead_declaration(stage, pipeline, module):
    if not stage.declared:
        return
    effect_sets = stage.effect_sets()
    if not effect_sets:
        return
    if any(fx.opaque or fx.dynamic for fx in effect_sets):
        return  # the function sees more than the AST can prove
    used = set()
    possibly_written = set()
    for fx in effect_sets:
        used |= fx.touched() | fx.maybe_mutated
        possibly_written |= (set(fx.writes) | set(fx.deletes)
                             | set(fx.mutations) | fx.maybe_mutated)
    anchor = _stage_anchor(stage)
    for key in sorted(stage.reads - used):
        yield finding_at(
            module, "RC003", anchor["line"], col=anchor["col"],
            message=f"stage {stage.name!r} declares read {key!r} but "
                    "never uses it (stale contract narrows "
                    "scheduling for nothing)",
            stage=stage.name)
    for key in sorted(stage.writes - possibly_written):
        if key in used:
            yield finding_at(
                module, "RC003", anchor["line"], col=anchor["col"],
                message=f"stage {stage.name!r} declares write {key!r} "
                        "but only reads it; declare it in reads "
                        "instead",
                stage=stage.name)
        else:
            yield finding_at(
                module, "RC003", anchor["line"], col=anchor["col"],
                message=f"stage {stage.name!r} declares write {key!r} "
                        "but never writes it (downstream stages wait "
                        "on a key that never arrives)",
                stage=stage.name)


@register_rule(
    "RC004", name="mutated-read-only", severity=ERROR, scope="stage",
    summary="in-place mutation of a value the contract only declares "
            "as read")
def check_mutated_read_only(stage, pipeline, module):
    if stage.writes in (ANY, UNKNOWN):
        return
    for fx in stage.effect_sets():
        for key, (line, what) in sorted(fx.mutations.items()):
            if key in stage.writes:
                continue
            if (isinstance(stage.reads, frozenset)
                    and key not in stage.reads):
                continue  # the read itself is already RC001
            yield finding_at(
                module, "RC004", line,
                f"stage {stage.name!r} ({fx.name}) mutates read-only "
                f"key {key!r} in place ({what}); the transaction "
                "layer cannot roll this back -- declare the key in "
                "writes or run with copy_on_read=True",
                stage=stage.name)


@register_rule(
    "RC012", name="unreachable-fallback", severity=ERROR,
    scope="stage",
    summary="fallback that can never run (or a fallback policy "
            "without one)")
def check_unreachable_fallback(stage, pipeline, module):
    anchor = _stage_anchor(stage)
    if stage.fallback_given and stage.on_error != "fallback":
        yield finding_at(
            module, "RC012", anchor["line"], col=anchor["col"],
            message=f"stage {stage.name!r} passes fallback= but "
                    f"on_error={stage.on_error!r}; the fallback is "
                    "unreachable (Stage() raises at construction)",
            stage=stage.name)
    elif stage.on_error == "fallback" and not stage.fallback_given:
        yield finding_at(
            module, "RC012", anchor["line"], col=anchor["col"],
            message=f"stage {stage.name!r} sets on_error='fallback' "
                    "without a fallback callable (Stage() raises at "
                    "construction)",
            stage=stage.name)


# ---------------------------------------------------------------------------
# RC01x -- pipeline dataflow hazards
# ---------------------------------------------------------------------------

class _ContractShim:
    """Duck-typed stand-in so core dependency resolution applies."""

    __slots__ = ("reads", "writes")

    def __init__(self, stage):
        self.reads = (stage.reads if isinstance(stage.reads, frozenset)
                      else ANY)
        self.writes = (stage.writes
                       if isinstance(stage.writes, frozenset) else ANY)


def _ancestor_closure(deps):
    ancestors = [set() for _ in deps]
    for j, dep_set in enumerate(deps):
        for i in dep_set:
            ancestors[j].add(i)
            ancestors[j] |= ancestors[i]
    return ancestors


def _effective_writes(stage):
    keys = (set(stage.writes)
            if isinstance(stage.writes, frozenset) else set())
    for fx in stage.effect_sets():
        keys |= set(fx.writes) | set(fx.deletes) | set(fx.mutations)
    return keys


@register_rule(
    "RC010", name="concurrent-write-write", severity=ERROR,
    scope="pipeline",
    summary="two stages the DAG schedules concurrently both write "
            "the same key")
def check_concurrent_write_write(pipeline, module):
    stages = pipeline.stages
    if len(stages) < 2:
        return
    deps = resolve_dependencies([_ContractShim(s) for s in stages])
    ancestors = _ancestor_closure(deps)
    effective = [_effective_writes(s) for s in stages]
    for j, later in enumerate(stages):
        for i in range(j):
            if i in ancestors[j]:
                continue  # ordered by contracts: no race
            shared = effective[i] & effective[j]
            if not shared:
                continue
            earlier = stages[i]
            yield finding_at(
                module, "RC010", later.lineno, col=later.col + 1,
                message=f"stages {earlier.name!r} and {later.name!r} "
                        "have independent contracts (the DAG may run "
                        "them concurrently) but both write "
                        f"{sorted(shared)}; declare the writes so "
                        "the resolver can order them",
                stage=later.name)


@register_rule(
    "RC011", name="orphan-read", severity=WARNING, scope="pipeline",
    summary="declared read no upstream stage writes and the initial "
            "state does not provide")
def check_orphan_read(pipeline, module):
    if pipeline.initial_keys is None:
        return  # initial state not statically known
    provided = set(pipeline.initial_keys)
    provider_wildcard = False
    stages = pipeline.stages
    for index, stage in enumerate(stages):
        if isinstance(stage.reads, frozenset) and not provider_wildcard:
            own = (stage.writes
                   if isinstance(stage.writes, frozenset)
                   else frozenset())
            for key in sorted(stage.reads):
                if key in provided or key in own:
                    continue
                later = [s.name for s in stages[index + 1:]
                         if isinstance(s.writes, frozenset)
                         and key in s.writes]
                hint = (f"; only later stage(s) {later} write it, "
                        "so this reads nothing" if later
                        else "; no stage writes it")
                yield finding_at(
                    module, "RC011", stage.lineno, col=stage.col + 1,
                    message=f"stage {stage.name!r} reads {key!r} "
                            "which no upstream stage writes and the "
                            f"initial state does not provide{hint}",
                    stage=stage.name)
        if isinstance(stage.writes, frozenset):
            provided |= stage.writes
        else:
            provider_wildcard = True


@register_rule(
    "RC013", name="wildcard-stage", severity=WARNING,
    scope="pipeline",
    summary="undeclared (ANY) contract silently serializes the DAG")
def check_wildcard_stage(pipeline, module):
    stages = pipeline.stages
    if len(stages) < 2 or not any(s.declared for s in stages):
        return  # a fully legacy pipeline is sequential on purpose
    for stage in stages:
        sides = [side for side, keys
                 in (("reads", stage.reads), ("writes", stage.writes))
                 if keys is ANY]
        if sides:
            yield finding_at(
                module, "RC013", stage.lineno, col=stage.col + 1,
                message=f"stage {stage.name!r} declares no "
                        f"{'/'.join(sides)} contract: the ANY "
                        "wildcard conflicts with every other stage "
                        "and serializes the whole DAG",
                stage=stage.name)


# ---------------------------------------------------------------------------
# RC02x -- repo-local conventions
# ---------------------------------------------------------------------------

_TRAPEZOID_NAMES = ("trapz", "trapezoid")


@register_rule(
    "RC020", name="direct-np-trapezoid", severity=ERROR,
    scope="module",
    summary="direct numpy trapezoid integration instead of the "
            "version-portable repro._validation.trapezoid shim")
def check_np_trapezoid(module):
    for node in ast.walk(module.tree):
        if (isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id in module.numpy_aliases
                and node.attr in _TRAPEZOID_NAMES):
            yield module.finding(
                "RC020", node,
                f"direct {node.value.id}.{node.attr} reference; use "
                "repro._validation.trapezoid (np.trapezoid only "
                "exists on numpy >= 2.0)")
        elif (isinstance(node, ast.ImportFrom)
                and node.module == "numpy" and node.level == 0):
            for alias in node.names:
                if alias.name in _TRAPEZOID_NAMES:
                    yield module.finding(
                        "RC020", node,
                        f"import of numpy.{alias.name}; use "
                        "repro._validation.trapezoid (np.trapezoid "
                        "only exists on numpy >= 2.0)")


def _local_def_names(module):
    """Function names defined *only* inside another function's body.

    A reference to such a name from an ``add_*`` call is a closure:
    it cannot be pickled (pickle serializes functions by qualified
    module path), so it cannot cross the process boundary.  A name
    that is also defined at module level is skipped — the analyzer
    cannot tell which binding the call site sees, and RC022 only
    reports what it can prove.
    """
    cached = getattr(module, "_rc022_local_defs", None)
    if cached is not None:
        return cached
    nested, toplevel = set(), set()

    class _Scan(ast.NodeVisitor):
        depth = 0

        def _function(self, node, name):
            (nested if self.depth else toplevel).add(name)
            self.depth += 1
            self.generic_visit(node)
            self.depth -= 1

        def visit_FunctionDef(self, node):
            self._function(node, node.name)

        def visit_AsyncFunctionDef(self, node):
            self._function(node, node.name)

        def visit_Lambda(self, node):
            self.depth += 1
            self.generic_visit(node)
            self.depth -= 1

    _Scan().visit(module.tree)
    local = nested - toplevel
    module._rc022_local_defs = local
    return local


@register_rule(
    "RC022", name="unpicklable-stage-function", severity=WARNING,
    scope="stage",
    summary="stage function is a lambda or locally defined closure, "
            "which cannot be pickled and so cannot run under "
            "ProcessExecutor")
def check_unpicklable_stage_function(stage, pipeline, module):
    for role, fx in (("function", stage.effects),
                     ("fallback", stage.fallback_effects)):
        if fx is None:
            continue
        if fx.name == "<lambda>":
            yield finding_at(
                module, "RC022", fx.lineno,
                f"stage {stage.name!r} {role} is a lambda, which "
                "cannot be pickled; under ProcessExecutor the stage "
                "falls back to in-parent execution (or fails with "
                "on_unpicklable='error') -- define it as a "
                "module-level function",
                stage=stage.name)
        elif fx.name in _local_def_names(module):
            yield finding_at(
                module, "RC022", fx.lineno,
                f"stage {stage.name!r} {role} {fx.name!r} is defined "
                "inside another function, so it -- and anything it "
                "closes over: locks, open files, enclosing-scope "
                "state -- cannot be pickled to a ProcessExecutor "
                "worker; move it to module level",
                stage=stage.name)


_DOMINANCE_NAMES = ("dominance_prune", "select_best")
_REDUCTION_KEYWORDS = ("reduce_to", "reduction")


@register_rule(
    "RC023", name="unreduced-dominance-call", severity=WARNING,
    scope="stage",
    summary="dominance_prune/select_best inside a pipeline stage "
            "without reduce_to=/reduction= runs O(N²) over the full "
            "ensemble on every stage execution")
def check_unreduced_dominance(stage, pipeline, module):
    """Pipeline stages re-execute per run over production-sized
    ensembles, so an unreduced dominance call there is the exact
    O(N²·|grid|) hot path scenario reduction exists to avoid.
    Interactive / notebook calls are out of scope — only functions
    wired into a pipeline stage are checked.  Suppress deliberate
    full-ensemble passes with ``# noqa: RC023``.
    """
    for fx in stage.effect_sets():
        node = module.functions.get(fx.name)
        if node is None:
            continue
        for call in ast.walk(node):
            if not isinstance(call, ast.Call):
                continue
            func = call.func
            name = (func.id if isinstance(func, ast.Name)
                    else func.attr if isinstance(func, ast.Attribute)
                    else None)
            if name not in _DOMINANCE_NAMES:
                continue
            if any(kw.arg in _REDUCTION_KEYWORDS
                   for kw in call.keywords):
                continue
            yield finding_at(
                module, "RC023", call.lineno,
                f"stage {stage.name!r} calls {name}() without "
                "reduce_to=/reduction=: every stage execution pays "
                "O(N²) dominance over the full scenario ensemble; "
                "reduce to k representatives (or mark a deliberate "
                "full pass with `# noqa: RC023`)",
                stage=stage.name)


@register_rule(
    "RC021", name="unbounded-dijkstra-all", severity=WARNING,
    scope="module",
    summary="dijkstra_all() without cutoff= explores the whole "
            "graph on a hot path")
def check_unbounded_dijkstra(module):
    for node in ast.walk(module.tree):
        if (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "dijkstra_all"
                and not any(kw.arg == "cutoff"
                            for kw in node.keywords)):
            yield module.finding(
                "RC021", node,
                "dijkstra_all() without cutoff= explores the whole "
                "graph; pass a finite cutoff on hot paths (or "
                "cutoff=None explicitly to document the intent)")
