"""AST extraction: pipelines, stage contracts, state-access effects.

This module turns one Python source file into a :class:`ModuleInfo`
describing, *without executing anything*:

* every :class:`~repro.core.pipeline.DecisionPipeline` the module
  constructs, with the declared ``reads``/``writes`` contract, failure
  policy and (where resolvable) the stage / fallback functions of each
  ``add_*`` call — including chained construction and the
  ``build_pipeline()`` factory idiom;
* for every resolved stage function, its *effects* on the state view
  argument: which keys it certainly reads, writes and deletes, which
  read values it mutates in place (attribute / subscript / augmented
  assignment through an alias, or known mutating methods such as
  ``np.ndarray.sort`` and ``list.append``), and whether the view
  *escapes* the function's static horizon (passed whole to a callee,
  iterated, ``**``-unpacked ...).

The extraction is deliberately conservative, mirroring the runtime
semantics of :class:`repro.core.stage._ContractView`:

* only accesses the AST can *prove* are recorded as certain — an
  escape or a dynamic (non-literal) key never invents a finding, it
  only suppresses the "dead declaration" heuristics;
* ``key in view`` is recorded as a *probe*, not a read, because the
  runtime ``__contains__`` never raises :class:`ContractViolation`;
* ``view.pop(key)`` counts as read + delete (the runtime routes it
  through ``__getitem__`` and ``__delitem__``, so deletion requires a
  *write* declaration).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from ..core.stage import ANY

__all__ = [
    "ANY",
    "UNKNOWN",
    "FunctionEffects",
    "ModuleInfo",
    "PipelineDecl",
    "StageDecl",
    "extract_module",
]


class _Unknown:
    """Sentinel: a contract expression the AST cannot evaluate."""

    _instance = None

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self):
        return "UNKNOWN"


UNKNOWN = _Unknown()

#: add_* methods of DecisionPipeline and the layer they imply
#: (``None`` = layer is the first positional argument).
ADD_METHODS = {
    "add_stage": None,
    "add_data": "data",
    "add_governance": "governance",
    "add_analytics": "analytics",
    "add_decision": "decision",
}

#: Method names that mutate their receiver in place for the builtin
#: containers and numpy arrays stage state typically holds.
MUTATING_METHODS = frozenset({
    # list
    "append", "extend", "insert", "remove", "reverse", "sort",
    # list/dict/set share pop/clear/update
    "pop", "clear", "update", "popitem", "setdefault",
    # set
    "add", "discard", "difference_update", "intersection_update",
    "symmetric_difference_update",
    # numpy.ndarray
    "fill", "put", "resize", "partition", "byteswap", "setflags",
    "itemset", "setfield",
})

#: _ContractView methods with key-specific semantics.
_VIEW_READ_METHODS = ("get",)


@dataclass
class FunctionEffects:
    """What one stage function does to its state-view argument."""

    name: str
    lineno: int
    param: str | None
    #: key -> line of first certain access of each kind
    reads: dict = field(default_factory=dict)
    writes: dict = field(default_factory=dict)
    deletes: dict = field(default_factory=dict)
    #: key -> (line, what) for certain in-place mutations
    mutations: dict = field(default_factory=dict)
    #: ``key in view`` membership probes (usage, never a violation)
    probes: dict = field(default_factory=dict)
    #: keys whose alias meets an unknown method/callee (may mutate)
    maybe_mutated: set = field(default_factory=set)
    #: the view escapes (passed / iterated / unpacked): deadness and
    #: completeness heuristics must stand down
    opaque: bool = False
    #: a subscript used a non-literal key
    dynamic: bool = False

    def touched(self):
        """Keys with any certain or probed usage."""
        return (set(self.reads) | set(self.writes) | set(self.deletes)
                | set(self.mutations) | set(self.probes))


@dataclass
class StageDecl:
    """One ``add_*`` call: declared contract + resolved effects."""

    layer: str
    name: str
    lineno: int
    col: int
    reads: object  # frozenset | ANY | UNKNOWN
    writes: object
    on_error: str
    fallback_given: bool
    effects: FunctionEffects | None
    fallback_effects: FunctionEffects | None

    @property
    def declared(self):
        return (isinstance(self.reads, frozenset)
                and isinstance(self.writes, frozenset))

    def effect_sets(self):
        """Main + fallback effects that could run under this contract."""
        return [fx for fx in (self.effects, self.fallback_effects)
                if fx is not None]


@dataclass
class PipelineDecl:
    """One pipeline construction site (grouped add_* calls)."""

    ident: str
    lineno: int
    stages: list
    #: frozenset of literal initial-state keys, or None when any
    #: observed ``run()`` call passes a non-literal initial state
    initial_keys: object = frozenset()


@dataclass
class ModuleInfo:
    """Everything the rules need to know about one source file."""

    path: str
    tree: ast.Module
    pipelines: list
    functions: dict
    numpy_aliases: set

    def finding(self, code, node, message, *, stage=None):
        """Build a Finding anchored at an AST node (late import to
        keep this module importable standalone)."""
        from .findings import Finding, get_rule
        rule = get_rule(code)
        return Finding(path=self.path, line=getattr(node, "lineno", 1),
                       col=getattr(node, "col_offset", 0) + 1,
                       code=code, severity=rule.severity,
                       message=message, stage=stage)


# ---------------------------------------------------------------------------
# Stage-function effect analysis
# ---------------------------------------------------------------------------

def _const_str(node):
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


class _EffectsVisitor(ast.NodeVisitor):
    """Single pass over a stage function's body collecting effects."""

    def __init__(self, effects, aliases):
        self.fx = effects
        self.param = effects.param
        self.aliases = aliases

    # -- helpers -------------------------------------------------------------

    def _view_key(self, node):
        """('key', k) for ``view["k"]``, ('dynamic', None) for a
        non-literal subscript of the view, None otherwise."""
        if (isinstance(node, ast.Subscript)
                and isinstance(node.value, ast.Name)
                and node.value.id == self.param):
            key = _const_str(node.slice)
            if key is None:
                return ("dynamic", None)
            return ("key", key)
        return None

    def _root_key(self, node):
        """State key behind an attribute/subscript chain or alias."""
        while isinstance(node, (ast.Attribute, ast.Subscript)):
            hit = self._view_key(node)
            if hit is not None:
                return hit[1]  # None for dynamic, which is fine
            node = node.value
        if isinstance(node, ast.Name):
            return self.aliases.get(node.id)
        return None

    def _read(self, key, node):
        self.fx.reads.setdefault(key, node.lineno)

    def _write(self, key, node):
        self.fx.writes.setdefault(key, node.lineno)

    def _delete(self, key, node):
        self.fx.deletes.setdefault(key, node.lineno)

    def _mutate(self, key, node, what):
        self.fx.mutations.setdefault(key, (node.lineno, what))

    # -- the view itself -----------------------------------------------------

    def visit_Name(self, node):
        if node.id == self.param:
            # The bare view reached an unrecognized position: it
            # escapes the static horizon (call argument, return,
            # iteration, dict(view), **view ...).
            self.fx.opaque = True
        elif (isinstance(node.ctx, ast.Load)
                and node.id in self.aliases):
            # An alias reached an unrecognized position; its target
            # may be mutated by whatever consumes it.
            self.fx.maybe_mutated.add(self.aliases[node.id])

    def visit_Subscript(self, node):
        hit = self._view_key(node)
        if hit is not None:
            kind, key = hit
            if kind == "dynamic":
                self.fx.dynamic = True
            elif isinstance(node.ctx, ast.Store):
                self._write(key, node)
            elif isinstance(node.ctx, ast.Del):
                self._delete(key, node)
            else:
                self._read(key, node)
            self.visit(node.slice)
            return
        if isinstance(node.ctx, (ast.Store, ast.Del)):
            key = self._root_key(node.value)
            if key is not None:
                self._mutate(key, node, "subscript assignment")
        self.generic_visit(node)

    def visit_Attribute(self, node):
        if (isinstance(node.value, ast.Name)
                and node.value.id == self.param):
            # A view method accessed without a recognized call form
            # (e.g. ``f = state.get``): treat as an escape.
            self.fx.opaque = True
            return
        if isinstance(node.ctx, (ast.Store, ast.Del)):
            key = self._root_key(node.value)
            if key is not None:
                self._mutate(key, node,
                             f"attribute .{node.attr} assignment")
        self.generic_visit(node)

    # -- statements with read+write / mutation semantics ---------------------

    def visit_AugAssign(self, node):
        target = node.target
        hit = self._view_key(target)
        if hit is not None:
            kind, key = hit
            if kind == "dynamic":
                self.fx.dynamic = True
            else:
                # ``view["k"] += ...`` goes through __getitem__ then
                # __setitem__: a read and a write -- and an in-place
                # op on a mutable value besides.
                self._read(key, target)
                self._write(key, target)
                self._mutate(key, target, "augmented assignment")
            self.visit(node.value)
            return
        if isinstance(target, ast.Name):
            key = self.aliases.get(target.id)
            if key is not None:
                self._mutate(key, target, "augmented assignment")
            self.visit(node.value)
            return
        key = self._root_key(
            target.value if isinstance(
                target, (ast.Attribute, ast.Subscript)) else target)
        if key is not None:
            self._mutate(key, target, "augmented assignment")
        self.generic_visit(node)

    def visit_Call(self, node):
        func = node.func
        if isinstance(func, ast.Attribute):
            base = func.value
            if (isinstance(base, ast.Name)
                    and base.id == self.param):
                self._view_method(node, func.attr)
                return
            hit = self._view_key(base)
            if hit is not None:
                kind, key = hit
                if kind == "key" and func.attr in MUTATING_METHODS:
                    self._mutate(key, node,
                                 f".{func.attr}() on read value")
                self.visit(base)
                self._visit_args(node)
                return
            if isinstance(base, ast.Name) and base.id in self.aliases:
                key = self.aliases[base.id]
                if func.attr in MUTATING_METHODS:
                    self._mutate(key, node,
                                 f".{func.attr}() on read value")
                else:
                    self.fx.maybe_mutated.add(key)
                self._visit_args(node)
                return
            key = self._root_key(base)
            if key is not None:
                if func.attr in MUTATING_METHODS:
                    self._mutate(key, node,
                                 f".{func.attr}() on read value")
                else:
                    self.fx.maybe_mutated.add(key)
                self.visit(base)
                self._visit_args(node)
                return
        self.generic_visit(node)

    def _visit_args(self, node):
        for arg in node.args:
            self.visit(arg)
        for kw in node.keywords:
            self.visit(kw.value)

    def _view_method(self, node, attr):
        """A method call directly on the view: model the mapping API."""
        if attr in _VIEW_READ_METHODS:
            key = _const_str(node.args[0]) if node.args else None
            if key is None:
                self.fx.dynamic = True
            else:
                self._read(key, node)
            for arg in node.args[1:]:
                self.visit(arg)
            self._visit_kwargs(node)
        elif attr == "setdefault":
            key = _const_str(node.args[0]) if node.args else None
            if key is None:
                self.fx.dynamic = True
            else:
                self._read(key, node)
                self._write(key, node)
            for arg in node.args[1:]:
                self.visit(arg)
        elif attr == "pop":
            key = _const_str(node.args[0]) if node.args else None
            if key is None:
                self.fx.dynamic = True
            else:
                self._read(key, node)
                self._delete(key, node)
            for arg in node.args[1:]:
                self.visit(arg)
        elif attr == "update":
            for arg in node.args:
                if isinstance(arg, ast.Dict) and all(
                        _const_str(k) is not None for k in arg.keys):
                    for k, v in zip(arg.keys, arg.values):
                        self._write(_const_str(k), k)
                        self.visit(v)
                else:
                    self.fx.opaque = True
                    self.visit(arg)
            for kw in node.keywords:
                if kw.arg is None:  # **mapping
                    self.fx.opaque = True
                else:
                    self._write(kw.arg, kw.value)
                self.visit(kw.value)
        else:
            # keys()/values()/items()/copy()/clear()/unknown: the
            # whole key space is involved.
            self.fx.opaque = True
            self._visit_args(node)

    def _visit_kwargs(self, node):
        for kw in node.keywords:
            self.visit(kw.value)

    # -- usages that are not contract traffic --------------------------------

    def visit_Compare(self, node):
        if (len(node.ops) == 1
                and isinstance(node.ops[0], (ast.In, ast.NotIn))
                and isinstance(node.comparators[0], ast.Name)
                and node.comparators[0].id == self.param):
            key = _const_str(node.left)
            if key is not None:
                self.fx.probes.setdefault(key, node.lineno)
            else:
                self.visit(node.left)
            return
        self.generic_visit(node)


def _state_key_of(node, param):
    """Key for ``view["k"]`` / ``view.get("k")`` value expressions."""
    if (isinstance(node, ast.Subscript)
            and isinstance(node.value, ast.Name)
            and node.value.id == param):
        return _const_str(node.slice)
    if (isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "get"
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id == param
            and node.args):
        return _const_str(node.args[0])
    return None


def _collect_aliases(fn_node, param):
    """Flow-insensitive alias map: local name -> state key.

    A name qualifies only when every binding observed in the function
    assigns it the same ``view["key"]`` (or ``view.get("key")``); any
    other binding poisons it.
    """
    bindings = {}

    def bind(name, key):
        bindings.setdefault(name, set()).add(key)

    def bind_target(target, value):
        if isinstance(target, ast.Name):
            bind(target.id, _state_key_of(value, param)
                 if value is not None else None)
        elif isinstance(target, (ast.Tuple, ast.List)):
            elts = target.elts
            values = (value.elts
                      if isinstance(value, (ast.Tuple, ast.List))
                      and len(value.elts) == len(elts)
                      else [None] * len(elts))
            for elt, sub in zip(elts, values):
                bind_target(elt, sub)

    for node in ast.walk(fn_node):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                bind_target(target, node.value)
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            bind_target(node.target, node.value)
        # (ast.AugAssign is deliberately absent: an in-place op does
        # not rebind, so the alias survives)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            bind_target(node.target, None)
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if item.optional_vars is not None:
                    bind_target(item.optional_vars, None)
        elif isinstance(node, ast.comprehension):
            bind_target(node.target, None)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                               ast.Lambda)) and node is not fn_node:
            for arg in _all_args(node.args):
                bind(arg, None)
    return {name: next(iter(keys))
            for name, keys in bindings.items()
            if len(keys) == 1 and next(iter(keys)) is not None}


def _all_args(arguments):
    names = [a.arg for a in arguments.posonlyargs + arguments.args
             + arguments.kwonlyargs]
    if arguments.vararg:
        names.append(arguments.vararg.arg)
    if arguments.kwarg:
        names.append(arguments.kwarg.arg)
    return names


def function_effects(fn_node):
    """Analyze one function / lambda's use of its first parameter."""
    if isinstance(fn_node, ast.Lambda):
        name = "<lambda>"
        body = [fn_node.body]
    else:
        name = fn_node.name
        body = fn_node.body
    args = fn_node.args
    positional = args.posonlyargs + args.args
    param = positional[0].arg if positional else None
    effects = FunctionEffects(name=name, lineno=fn_node.lineno,
                              param=param)
    if param is None:
        effects.opaque = True
        return effects
    aliases = _collect_aliases(fn_node, param)
    visitor = _EffectsVisitor(effects, aliases)
    for statement in body:
        visitor.visit(statement)
    return effects


# ---------------------------------------------------------------------------
# Pipeline / contract extraction
# ---------------------------------------------------------------------------

def _parse_contract(node):
    """Evaluate a reads=/writes= expression to a key set if literal."""
    if node is None:
        return ANY
    if isinstance(node, ast.Constant) and node.value is None:
        return ANY
    if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
        keys = [_const_str(elt) for elt in node.elts]
        if all(key is not None for key in keys):
            return frozenset(keys)
    return UNKNOWN


def _chain_root(call):
    """Resolve what object an ``add_*`` / ``run`` call acts on.

    Returns ``("var", name)``, ``("ctor", id(ctor_call))`` or None.
    """
    node = call.func.value
    while True:
        if isinstance(node, ast.Name):
            return ("var", node.id)
        if isinstance(node, ast.Call):
            func = node.func
            ctor = (func.id if isinstance(func, ast.Name)
                    else func.attr if isinstance(func, ast.Attribute)
                    else None)
            if ctor == "DecisionPipeline":
                return ("ctor", id(node))
            if (isinstance(func, ast.Attribute)
                    and func.attr in ADD_METHODS):
                node = func.value
                continue
            return None
        return None


def _resolve_function(node, functions):
    """Stage-function expression -> FunctionEffects, if resolvable."""
    if isinstance(node, ast.Name):
        target = functions.get(node.id)
        if target is not None:
            return function_effects(target)
        return None
    if isinstance(node, ast.Lambda):
        return function_effects(node)
    return None


def _parse_initial_state(call):
    """Literal initial-state keys of one ``run()`` call, or None."""
    node = None
    if call.args:
        node = call.args[0]
    for kw in call.keywords:
        if kw.arg == "initial_state":
            node = kw.value
    if node is None:
        return frozenset()
    if isinstance(node, ast.Dict):
        keys = [_const_str(k) for k in node.keys]
        if all(key is not None for key in keys):
            return frozenset(keys)
        return None
    if (isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "dict" and not node.args
            and all(kw.arg is not None for kw in node.keywords)):
        return frozenset(kw.arg for kw in node.keywords)
    return None


def _stage_from_call(call, attr, functions):
    """Parse one ``add_*`` call into a StageDecl (None if opaque)."""
    layer = ADD_METHODS[attr]
    args = list(call.args)
    if layer is None:  # add_stage(layer, name, function)
        layer = _const_str(args[0]) if args else None
        args = args[1:]
    name = _const_str(args[0]) if args else None
    fn_node = args[1] if len(args) > 1 else None
    keywords = {kw.arg: kw.value for kw in call.keywords
                if kw.arg is not None}
    if fn_node is None:
        fn_node = keywords.get("function")
    if name is None or layer is None:
        return None
    on_error_node = keywords.get("on_error")
    on_error = _const_str(on_error_node) if on_error_node else "fail"
    return StageDecl(
        layer=layer, name=name,
        lineno=call.func.lineno,
        col=call.func.col_offset,
        reads=_parse_contract(keywords.get("reads")),
        writes=_parse_contract(keywords.get("writes")),
        on_error=on_error or "fail",
        fallback_given="fallback" in keywords,
        effects=(_resolve_function(fn_node, functions)
                 if fn_node is not None else None),
        fallback_effects=(_resolve_function(keywords["fallback"],
                                            functions)
                          if "fallback" in keywords else None),
    )


def extract_module(path, source):
    """Parse one file into a :class:`ModuleInfo` (raises SyntaxError)."""
    tree = ast.parse(source, filename=str(path))

    functions = {}
    numpy_aliases = set()
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            functions.setdefault(node.name, node)
        elif isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "numpy":
                    numpy_aliases.add(alias.asname or "numpy")

    # Map DecisionPipeline constructor calls to the variable that
    # holds the result, so chained construction and later var-based
    # add_* calls land in the same pipeline group.
    ctor_var = {}
    for node in ast.walk(tree):
        if (isinstance(node, ast.Assign) and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and isinstance(node.value, ast.Call)):
            root = None
            value = node.value
            func = value.func
            ctor = (func.id if isinstance(func, ast.Name)
                    else func.attr if isinstance(func, ast.Attribute)
                    else None)
            if ctor == "DecisionPipeline":
                root = ("ctor", id(value))
            elif (isinstance(func, ast.Attribute)
                    and func.attr in ADD_METHODS):
                root = _chain_root(value)
            if root is not None and root[0] == "ctor":
                ctor_var[root[1]] = node.targets[0].id

    add_calls = []
    run_calls = []
    for node in ast.walk(tree):
        if not (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)):
            continue
        attr = node.func.attr
        if attr in ADD_METHODS or attr == "run":
            root = _chain_root(node)
            if root is None:
                continue
            if root[0] == "ctor" and root[1] in ctor_var:
                root = ("var", ctor_var[root[1]])
            if attr == "run":
                run_calls.append((root, node))
            else:
                add_calls.append((root, attr, node))

    add_calls.sort(key=lambda item: (item[2].func.lineno,
                                     item[2].func.col_offset))

    groups = {}
    for root, attr, call in add_calls:
        stage = _stage_from_call(call, attr, functions)
        if stage is None:
            continue
        ident = root[1] if root[0] == "var" else "<pipeline>"
        pipeline = groups.get(root)
        if pipeline is None:
            pipeline = PipelineDecl(ident=str(ident),
                                    lineno=call.func.lineno,
                                    stages=[])
            groups[root] = pipeline
        pipeline.stages.append(stage)

    for root, call in run_calls:
        pipeline = groups.get(root)
        if pipeline is None:
            continue
        keys = _parse_initial_state(call)
        if keys is None or pipeline.initial_keys is None:
            pipeline.initial_keys = None
        else:
            pipeline.initial_keys = pipeline.initial_keys | keys
    if not run_calls:
        # No run() observed in this module: initial state unknown.
        for pipeline in groups.values():
            pipeline.initial_keys = None
    else:
        observed = {root for root, _ in run_calls}
        for root, pipeline in groups.items():
            if root not in observed:
                pipeline.initial_keys = None

    pipelines = [p for p in groups.values() if p.stages]
    return ModuleInfo(path=str(path), tree=tree, pipelines=pipelines,
                      functions=functions,
                      numpy_aliases=numpy_aliases)
